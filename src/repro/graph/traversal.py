"""BFS and DFS vertex orderings.

The BFS-based and DFS-based baseline HIT generators (Section 7.2) add
records to a cluster-based HIT in graph-traversal order; these helpers
produce that order deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.graph.graph import Graph


def _start_order(graph: Graph, start: Optional[str]) -> List[str]:
    starts = graph.vertices()
    if start is None:
        return starts
    if not graph.has_vertex(start):
        raise KeyError(f"unknown start vertex {start!r}")
    return [start] + [v for v in starts if v != start]


def bfs_order(graph: Graph, start: Optional[str] = None) -> List[str]:
    """Breadth-first vertex order over the whole graph.

    Traversal restarts from the next unvisited vertex (in insertion order)
    whenever a connected component is exhausted, so every vertex appears
    exactly once.
    """
    order: List[str] = []
    visited = set()
    for root in _start_order(graph, start):
        if root in visited:
            continue
        queue = deque([root])
        visited.add(root)
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            for neighbour in graph.neighbors(vertex):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
    return order


def dfs_order(graph: Graph, start: Optional[str] = None) -> List[str]:
    """Depth-first vertex order over the whole graph (iterative, deterministic)."""
    order: List[str] = []
    visited = set()
    for root in _start_order(graph, start):
        if root in visited:
            continue
        stack = [root]
        while stack:
            vertex = stack.pop()
            if vertex in visited:
                continue
            visited.add(vertex)
            order.append(vertex)
            # Push neighbours in reverse insertion order so that the first
            # neighbour is explored first (classic iterative DFS).
            for neighbour in reversed(graph.neighbors(vertex)):
                if neighbour not in visited:
                    stack.append(neighbour)
    return order
