"""Lightweight undirected-graph substrate used by HIT generation.

The cluster-based HIT generation algorithms of the paper (Sections 4 and 5)
operate on the *pair graph*: vertices are records, edges are the candidate
pairs that survived likelihood pruning.  This package provides the graph
data structure, connected-component extraction and BFS/DFS traversals the
two-tiered approach and its baselines need.  It is implemented from scratch
(rather than relying on networkx) so the algorithms can be followed line by
line against the pseudo-code in the paper.
"""

from repro.graph.graph import Graph
from repro.graph.components import (
    connected_components,
    labeled_components,
    split_components_by_size,
    split_components_with_labels,
)
from repro.graph.traversal import bfs_order, dfs_order
from repro.graph.union_find import IncrementalUnionFind

__all__ = [
    "Graph",
    "connected_components",
    "labeled_components",
    "split_components_by_size",
    "split_components_with_labels",
    "IncrementalUnionFind",
    "bfs_order",
    "dfs_order",
]
