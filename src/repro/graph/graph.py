"""Undirected simple graph with deterministic iteration order.

Determinism matters here: HIT generation must be reproducible so that the
benchmark harness regenerates the same tables on every run.  Adjacency is
therefore stored in insertion-ordered dictionaries rather than sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.records.pairs import PairSet, canonical_pair


class Graph:
    """An undirected simple graph over hashable string vertex ids."""

    def __init__(self) -> None:
        # vertex -> {neighbour: True}; the inner dict is used as an ordered set.
        self._adjacency: Dict[str, Dict[str, bool]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------ build
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, str]]) -> "Graph":
        """Build a graph from an iterable of (u, v) edges."""
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_pair_set(cls, pairs: PairSet) -> "Graph":
        """Build the pair graph of the paper: one edge per candidate pair."""
        graph = cls()
        for pair in pairs:
            graph.add_edge(pair.id_a, pair.id_b)
        return graph

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        for vertex in self._adjacency:
            clone.add_vertex(vertex)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    # ------------------------------------------------------------- mutation
    def add_vertex(self, vertex: str) -> None:
        """Add an isolated vertex (no-op if already present)."""
        if vertex not in self._adjacency:
            self._adjacency[vertex] = {}

    def add_edge(self, u: str, v: str) -> None:
        """Add an undirected edge; self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adjacency[u]:
            self._adjacency[u][v] = True
            self._adjacency[v][u] = True
            self._edge_count += 1

    def remove_edge(self, u: str, v: str) -> None:
        """Remove an edge if present (no error if absent)."""
        if u in self._adjacency and v in self._adjacency[u]:
            del self._adjacency[u][v]
            del self._adjacency[v][u]
            self._edge_count -= 1

    def remove_vertex(self, vertex: str) -> None:
        """Remove a vertex and all its incident edges."""
        if vertex not in self._adjacency:
            return
        for neighbour in list(self._adjacency[vertex]):
            self.remove_edge(vertex, neighbour)
        del self._adjacency[vertex]

    def remove_edges_within(self, vertices: Iterable[str]) -> int:
        """Remove all edges whose both endpoints lie in ``vertices``.

        Returns the number of removed edges.  This is the "remove the edges
        of lcc that are covered by scc" step of Algorithm 2.
        """
        vertex_set = set(vertices)
        removed = 0
        for u in list(vertex_set):
            if u not in self._adjacency:
                continue
            for v in list(self._adjacency[u]):
                if v in vertex_set:
                    self.remove_edge(u, v)
                    removed += 1
        return removed

    # -------------------------------------------------------------- queries
    def has_vertex(self, vertex: str) -> bool:
        """True if the vertex is in the graph."""
        return vertex in self._adjacency

    def has_edge(self, u: str, v: str) -> bool:
        """True if the undirected edge (u, v) is in the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def vertices(self) -> List[str]:
        """All vertices in insertion order."""
        return list(self._adjacency)

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Yield each undirected edge exactly once, in canonical order."""
        seen: Set[Tuple[str, str]] = set()
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                key = canonical_pair(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def edge_keys(self) -> Set[Tuple[str, str]]:
        """The set of canonical edge keys."""
        return set(self.edges())

    def neighbors(self, vertex: str) -> List[str]:
        """Neighbours of a vertex in insertion order."""
        if vertex not in self._adjacency:
            raise KeyError(f"unknown vertex {vertex!r}")
        return list(self._adjacency[vertex])

    def degree(self, vertex: str) -> int:
        """Degree of a vertex."""
        if vertex not in self._adjacency:
            raise KeyError(f"unknown vertex {vertex!r}")
        return len(self._adjacency[vertex])

    def max_degree_vertex(self, candidates: Optional[Iterable[str]] = None) -> Optional[str]:
        """Return the vertex with the maximum degree (ties broken by id).

        Restricting to ``candidates`` lets Algorithm 2 pick the max-degree
        vertex of one connected component only.
        """
        pool = list(candidates) if candidates is not None else self.vertices()
        best: Optional[str] = None
        best_degree = -1
        for vertex in pool:
            if vertex not in self._adjacency:
                continue
            degree = len(self._adjacency[vertex])
            if degree > best_degree or (degree == best_degree and best is not None and vertex < best):
                best = vertex
                best_degree = degree
        return best

    def subgraph(self, vertices: Iterable[str]) -> "Graph":
        """Return the induced subgraph on the given vertices."""
        vertex_set = set(vertices)
        sub = Graph()
        for vertex in self._adjacency:
            if vertex in vertex_set:
                sub.add_vertex(vertex)
        for u, v in self.edges():
            if u in vertex_set and v in vertex_set:
                sub.add_edge(u, v)
        return sub

    def edges_within(self, vertices: Iterable[str]) -> List[Tuple[str, str]]:
        """Edges whose both endpoints lie in ``vertices`` (canonical keys)."""
        vertex_set = set(vertices)
        result: List[Tuple[str, str]] = []
        for u, v in self.edges():
            if u in vertex_set and v in vertex_set:
                result.append((u, v))
        return result

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(vertices={self.vertex_count}, edges={self.edge_count})"
