"""Connected-component extraction and size-based classification.

The two-tiered approach (Section 5.1) first splits the pair graph into
connected components and classifies them into *small* connected components
(SCCs, at most ``k`` vertices — they already fit into one cluster-based HIT)
and *large* connected components (LCCs, more than ``k`` vertices — they must
be partitioned by the top tier).

:func:`labeled_components` is the single-traversal primitive: it returns
both the component lists and a vertex→component-id map, so callers that
need to group per-vertex data by component (the streaming resolver, the
two-tiered generator's diagnostics) don't re-traverse the graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.graph.graph import Graph


def labeled_components(graph: Graph) -> Tuple[List[List[str]], Dict[str, int]]:
    """One BFS pass returning components plus a vertex→component-id map.

    Component ids are dense indices into the returned component list, so
    ``components[labels[v]]`` is the component containing ``v``.  Components
    are discovered in vertex insertion order and vertices inside each
    component are listed in BFS order from the first-seen vertex, so the
    output is deterministic.
    """
    labels: Dict[str, int] = {}
    components: List[List[str]] = []
    for start in graph.vertices():
        if start in labels:
            continue
        component_id = len(components)
        component: List[str] = []
        queue = deque([start])
        labels[start] = component_id
        while queue:
            vertex = queue.popleft()
            component.append(vertex)
            for neighbour in graph.neighbors(vertex):
                if neighbour not in labels:
                    labels[neighbour] = component_id
                    queue.append(neighbour)
        components.append(component)
    return components, labels


def connected_components(graph: Graph) -> List[List[str]]:
    """Return the connected components as lists of vertex ids.

    Thin wrapper over :func:`labeled_components` for callers that don't
    need the vertex→component-id map.
    """
    components, _labels = labeled_components(graph)
    return components


def split_components_by_size(
    graph: Graph, cluster_size: int
) -> Tuple[List[List[str]], List[List[str]]]:
    """Split connected components into (small, large) by the cluster size.

    Small components have at most ``cluster_size`` vertices; large ones have
    more.  This mirrors lines 2-4 of Algorithm 1 (Two-Tiered) in the paper.
    """
    small, large, _labels = split_components_with_labels(graph, cluster_size)
    return small, large


def split_components_with_labels(
    graph: Graph, cluster_size: int
) -> Tuple[List[List[str]], List[List[str]], Dict[str, int]]:
    """Size-split the components and expose the vertex→component-id map.

    The labels refer to the discovery order of :func:`labeled_components`
    (they are *not* reindexed after the small/large split), so two vertices
    share a component if and only if their labels are equal.  Everything is
    computed in a single graph traversal.
    """
    if cluster_size < 2:
        raise ValueError("cluster_size must be at least 2")
    components, labels = labeled_components(graph)
    small: List[List[str]] = []
    large: List[List[str]] = []
    for component in components:
        if len(component) <= cluster_size:
            small.append(component)
        else:
            large.append(component)
    return small, large, labels
