"""Connected-component extraction and size-based classification.

The two-tiered approach (Section 5.1) first splits the pair graph into
connected components and classifies them into *small* connected components
(SCCs, at most ``k`` vertices — they already fit into one cluster-based HIT)
and *large* connected components (LCCs, more than ``k`` vertices — they must
be partitioned by the top tier).
"""

from __future__ import annotations

from collections import deque
from typing import List, Tuple

from repro.graph.graph import Graph


def connected_components(graph: Graph) -> List[List[str]]:
    """Return the connected components as lists of vertex ids.

    Components are discovered in vertex insertion order and vertices inside
    each component are listed in BFS order from the first-seen vertex, so
    the output is deterministic.
    """
    visited = set()
    components: List[List[str]] = []
    for start in graph.vertices():
        if start in visited:
            continue
        component: List[str] = []
        queue = deque([start])
        visited.add(start)
        while queue:
            vertex = queue.popleft()
            component.append(vertex)
            for neighbour in graph.neighbors(vertex):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    return components


def split_components_by_size(
    graph: Graph, cluster_size: int
) -> Tuple[List[List[str]], List[List[str]]]:
    """Split connected components into (small, large) by the cluster size.

    Small components have at most ``cluster_size`` vertices; large ones have
    more.  This mirrors lines 2-4 of Algorithm 1 (Two-Tiered) in the paper.
    """
    if cluster_size < 2:
        raise ValueError("cluster_size must be at least 2")
    small: List[List[str]] = []
    large: List[List[str]] = []
    for component in connected_components(graph):
        if len(component) <= cluster_size:
            small.append(component)
        else:
            large.append(component)
    return small, large
