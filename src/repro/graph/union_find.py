"""Incremental union-find with dirty-component tracking.

The streaming resolver (:mod:`repro.streaming`) maintains the pair graph's
connected components *incrementally*: every arriving candidate pair is a
``union`` of its two records, and any component touched by a new record or
new pair since the last :meth:`IncrementalUnionFind.clear_dirty` is marked
**dirty**.  Only dirty components need their HITs regenerated and their
votes re-aggregated; clean components keep their cached posteriors.

Union by size with path halving gives effectively O(alpha(n)) amortised
operations, so maintaining components across thousands of record batches
costs far less than re-running a BFS over the full pair graph per batch
(:func:`repro.graph.components.connected_components` stays the batch-mode
primitive).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class IncrementalUnionFind:
    """Disjoint sets over string ids with dirty-set bookkeeping.

    A component is *dirty* when, since the last :meth:`clear_dirty`, it
    gained a vertex, gained an edge (even an internal one between already
    connected vertices — re-verification may be wanted), was merged with
    another component, or was explicitly marked via :meth:`mark_dirty`.
    Dirtiness is tracked per current *root*, and survives merges: a clean
    component absorbed by a dirty one (or vice versa) becomes dirty.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._size: Dict[str, int] = {}
        # root -> member list, merged smaller-into-larger on union so total
        # relinking work is O(n log n); lets callers enumerate one dirty
        # component without scanning the whole store.
        self._members: Dict[str, List[str]] = {}
        self._dirty: Set[str] = set()

    # ------------------------------------------------------------ mutation
    def add(self, item: str) -> bool:
        """Add a new singleton component (dirty by definition).

        Returns True if the item was new, False if it already existed.
        """
        if item in self._parent:
            return False
        self._parent[item] = item
        self._size[item] = 1
        self._members[item] = [item]
        self._dirty.add(item)
        return True

    def union(self, a: str, b: str) -> str:
        """Union the components of ``a`` and ``b``; both become dirty.

        Unknown items are added on the fly.  Returns the root of the merged
        component.  A union of two already-connected items still dirties the
        component (a new edge arrived inside it).
        """
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            self._dirty.add(root_a)
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        del self._size[root_b]
        self._members[root_a].extend(self._members.pop(root_b))
        # The merged component is dirty (it gained an edge), and root_b no
        # longer names a component.
        self._dirty.discard(root_b)
        self._dirty.add(root_a)
        return root_a

    def mark_dirty(self, item: str) -> None:
        """Mark the component containing ``item`` dirty (item must exist)."""
        self._dirty.add(self.find(item))

    def detach(self, items: Iterable[str]) -> List[str]:
        """Remove ``items`` from the structure entirely.

        Union-find cannot delete a vertex in place, so every component that
        contains a detached item is dissolved: the detached items vanish and
        the *surviving* members of those components are re-added as dirty
        singletons.  The caller is responsible for re-unioning the surviving
        edges (the streaming resolver replays each survivor's provenance
        pairs), after which the touched components are exactly the connected
        components of the surviving edge set.

        Returns the surviving members, in their original membership order,
        so the caller knows whose edges to replay.  Unknown items are
        ignored.
        """
        doomed = {item for item in items if item in self._parent}
        if not doomed:
            return []
        roots = {self.find(item) for item in doomed}
        survivors: List[str] = []
        for root in roots:
            members = self._members.pop(root)
            del self._size[root]
            self._dirty.discard(root)
            for member in members:
                del self._parent[member]
                if member not in doomed:
                    survivors.append(member)
        for member in survivors:
            self.add(member)  # dirty singleton
        return survivors

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the full structure.

        Captures the parent forest, sizes, member lists and the dirty set
        verbatim (including internal ordering), so a restored instance is
        indistinguishable from the original — roots, member enumeration
        order and dirtiness all survive a round trip bit-for-bit.
        """
        return {
            "parent": dict(self._parent),
            "size": dict(self._size),
            "members": {root: list(members) for root, members in self._members.items()},
            "dirty": sorted(self._dirty),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "IncrementalUnionFind":
        """Rebuild an instance from :meth:`state_dict` output."""
        instance = cls()
        instance._parent = dict(state["parent"])  # type: ignore[arg-type]
        instance._size = dict(state["size"])  # type: ignore[arg-type]
        instance._members = {
            root: list(members)
            for root, members in state["members"].items()  # type: ignore[union-attr]
        }
        instance._dirty = set(state["dirty"])  # type: ignore[arg-type]
        return instance

    def clear_dirty(self) -> None:
        """Declare every component clean (end of a batch round)."""
        self._dirty.clear()

    # ------------------------------------------------------------- queries
    def find(self, item: str) -> str:
        """Return the root of ``item``'s component (with path halving)."""
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def connected(self, a: str, b: str) -> bool:
        """True if both items exist and share a component."""
        if a not in self._parent or b not in self._parent:
            return False
        return self.find(a) == self.find(b)

    def __contains__(self, item: object) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint components."""
        return len(self._size)

    def component_size(self, item: str) -> int:
        """Size of the component containing ``item``."""
        return self._size[self.find(item)]

    def dirty_roots(self) -> Set[str]:
        """Roots of all currently dirty components."""
        return set(self._dirty)

    def is_dirty(self, item: str) -> bool:
        """True if ``item``'s component is dirty."""
        return self.find(item) in self._dirty

    def roots(self) -> List[str]:
        """All component roots, in no particular order."""
        return list(self._size)

    def members(self, root: str) -> List[str]:
        """The members of the component whose root is ``root``.

        O(component size): read off the maintained member list, no scan of
        the other components.  ``root`` must be a current root (as returned
        by :meth:`find`, :meth:`dirty_roots` or :meth:`roots`).
        """
        return list(self._members[root])

    def components(self, items: Iterable[str] = ()) -> Dict[str, List[str]]:
        """Group items by component root.

        With no argument, every component's maintained member list is
        returned; with ``items``, only those items are grouped.  Output is
        deterministic for a deterministic operation sequence.
        """
        if not items:
            return {root: list(members) for root, members in self._members.items()}
        grouped: Dict[str, List[str]] = {}
        for item in items:
            grouped.setdefault(self.find(item), []).append(item)
        return grouped
