"""Record pairs and sets of candidate pairs.

A :class:`RecordPair` is an unordered pair of record ids together with an
optional machine-computed likelihood (the output of the simjoin pass).  A
:class:`PairSet` is the set of candidate pairs the hybrid workflow sends to
HIT generation after likelihood-threshold pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np


def canonical_pair(id_a: str, id_b: str) -> Tuple[str, str]:
    """Return the canonical (sorted) ordering of two record ids.

    Pairs are unordered: ``(r1, r2)`` and ``(r2, r1)`` denote the same
    candidate.  All containers in this package store the sorted form.
    """
    if id_a == id_b:
        raise ValueError(f"a pair must contain two distinct records, got {id_a!r} twice")
    return (id_a, id_b) if id_a < id_b else (id_b, id_a)


@dataclass(frozen=True)
class RecordPair:
    """An unordered candidate pair with an optional likelihood score."""

    id_a: str
    id_b: str
    likelihood: Optional[float] = None

    def __post_init__(self) -> None:
        a, b = canonical_pair(self.id_a, self.id_b)
        object.__setattr__(self, "id_a", a)
        object.__setattr__(self, "id_b", b)
        if self.likelihood is not None and not (0.0 <= self.likelihood <= 1.0):
            raise ValueError(f"likelihood must be in [0, 1], got {self.likelihood}")

    @property
    def key(self) -> Tuple[str, str]:
        """The canonical (sorted) id tuple identifying this pair."""
        return (self.id_a, self.id_b)

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordPair):
            return NotImplemented
        return self.key == other.key

    def contains(self, record_id: str) -> bool:
        """True if ``record_id`` is one of the two records of the pair."""
        return record_id == self.id_a or record_id == self.id_b

    def other(self, record_id: str) -> str:
        """Given one record id of the pair, return the other one."""
        if record_id == self.id_a:
            return self.id_b
        if record_id == self.id_b:
            return self.id_a
        raise KeyError(f"{record_id!r} is not part of pair {self.key}")

    def with_likelihood(self, likelihood: float) -> "RecordPair":
        """Return a copy of the pair carrying the given likelihood."""
        return RecordPair(self.id_a, self.id_b, likelihood=likelihood)


class PairSet:
    """A set of candidate :class:`RecordPair` objects.

    The set keeps insertion order (for deterministic HIT generation) and
    supports likelihood-threshold filtering, which is the machine-pruning
    step of the hybrid workflow.
    """

    def __init__(self, pairs: Iterable[RecordPair] = ()) -> None:
        self._pairs: Dict[Tuple[str, str], RecordPair] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: RecordPair) -> None:
        """Add a pair; re-adding an existing key keeps the higher likelihood."""
        existing = self._pairs.get(pair.key)
        if existing is None:
            self._pairs[pair.key] = pair
            return
        if (pair.likelihood or 0.0) > (existing.likelihood or 0.0):
            self._pairs[pair.key] = pair

    def add_ids(self, id_a: str, id_b: str, likelihood: Optional[float] = None) -> None:
        """Convenience: add a pair given two record ids."""
        self.add(RecordPair(id_a, id_b, likelihood=likelihood))

    def discard(self, id_a: str, id_b: str) -> bool:
        """Remove the pair with the given ids if present.

        Returns True when a pair was removed.  Insertion order of the
        remaining pairs is unchanged, so downstream HIT generation stays
        deterministic after a retraction.
        """
        return self._pairs.pop(canonical_pair(id_a, id_b), None) is not None

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[RecordPair]:
        return iter(self._pairs.values())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RecordPair):
            return item.key in self._pairs
        if isinstance(item, tuple) and len(item) == 2:
            return canonical_pair(str(item[0]), str(item[1])) in self._pairs
        return False

    def get(self, id_a: str, id_b: str) -> Optional[RecordPair]:
        """Return the stored pair for the given ids, or ``None``."""
        return self._pairs.get(canonical_pair(id_a, id_b))

    def keys(self) -> List[Tuple[str, str]]:
        """Canonical id tuples of all pairs, in insertion order."""
        return list(self._pairs.keys())

    def record_ids(self) -> Set[str]:
        """The set of record ids touched by at least one pair."""
        ids: Set[str] = set()
        for pair in self._pairs.values():
            ids.add(pair.id_a)
            ids.add(pair.id_b)
        return ids

    def filter_by_likelihood(self, threshold: float) -> "PairSet":
        """Return the subset of pairs with likelihood >= threshold.

        Pairs without a likelihood are dropped, mirroring the workflow in
        which only machine-scored pairs can pass the pruning step.
        """
        return PairSet(
            pair
            for pair in self._pairs.values()
            if pair.likelihood is not None and pair.likelihood >= threshold
        )

    def to_arrays(self) -> Tuple[List[Tuple[str, str]], np.ndarray]:
        """Columnar view: pair keys plus a dense float64 likelihood array.

        Keys come back in insertion order; a pair without a likelihood
        contributes ``-1.0``, so a stable descending argsort over the array
        ranks scored pairs first and unscored pairs last — exactly the
        ordering contract of :meth:`sorted_by_likelihood`.
        """
        keys = list(self._pairs.keys())
        values = np.fromiter(
            (
                pair.likelihood if pair.likelihood is not None else -1.0
                for pair in self._pairs.values()
            ),
            dtype=np.float64,
            count=len(self._pairs),
        )
        return keys, values

    def sorted_by_likelihood(self, descending: bool = True) -> List[RecordPair]:
        """Pairs sorted by likelihood (missing likelihood sorts last)."""
        return sorted(
            self._pairs.values(),
            key=lambda pair: (pair.likelihood if pair.likelihood is not None else -1.0),
            reverse=descending,
        )

    def intersection_keys(self, other: Iterable[Tuple[str, str]]) -> Set[Tuple[str, str]]:
        """Return the pair keys present both here and in ``other``."""
        other_keys = {canonical_pair(a, b) for a, b in other}
        return set(self._pairs.keys()) & other_keys

    def to_key_set(self) -> FrozenSet[Tuple[str, str]]:
        """Frozen set of canonical keys (useful as ground truth)."""
        return frozenset(self._pairs.keys())

    @classmethod
    def from_keys(cls, keys: Iterable[Tuple[str, str]]) -> "PairSet":
        """Build a pair set (without likelihoods) from id tuples."""
        return cls(RecordPair(a, b) for a, b in keys)
