"""Text normalisation used before similarity computation.

The paper pre-processes both datasets by replacing non-alphanumeric
characters with whitespace and lower-casing all letters (Section 7.1).
This module implements exactly that, plus a couple of convenience helpers
used by the dataset generators.
"""

from __future__ import annotations

import re
from typing import Mapping

from repro.records.record import Record

_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")
_WHITESPACE = re.compile(r"\s+")


def normalize_text(text: str) -> str:
    """Normalise a text value the way the paper pre-processes records.

    Non-alphanumeric characters are replaced by single spaces, letters are
    lower-cased, and surrounding whitespace is stripped.

    >>> normalize_text("Apple iPad-2, 16GB  (WiFi) White!")
    'apple ipad 2 16gb wifi white'
    """
    if not text:
        return ""
    cleaned = _NON_ALNUM.sub(" ", text)
    cleaned = _WHITESPACE.sub(" ", cleaned)
    return cleaned.strip().lower()


def normalize_record(record: Record) -> Record:
    """Return a copy of ``record`` with every attribute value normalised."""
    normalized: Mapping[str, str] = {
        name: normalize_text(value) for name, value in record.attributes.items()
    }
    return Record(record_id=record.record_id, attributes=normalized, source=record.source)


def strip_price_symbols(value: str) -> str:
    """Remove currency symbols and thousands separators from a price string.

    >>> strip_price_symbols("$1,299.00")
    '1299.00'
    """
    return value.replace("$", "").replace(",", "").strip()
