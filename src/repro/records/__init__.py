"""Record model, preprocessing and tokenization substrate.

This package provides the lowest layer of the CrowdER reproduction: the
representation of individual records, tables of records, candidate record
pairs and the text normalisation / tokenisation utilities the similarity
layer builds on.
"""

from repro.records.record import Record, RecordStore
from repro.records.pairs import RecordPair, PairSet
from repro.records.preprocessing import normalize_text, normalize_record
from repro.records.tokenize import (
    WhitespaceTokenizer,
    QGramTokenizer,
    WordTokenizer,
    record_token_set,
)

__all__ = [
    "Record",
    "RecordStore",
    "RecordPair",
    "PairSet",
    "normalize_text",
    "normalize_record",
    "WhitespaceTokenizer",
    "QGramTokenizer",
    "WordTokenizer",
    "record_token_set",
]
