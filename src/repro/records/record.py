"""Record and RecordStore: the basic data model of the reproduction.

A :class:`Record` is an immutable mapping from attribute names to string
values plus a unique identifier and an optional source tag (used by
two-source datasets such as the Product dataset, which integrates records
from an "abt"-like and a "buy"-like website).

A :class:`RecordStore` is an ordered collection of records with id-based
lookup.  It corresponds to the single relational table the CrowdER paper
de-duplicates (e.g. Table 1 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class RecordError(ValueError):
    """Raised for malformed records or invalid store operations."""


@dataclass(frozen=True)
class Record:
    """A single record (row) of the table being resolved.

    Parameters
    ----------
    record_id:
        Unique identifier of the record within its :class:`RecordStore`
        (e.g. ``"r1"``).
    attributes:
        Mapping from attribute name to attribute value.  Values are stored
        as strings; numeric attributes (e.g. price) should be formatted by
        the caller.
    source:
        Optional provenance tag.  Two-source datasets set this to the name
        of the originating website so that cross-source matching can be
        restricted or analysed.
    """

    record_id: str
    attributes: Mapping[str, str]
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.record_id:
            raise RecordError("record_id must be a non-empty string")
        if not isinstance(self.attributes, Mapping):
            raise RecordError("attributes must be a mapping")
        # Freeze the attribute mapping so the record is hashable and safe to
        # share between data structures.
        object.__setattr__(self, "attributes", dict(self.attributes))

    def __hash__(self) -> int:
        return hash(self.record_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.record_id == other.record_id

    def get(self, attribute: str, default: str = "") -> str:
        """Return the value of ``attribute``, or ``default`` if absent."""
        return self.attributes.get(attribute, default)

    def text(self, attributes: Optional[Sequence[str]] = None) -> str:
        """Concatenate attribute values into a single text blob.

        The CrowdER "simjoin" likelihood tokenises the concatenation of all
        attribute values of a record; this helper produces that blob.

        Parameters
        ----------
        attributes:
            Attributes to include, in order.  ``None`` means all attributes
            in insertion order.
        """
        if attributes is None:
            values = list(self.attributes.values())
        else:
            values = [self.attributes.get(name, "") for name in attributes]
        return " ".join(value for value in values if value)

    def with_attributes(self, **updates: str) -> "Record":
        """Return a copy of this record with some attribute values replaced."""
        merged = dict(self.attributes)
        merged.update(updates)
        return Record(record_id=self.record_id, attributes=merged, source=self.source)

    def as_dict(self) -> Dict[str, str]:
        """Return a plain-dict view including the id and source."""
        payload = {"record_id": self.record_id}
        payload.update(self.attributes)
        if self.source is not None:
            payload["source"] = self.source
        return payload


class _InMemoryRecordTable:
    """The default record table: an ordered list plus an id index.

    This is the storage every unbacked :class:`RecordStore` uses — the
    exact structures the store always kept, now behind the same small
    table interface a :class:`repro.storage.base.Store` implements, so
    record reads and writes take one code path whether the records live
    in process memory or in a SQLite file.
    """

    def __init__(self) -> None:
        self._records: List[Record] = []
        self._by_id: Dict[str, Record] = {}

    def add_record(self, record: Record) -> None:
        self._records.append(record)
        self._by_id[record.record_id] = record

    def remove_record(self, record_id: str) -> Optional[Record]:
        record = self._by_id.pop(record_id, None)
        if record is not None:
            self._records.remove(record)
        return record

    def get_record(self, record_id: str) -> Optional[Record]:
        return self._by_id.get(record_id)

    def has_record(self, record_id: object) -> bool:
        return record_id in self._by_id

    def record_count(self) -> int:
        return len(self._records)

    def iter_records(self) -> Iterator[Record]:
        return iter(self._records)

    def record_ids(self) -> List[str]:
        return [record.record_id for record in self._records]

    def record_at(self, index: int) -> Record:
        return self._records[index]


class RecordStore:
    """An ordered, id-indexed collection of :class:`Record` objects.

    The store enforces id uniqueness and preserves insertion order, which
    makes dataset generation deterministic and keeps pair enumeration
    stable across runs.

    Parameters
    ----------
    name:
        Human-readable table name.
    backing:
        Optional storage backend implementing the record-table interface
        (see :class:`repro.storage.base.Store`).  ``None`` (default) keeps
        records in process memory; a persistent backing makes every read
        and write go through its table instead, which is how a
        SQLite-backed streaming session keeps records out of RAM.
    """

    def __init__(self, name: str = "records", backing=None) -> None:
        self.name = name
        self._table = backing if backing is not None else _InMemoryRecordTable()

    @classmethod
    def from_records(cls, records: Iterable[Record], name: str = "records") -> "RecordStore":
        """Build a store from an iterable of records."""
        store = cls(name=name)
        for record in records:
            store.add(record)
        return store

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, str]],
        id_attribute: str = "record_id",
        name: str = "records",
        source: Optional[str] = None,
    ) -> "RecordStore":
        """Build a store from plain dict rows.

        The ``id_attribute`` column is used as the record id and removed
        from the attribute mapping.
        """
        store = cls(name=name)
        for index, row in enumerate(rows):
            row = dict(row)
            record_id = str(row.pop(id_attribute, f"r{index + 1}"))
            store.add(Record(record_id=record_id, attributes=row, source=source))
        return store

    def add(self, record: Record) -> None:
        """Add a record; raises :class:`RecordError` on duplicate ids."""
        if self._table.has_record(record.record_id):
            raise RecordError(f"duplicate record id: {record.record_id!r}")
        self._table.add_record(record)

    def remove(self, record_id: str) -> Record:
        """Remove and return the record with the given id.

        Raises :class:`RecordError` if the id is unknown.  O(n) in the store
        size (the insertion-order list is rebuilt without the record); used
        by streaming retraction, where removals are rare relative to scans.
        """
        record = self._table.remove_record(record_id)
        if record is None:
            raise RecordError(f"unknown record id: {record_id!r}")
        return record

    def get(self, record_id: str) -> Record:
        """Return the record with the given id, raising ``KeyError`` if absent."""
        record = self._table.get_record(record_id)
        if record is None:
            raise KeyError(record_id)
        return record

    def __contains__(self, record_id: object) -> bool:
        return self._table.has_record(record_id)

    def __len__(self) -> int:
        return self._table.record_count()

    def __iter__(self) -> Iterator[Record]:
        return self._table.iter_records()

    def __getitem__(self, index: int) -> Record:
        return self._table.record_at(index)

    @property
    def record_ids(self) -> List[str]:
        """Record ids in insertion order."""
        return self._table.record_ids()

    def records_from_source(self, source: str) -> List[Record]:
        """Return all records tagged with the given source."""
        return [record for record in self if record.source == source]

    def sources(self) -> List[str]:
        """Return distinct source tags in first-seen order."""
        seen: List[str] = []
        for record in self:
            if record.source is not None and record.source not in seen:
                seen.append(record.source)
        return seen

    def attribute_names(self) -> List[str]:
        """Union of attribute names across all records, in first-seen order."""
        names: List[str] = []
        for record in self:
            for name in record.attributes:
                if name not in names:
                    names.append(name)
        return names

    def all_pairs(self) -> Iterator[Tuple[Record, Record]]:
        """Yield every unordered pair of distinct records.

        This is the O(n^2) enumeration the paper's "naive" crowdsourcing
        approach would have to verify; the hybrid workflow exists precisely
        to avoid sending all of these to the crowd.
        """
        records = list(self)
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                yield records[i], records[j]

    def cross_source_pairs(self, source_a: str, source_b: str) -> Iterator[Tuple[Record, Record]]:
        """Yield pairs with one record from each of the two given sources."""
        left = self.records_from_source(source_a)
        right = self.records_from_source(source_b)
        for record_a in left:
            for record_b in right:
                yield record_a, record_b

    def total_pair_count(self) -> int:
        """Number of unordered pairs n*(n-1)/2."""
        n = len(self)
        return n * (n - 1) // 2
