"""Tokenisers producing the token sets used by similarity functions.

The paper's "simjoin" likelihood is the Jaccard similarity between the token
sets of two records, where a record's token set contains the (whitespace)
tokens of all its attribute values after normalisation.  Q-gram tokenisation
is provided for the q-gram based blocking technique the paper references
(Christen's indexing survey, [7]).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set

from repro.records.preprocessing import normalize_text
from repro.records.record import Record


class WhitespaceTokenizer:
    """Split normalised text on whitespace into a list of tokens."""

    def tokenize(self, text: str) -> List[str]:
        """Return the token list of ``text`` (normalised first)."""
        normalized = normalize_text(text)
        if not normalized:
            return []
        return normalized.split(" ")

    def token_set(self, text: str) -> FrozenSet[str]:
        """Return the distinct tokens of ``text`` as a frozen set."""
        return frozenset(self.tokenize(text))


class WordTokenizer(WhitespaceTokenizer):
    """Whitespace tokeniser with optional stop-word removal and minimum length."""

    def __init__(self, stop_words: Optional[Sequence[str]] = None, min_length: int = 1) -> None:
        if min_length < 1:
            raise ValueError("min_length must be >= 1")
        self.stop_words: Set[str] = set(stop_words or ())
        self.min_length = min_length

    def tokenize(self, text: str) -> List[str]:
        tokens = super().tokenize(text)
        return [
            token
            for token in tokens
            if len(token) >= self.min_length and token not in self.stop_words
        ]


class QGramTokenizer:
    """Character q-gram tokeniser with optional padding.

    Q-grams are used by q-gram blocking: records sharing at least one q-gram
    become candidate pairs, which avoids the all-pairs comparison the paper
    mentions in footnote 1.
    """

    def __init__(self, q: int = 3, pad: bool = True, pad_char: str = "#") -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        if len(pad_char) != 1:
            raise ValueError("pad_char must be a single character")
        self.q = q
        self.pad = pad
        self.pad_char = pad_char

    def tokenize(self, text: str) -> List[str]:
        """Return the list of q-grams of the normalised text."""
        normalized = normalize_text(text)
        if not normalized:
            return []
        if self.pad:
            padding = self.pad_char * (self.q - 1)
            normalized = f"{padding}{normalized}{padding}"
        if len(normalized) < self.q:
            return [normalized]
        return [normalized[i : i + self.q] for i in range(len(normalized) - self.q + 1)]

    def token_set(self, text: str) -> FrozenSet[str]:
        """Return the distinct q-grams of ``text``."""
        return frozenset(self.tokenize(text))


def record_token_set(
    record: Record,
    attributes: Optional[Sequence[str]] = None,
    tokenizer: Optional[WhitespaceTokenizer] = None,
) -> FrozenSet[str]:
    """Return the token set of a record over the chosen attributes.

    This is the exact token-set construction the paper uses for the simjoin
    likelihood: the tokens of all attribute values are pooled into one set.
    """
    tokenizer = tokenizer or WhitespaceTokenizer()
    return tokenizer.token_set(record.text(attributes))


def record_token_list(
    record: Record,
    attributes: Optional[Sequence[str]] = None,
    tokenizer: Optional[WhitespaceTokenizer] = None,
) -> List[str]:
    """Return the token multiset (list) of a record over the chosen attributes."""
    tokenizer = tokenizer or WhitespaceTokenizer()
    return tokenizer.tokenize(record.text(attributes))
