"""The pluggable storage layer: one interface, memory and SQLite backends.

Everything a streaming session accumulates — resident records, the token
vocabulary and CSR chunks of the incremental join, the candidate pairs,
the per-pair vote ledger and posterior cache, the provenance table and the
crowd-workload counters — lives behind a :class:`Store`.  Two backends
implement it:

* :class:`~repro.storage.memory.MemoryStore` (default) — the exact
  in-memory structures the session always used, refactored behind the
  interface.  Zero behavioral change, zero persistence.
* :class:`~repro.storage.sqlite.SqliteStore` — a single WAL-mode SQLite
  file.  Every session mutation is mirrored into tables inside one
  transaction per applied event, so
  :meth:`repro.streaming.StreamingResolver.restore` becomes a *page-in* of
  the stored state plus a replay of only the journal events the store has
  not committed — instead of a full journal replay or a pickle load.

The hot path stays dict-speed for both backends: the session reads the
:class:`PairLedger` mappings directly and every *mutation* goes through a
ledger method, which a persistent backend overrides to mirror the change.
Outputs are bit-identical across backends — the property tests in
``tests/test_storage.py`` assert it for random batch/retract/update/crash
schedules.
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.records.record import Record

PairKey = Tuple[str, str]
#: ``(worker_id, pair_key, answer)`` — the vote tuple of the crowd platform.
Vote = Tuple[str, PairKey, bool]

#: Row of the join substrate: ``(row_no, record_id, source, empty, dead)``.
JoinRow = Tuple[int, str, Optional[str], bool, bool]


class StorageError(RuntimeError):
    """Raised for invalid storage configurations or corrupt store files."""


class PairLedger:
    """The hot pair/vote/posterior ledger of one streaming session.

    Reads are plain attribute access on the dicts below (the session's
    inner loops touch them constantly); every *mutation* goes through a
    method so a persistent store can mirror the change into its tables.
    The base class is the complete in-memory implementation.

    Attributes
    ----------
    pairs:
        Candidate pair key -> machine likelihood, in discovery order (the
        page-in source for the session's :class:`~repro.records.pairs.PairSet`).
    votes / vote_rounds / pending_votes:
        Per-pair vote ledger: votes in oracle order, completed crowd
        rounds, and votes gained since the pair was last aggregated.
    posteriors:
        The aggregated posterior cache.
    covered:
        Pairs covered by at least one published HIT.
    """

    def __init__(self) -> None:
        self.pairs: Dict[PairKey, Optional[float]] = {}
        self.votes: Dict[PairKey, List[Vote]] = {}
        self.vote_rounds: Dict[PairKey, int] = {}
        self.pending_votes: Dict[PairKey, int] = {}
        self.posteriors: Dict[PairKey, float] = {}
        self.covered: Set[PairKey] = set()

    # ------------------------------------------------------------ mutations
    def add_pair(self, key: PairKey, likelihood: Optional[float]) -> None:
        """Register a discovered candidate pair (keeps the higher likelihood)."""
        existing = self.pairs.get(key)
        if key in self.pairs and (likelihood or 0.0) <= (existing or 0.0):
            return
        self.pairs[key] = likelihood

    def drop_pair(self, key: PairKey) -> None:
        """Invalidate one pair entirely (retraction blast radius)."""
        self.pairs.pop(key, None)
        self.votes.pop(key, None)
        self.vote_rounds.pop(key, None)
        self.pending_votes.pop(key, None)
        self.posteriors.pop(key, None)
        self.covered.discard(key)

    def record_fresh_votes(self, key: PairKey, votes: List[Vote]) -> None:
        """Replace a pair's ledger entry with a fresh vote round."""
        self.votes[key] = votes
        self.vote_rounds[key] = self.vote_rounds.get(key, 0) + 1
        self.pending_votes[key] = self.pending_votes.get(key, 0) + len(votes)

    def mark_covered(self, keys: Iterable[PairKey]) -> None:
        """Note that published HITs covered the given pairs."""
        self.covered.update(keys)

    def set_posterior(self, key: PairKey, posterior: float) -> None:
        self.posteriors[key] = posterior

    def replace_posteriors(self, posteriors: Dict[PairKey, float]) -> None:
        """Global-scope aggregation: the whole cache is rebuilt at once."""
        self.posteriors = dict(posteriors)

    def clear_pending(self, keys: Iterable[PairKey]) -> None:
        for key in keys:
            self.pending_votes.pop(key, None)

    def clear_all_pending(self) -> None:
        self.pending_votes.clear()

    def load_bulk(
        self,
        *,
        pairs: Dict[PairKey, Optional[float]],
        votes: Dict[PairKey, List[Vote]],
        vote_rounds: Dict[PairKey, int],
        pending_votes: Dict[PairKey, int],
        posteriors: Dict[PairKey, float],
        covered: Set[PairKey],
    ) -> None:
        """Replace the whole ledger (snapshot restore / state_dict load)."""
        self.pairs = dict(pairs)
        self.votes = {key: list(entry) for key, entry in votes.items()}
        self.vote_rounds = dict(vote_rounds)
        self.pending_votes = dict(pending_votes)
        self.posteriors = dict(posteriors)
        self.covered = set(covered)


class Store(abc.ABC):
    """Backend interface of the storage layer.

    One :class:`Store` instance backs one streaming session.  It provides:

    * the **record table** (what :class:`~repro.records.record.RecordStore`
      delegates to when constructed with ``backing=``),
    * the :class:`PairLedger` (``self.ledger``),
    * the **join substrate** mirror (vocabulary, CSR chunks, row
      bookkeeping of the incremental join),
    * the **provenance** mirror (the retract/update skip index),
    * session **metadata** (config, truth, counters) and the accumulated
      crowd-assignment durations.

    ``persistent`` tells callers whether mirror writes do anything; the
    in-memory backend keeps them as no-ops so the default path pays zero
    overhead.
    """

    #: Human-readable backend name (``"memory"`` / ``"sqlite"``).
    backend_name: str = "abstract"
    #: True when mirror writes survive the process (page-in restore works).
    persistent: bool = False

    ledger: PairLedger

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def commit(self) -> None:
        """Durably commit buffered writes (no-op for memory)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Wipe the store back to empty (used by full state reloads)."""

    # --------------------------------------------------------- record table
    @abc.abstractmethod
    def add_record(self, record: "Record") -> None:
        """Insert one record (caller guarantees the id is fresh)."""

    @abc.abstractmethod
    def remove_record(self, record_id: str) -> Optional["Record"]:
        """Remove and return one record; ``None`` when the id is unknown."""

    @abc.abstractmethod
    def get_record(self, record_id: str) -> Optional["Record"]:
        """Fetch one record; ``None`` when the id is unknown."""

    @abc.abstractmethod
    def has_record(self, record_id: object) -> bool:
        ...

    @abc.abstractmethod
    def record_count(self) -> int:
        ...

    @abc.abstractmethod
    def iter_records(self) -> Iterator["Record"]:
        """All resident records in arrival order."""

    @abc.abstractmethod
    def record_ids(self) -> List[str]:
        """Resident record ids in arrival order."""

    @abc.abstractmethod
    def record_at(self, index: int) -> "Record":
        """The ``index``-th resident record in arrival order."""

    # -------------------------------------------------------------- metadata
    @abc.abstractmethod
    def set_meta(self, key: str, value: object) -> None:
        """Store one JSON-serializable metadata value."""

    @abc.abstractmethod
    def get_meta(self, key: str, default: object = None) -> object:
        ...

    # --------------------------------------------------------- join mirror
    def join_append_rows(self, rows: Sequence[JoinRow]) -> None:
        """Mirror newly indexed join rows (arrival order)."""

    def join_mark_dead(self, row_no: int) -> None:
        """Mirror a retraction tombstone."""

    def join_replace(
        self,
        rows: Sequence[JoinRow],
        indices: "np.ndarray",
        row_lengths: "np.ndarray",
    ) -> None:
        """Mirror a physical compaction: the whole substrate is rewritten."""

    def extend_vocabulary(self, items: Sequence[Tuple[str, int]]) -> None:
        """Mirror newly assigned vocabulary columns."""

    def append_csr_chunk(
        self, indices: "np.ndarray", row_lengths: "np.ndarray"
    ) -> None:
        """Mirror one batch's CSR rows."""

    def load_join_state(self) -> Optional[Dict[str, object]]:
        """Page in the join substrate; ``None`` when nothing is stored."""
        return None

    # --------------------------------------------------- provenance mirror
    def prov_write(
        self,
        key: PairKey,
        discovered_batch: int,
        hit_ids: Sequence[str],
        vote_events: Sequence[Tuple[int, int, int]],
    ) -> None:
        """Mirror one pair's provenance row (insert or full update)."""

    def prov_delete(self, keys: Iterable[PairKey]) -> None:
        """Mirror a retraction: the dropped pairs leave the skip index."""

    def load_provenance(
        self,
    ) -> Optional[List[Tuple[PairKey, int, List[str], List[Tuple[int, int, int]]]]]:
        """Page in the provenance table; ``None`` when nothing is stored."""
        return None

    # ----------------------------------------------------- crowd workload
    def append_assignment_seconds(self, values: Sequence[float]) -> None:
        """Mirror crowd-assignment durations (append-only)."""

    def load_assignment_seconds(self) -> List[float]:
        """Page in the accumulated assignment durations."""
        return []

    def load_ledger(self) -> None:
        """Populate ``self.ledger`` from storage (no-op for memory)."""
