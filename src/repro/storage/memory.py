"""The in-memory storage backend (the default).

:class:`MemoryStore` is the pre-existing in-memory session state
refactored behind the :class:`~repro.storage.base.Store` interface: the
record table is the same ordered-list-plus-id-index structure
:class:`~repro.records.record.RecordStore` always used, the
:class:`~repro.storage.base.PairLedger` is the plain dict implementation,
and every mirror hook (join substrate, provenance, metadata beyond what a
live session reads back) is a no-op — the live objects *are* the state.
Behavior is bit-identical to the sessions that predate the storage layer;
persistence comes from the snapshot/journal machinery in
:mod:`repro.streaming.persistence`, exactly as before.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.records.record import Record, _InMemoryRecordTable
from repro.storage.base import PairLedger, Store


class MemoryStore(Store):
    """Process-memory backend: real record table, no-op mirrors."""

    backend_name = "memory"
    persistent = False

    def __init__(self) -> None:
        self._table = _InMemoryRecordTable()
        self._meta: Dict[str, object] = {}
        self.ledger = PairLedger()

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        self._table = _InMemoryRecordTable()
        self._meta = {}
        self.ledger = PairLedger()

    # --------------------------------------------------------- record table
    def add_record(self, record: Record) -> None:
        self._table.add_record(record)

    def remove_record(self, record_id: str) -> Optional[Record]:
        return self._table.remove_record(record_id)

    def get_record(self, record_id: str) -> Optional[Record]:
        return self._table.get_record(record_id)

    def has_record(self, record_id: object) -> bool:
        return self._table.has_record(record_id)

    def record_count(self) -> int:
        return self._table.record_count()

    def iter_records(self) -> Iterator[Record]:
        return self._table.iter_records()

    def record_ids(self) -> List[str]:
        return self._table.record_ids()

    def record_at(self, index: int) -> Record:
        return self._table.record_at(index)

    # -------------------------------------------------------------- metadata
    def set_meta(self, key: str, value: object) -> None:
        self._meta[key] = value

    def get_meta(self, key: str, default: object = None) -> object:
        return self._meta.get(key, default)
