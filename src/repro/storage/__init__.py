"""Pluggable session storage (the ``repro.storage`` subsystem).

A streaming entity-resolution session accumulates a lot of state —
records, the token vocabulary and CSR index of the machine pass, candidate
pairs, the vote ledger, posteriors and provenance.  This package puts all
of it behind one :class:`~repro.storage.base.Store` interface with two
backends:

* :class:`MemoryStore` — the default; the pre-existing in-memory
  structures behind the interface.  Bit-identical behavior, no
  persistence of its own (snapshots and the journal handle durability).
* :class:`SqliteStore` — a single WAL-mode SQLite file holding the whole
  session, committed once per applied event.  Restoring a session becomes
  a page-in of the stored tables plus a replay of only the journal events
  newer than ``meta.events_applied``, and records plus token sets stay
  out of process memory while the session runs.

Select a backend with ``WorkflowConfig.storage_backend`` /
``storage_path`` (CLI: ``--storage-backend`` / ``--storage-path``), or
build one directly with :func:`open_store`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.storage.base import PairLedger, StorageError, Store
from repro.storage.memory import MemoryStore
from repro.storage.sqlite import STORE_FILENAME, SqliteStore

#: Backend names accepted by ``WorkflowConfig.storage_backend``.
BACKENDS = ("memory", "sqlite")


def open_store(backend: str, path: Optional[os.PathLike] = None) -> Store:
    """Open a storage backend by name.

    ``path`` is required (and only meaningful) for the ``"sqlite"``
    backend: the store file to create or reopen.
    """
    if backend == "memory":
        return MemoryStore()
    if backend == "sqlite":
        if path is None:
            raise StorageError(
                "the sqlite backend needs a store path "
                "(set storage_path or checkpoint_dir)"
            )
        return SqliteStore(path)
    raise StorageError(f"unknown storage backend {backend!r}; expected {BACKENDS}")


__all__ = [
    "BACKENDS",
    "MemoryStore",
    "PairLedger",
    "STORE_FILENAME",
    "SqliteStore",
    "StorageError",
    "Store",
    "open_store",
]
