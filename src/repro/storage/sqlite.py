"""The SQLite storage backend: one WAL-mode file per streaming session.

:class:`SqliteStore` mirrors every session mutation into a single SQLite
database so :meth:`repro.streaming.StreamingResolver.restore` can *page
in* the session — records, token vocabulary, CSR chunks, candidate pairs,
the vote ledger, posteriors, HIT coverage, provenance and the workload
counters — instead of replaying the whole journal or unpickling a
monolithic snapshot.  The write-ahead journal stays the source of truth
for events the store has not committed yet; ``meta.events_applied`` marks
the boundary.

Pragmas (the embedded-store configuration the schema docs follow)::

    journal_mode = WAL        -- crash-safe, readers never block the writer
    synchronous  = NORMAL     -- fsync at WAL checkpoints, not every commit
    foreign_keys = ON         -- referential integrity
    busy_timeout = 30000 ms   -- wait for locked databases

All writes between two :meth:`commit` calls form one transaction: the
session opens a transaction implicitly at the first mirrored write of an
event and commits after the event is fully applied, so a crash mid-event
rolls back to the previous event boundary and the journal replays the
interrupted event from its intent record.

Float fidelity: SQLite ``REAL`` is an IEEE-754 double, and JSON numbers
round-trip exactly through Python's ``repr``-based encoder, so posteriors,
likelihoods and costs come back bit-identical — the restored session's
:func:`repro.streaming.persistence.state_digest` matches the journal's.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.records.record import Record
from repro.storage.base import JoinRow, PairKey, PairLedger, Store, StorageError, Vote

#: Default store filename inside a checkpoint directory.
STORE_FILENAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    record_id  TEXT PRIMARY KEY,
    attributes TEXT NOT NULL,
    source     TEXT,
    arrival    INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS records_arrival ON records(arrival);
CREATE TABLE IF NOT EXISTS tokens (
    token TEXT PRIMARY KEY,
    col   INTEGER NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS join_rows (
    row_no    INTEGER PRIMARY KEY,
    record_id TEXT NOT NULL,
    source    TEXT,
    empty     INTEGER NOT NULL DEFAULT 0,
    dead      INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS csr_chunks (
    chunk_no    INTEGER PRIMARY KEY AUTOINCREMENT,
    indices     BLOB NOT NULL,
    row_lengths BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS pairs (
    ord        INTEGER PRIMARY KEY AUTOINCREMENT,
    id_a       TEXT NOT NULL,
    id_b       TEXT NOT NULL,
    likelihood REAL,
    UNIQUE (id_a, id_b)
);
CREATE TABLE IF NOT EXISTS pair_votes (
    id_a    TEXT NOT NULL,
    id_b    TEXT NOT NULL,
    votes   TEXT NOT NULL,
    rounds  INTEGER NOT NULL,
    pending INTEGER NOT NULL,
    PRIMARY KEY (id_a, id_b)
);
CREATE TABLE IF NOT EXISTS posteriors (
    id_a      TEXT NOT NULL,
    id_b      TEXT NOT NULL,
    posterior REAL NOT NULL,
    PRIMARY KEY (id_a, id_b)
);
CREATE TABLE IF NOT EXISTS covered (
    id_a TEXT NOT NULL,
    id_b TEXT NOT NULL,
    PRIMARY KEY (id_a, id_b)
);
CREATE TABLE IF NOT EXISTS provenance (
    id_a             TEXT NOT NULL,
    id_b             TEXT NOT NULL,
    discovered_batch INTEGER NOT NULL,
    hit_ids          TEXT NOT NULL,
    vote_events      TEXT NOT NULL,
    PRIMARY KEY (id_a, id_b)
);
CREATE INDEX IF NOT EXISTS provenance_a ON provenance(id_a);
CREATE INDEX IF NOT EXISTS provenance_b ON provenance(id_b);
CREATE TABLE IF NOT EXISTS assignment_seconds (
    ord     INTEGER PRIMARY KEY AUTOINCREMENT,
    seconds REAL NOT NULL
);
"""

_TABLES = (
    "meta",
    "records",
    "tokens",
    "join_rows",
    "csr_chunks",
    "pairs",
    "pair_votes",
    "posteriors",
    "covered",
    "provenance",
    "assignment_seconds",
)


def _blob(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array, dtype="<i8").tobytes()


def _unblob(blob: bytes) -> np.ndarray:
    return np.frombuffer(blob, dtype="<i8").astype(np.int64)


class SqlitePairLedger(PairLedger):
    """The hot ledger dicts, with every mutation mirrored into SQL.

    Reads stay pure dict access; each override applies the in-memory
    change first (the base class) and then writes the *post-state* of the
    touched rows, so the tables always equal the dicts at event
    boundaries regardless of how the session sequenced its calls.
    """

    def __init__(self, store: "SqliteStore") -> None:
        super().__init__()
        self._store = store

    def add_pair(self, key: PairKey, likelihood: Optional[float]) -> None:
        super().add_pair(key, likelihood)
        self._store.execute(
            "INSERT INTO pairs (id_a, id_b, likelihood) VALUES (?, ?, ?) "
            "ON CONFLICT(id_a, id_b) DO UPDATE SET likelihood = excluded.likelihood",
            (key[0], key[1], self.pairs[key]),
        )

    def drop_pair(self, key: PairKey) -> None:
        super().drop_pair(key)
        for table in ("pairs", "pair_votes", "posteriors", "covered"):
            self._store.execute(
                f"DELETE FROM {table} WHERE id_a = ? AND id_b = ?", key
            )

    def record_fresh_votes(self, key: PairKey, votes: List[Vote]) -> None:
        super().record_fresh_votes(key, votes)
        self._store.execute(
            "INSERT OR REPLACE INTO pair_votes (id_a, id_b, votes, rounds, pending) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                key[0],
                key[1],
                json.dumps([[worker, bool(answer)] for worker, _, answer in votes]),
                self.vote_rounds[key],
                self.pending_votes[key],
            ),
        )

    def mark_covered(self, keys: Iterable[PairKey]) -> None:
        keys = list(keys)
        super().mark_covered(keys)
        self._store.executemany(
            "INSERT OR IGNORE INTO covered (id_a, id_b) VALUES (?, ?)", keys
        )

    def set_posterior(self, key: PairKey, posterior: float) -> None:
        super().set_posterior(key, posterior)
        self._store.execute(
            "INSERT OR REPLACE INTO posteriors (id_a, id_b, posterior) "
            "VALUES (?, ?, ?)",
            (key[0], key[1], float(posterior)),
        )

    def replace_posteriors(self, posteriors: Dict[PairKey, float]) -> None:
        super().replace_posteriors(posteriors)
        self._store.execute("DELETE FROM posteriors")
        self._store.executemany(
            "INSERT INTO posteriors (id_a, id_b, posterior) VALUES (?, ?, ?)",
            [(key[0], key[1], float(value)) for key, value in self.posteriors.items()],
        )

    def clear_pending(self, keys: Iterable[PairKey]) -> None:
        keys = list(keys)
        super().clear_pending(keys)
        self._store.executemany(
            "UPDATE pair_votes SET pending = 0 WHERE id_a = ? AND id_b = ?", keys
        )

    def clear_all_pending(self) -> None:
        super().clear_all_pending()
        self._store.execute("UPDATE pair_votes SET pending = 0")

    def load_bulk(self, **state) -> None:
        super().load_bulk(**state)
        for table in ("pairs", "pair_votes", "posteriors", "covered"):
            self._store.execute(f"DELETE FROM {table}")
        self._store.executemany(
            "INSERT INTO pairs (id_a, id_b, likelihood) VALUES (?, ?, ?)",
            [(key[0], key[1], value) for key, value in self.pairs.items()],
        )
        self._store.executemany(
            "INSERT INTO pair_votes (id_a, id_b, votes, rounds, pending) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (
                    key[0],
                    key[1],
                    json.dumps(
                        [[worker, bool(answer)] for worker, _, answer in votes]
                    ),
                    self.vote_rounds.get(key, 0),
                    self.pending_votes.get(key, 0),
                )
                for key, votes in self.votes.items()
            ],
        )
        self._store.executemany(
            "INSERT INTO posteriors (id_a, id_b, posterior) VALUES (?, ?, ?)",
            [(key[0], key[1], float(value)) for key, value in self.posteriors.items()],
        )
        self._store.executemany(
            "INSERT INTO covered (id_a, id_b) VALUES (?, ?)", list(self.covered)
        )


class SqliteStore(Store):
    """Disk-backed session store over one WAL-mode SQLite file."""

    backend_name = "sqlite"
    persistent = True

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        except sqlite3.Error as error:  # pragma: no cover - bad path
            raise StorageError(f"cannot open sqlite store {self.path}: {error}")
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
        except sqlite3.DatabaseError as error:
            self._conn.close()
            raise StorageError(f"{self.path} is not a session store: {error}")
        self._in_txn = False
        # Resident id set: makes ``in store`` / ``len(store)`` O(1) without
        # holding any record content in memory.
        self._ids: Set[str] = {
            row[0] for row in self._conn.execute("SELECT record_id FROM records")
        }
        row = self._conn.execute("SELECT MAX(arrival) FROM records").fetchone()
        self._next_arrival = (row[0] + 1) if row and row[0] is not None else 0
        self.ledger = SqlitePairLedger(self)
        self.load_ledger()

    # ---------------------------------------------------------- transactions
    def execute(self, sql: str, params: Sequence = ()) -> sqlite3.Cursor:
        """Run one statement inside the open per-event transaction."""
        if not self._in_txn:
            self._conn.execute("BEGIN")
            self._in_txn = True
        return self._conn.execute(sql, params)

    def executemany(self, sql: str, rows: Sequence[Sequence]) -> None:
        if not rows:
            return
        if not self._in_txn:
            self._conn.execute("BEGIN")
            self._in_txn = True
        self._conn.executemany(sql, rows)

    def commit(self) -> None:
        if self._in_txn:
            self._conn.execute("COMMIT")
            self._in_txn = False
            if obs.enabled():
                obs.inc("sqlite_commits_total", 1,
                        help="Transactions committed by the SQLite store.")

    def rollback(self) -> None:
        """Abandon the open transaction (crash-simulation hooks in tests)."""
        if self._in_txn:
            self._conn.execute("ROLLBACK")
            self._in_txn = False

    def close(self) -> None:
        self.rollback()
        self._conn.close()

    def reset(self) -> None:
        for table in _TABLES:
            self.execute(f"DELETE FROM {table}")
        self._ids = set()
        self._next_arrival = 0
        self.ledger = SqlitePairLedger(self)

    # --------------------------------------------------------- record table
    def add_record(self, record: Record) -> None:
        self.execute(
            "INSERT INTO records (record_id, attributes, source, arrival) "
            "VALUES (?, ?, ?, ?)",
            (
                record.record_id,
                json.dumps(dict(record.attributes)),
                record.source,
                self._next_arrival,
            ),
        )
        self._next_arrival += 1
        self._ids.add(record.record_id)

    def remove_record(self, record_id: str) -> Optional[Record]:
        record = self.get_record(record_id)
        if record is None:
            return None
        self.execute("DELETE FROM records WHERE record_id = ?", (record_id,))
        self._ids.discard(record_id)
        return record

    def get_record(self, record_id: str) -> Optional[Record]:
        if record_id not in self._ids:
            return None
        row = self.execute(
            "SELECT attributes, source FROM records WHERE record_id = ?",
            (record_id,),
        ).fetchone()
        if row is None:  # pragma: no cover - id set and table disagree
            return None
        return Record(
            record_id=record_id, attributes=json.loads(row[0]), source=row[1]
        )

    def has_record(self, record_id: object) -> bool:
        return record_id in self._ids

    def record_count(self) -> int:
        return len(self._ids)

    def iter_records(self) -> Iterator[Record]:
        cursor = self._conn.execute(
            "SELECT record_id, attributes, source FROM records ORDER BY arrival"
        )
        for record_id, attributes, source in cursor:
            yield Record(
                record_id=record_id, attributes=json.loads(attributes), source=source
            )

    def record_ids(self) -> List[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT record_id FROM records ORDER BY arrival"
            )
        ]

    def record_at(self, index: int) -> Record:
        row = self._conn.execute(
            "SELECT record_id, attributes, source FROM records "
            "ORDER BY arrival LIMIT 1 OFFSET ?",
            (index,),
        ).fetchone()
        if row is None:
            raise IndexError(index)
        return Record(record_id=row[0], attributes=json.loads(row[1]), source=row[2])

    # -------------------------------------------------------------- metadata
    def set_meta(self, key: str, value: object) -> None:
        self.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, json.dumps(value)),
        )

    def get_meta(self, key: str, default: object = None) -> object:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    # ----------------------------------------------------------- join mirror
    def join_append_rows(self, rows: Sequence[JoinRow]) -> None:
        self.executemany(
            "INSERT INTO join_rows (row_no, record_id, source, empty, dead) "
            "VALUES (?, ?, ?, ?, ?)",
            [
                (row_no, record_id, source, int(empty), int(dead))
                for row_no, record_id, source, empty, dead in rows
            ],
        )

    def join_mark_dead(self, row_no: int) -> None:
        self.execute("UPDATE join_rows SET dead = 1 WHERE row_no = ?", (row_no,))

    def join_replace(
        self,
        rows: Sequence[JoinRow],
        indices: np.ndarray,
        row_lengths: np.ndarray,
    ) -> None:
        self.execute("DELETE FROM join_rows")
        self.execute("DELETE FROM csr_chunks")
        self.join_append_rows(rows)
        if len(row_lengths):
            self.append_csr_chunk(indices, row_lengths)

    def extend_vocabulary(self, items: Sequence[Tuple[str, int]]) -> None:
        self.executemany("INSERT INTO tokens (token, col) VALUES (?, ?)", items)

    def append_csr_chunk(self, indices: np.ndarray, row_lengths: np.ndarray) -> None:
        self.execute(
            "INSERT INTO csr_chunks (indices, row_lengths) VALUES (?, ?)",
            (_blob(np.asarray(indices)), _blob(np.asarray(row_lengths))),
        )

    def load_join_state(self) -> Optional[Dict[str, object]]:
        rows = [
            (row_no, record_id, source, bool(empty), bool(dead))
            for row_no, record_id, source, empty, dead in self._conn.execute(
                "SELECT row_no, record_id, source, empty, dead "
                "FROM join_rows ORDER BY row_no"
            )
        ]
        vocabulary = {
            token: col
            for token, col in self._conn.execute(
                "SELECT token, col FROM tokens ORDER BY col"
            )
        }
        chunks: List[np.ndarray] = []
        lengths: List[np.ndarray] = []
        for indices_blob, lengths_blob in self._conn.execute(
            "SELECT indices, row_lengths FROM csr_chunks ORDER BY chunk_no"
        ):
            chunks.append(_unblob(indices_blob))
            lengths.append(_unblob(lengths_blob))
        if not rows and not vocabulary and not chunks:
            return None
        indices = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        row_lengths = (
            np.concatenate(lengths) if lengths else np.empty(0, dtype=np.int64)
        )
        indptr = np.zeros(len(row_lengths) + 1, dtype=np.int64)
        np.cumsum(row_lengths, out=indptr[1:])
        if len(rows) != len(row_lengths):
            raise StorageError(
                f"join substrate of {self.path} is inconsistent: "
                f"{len(rows)} rows vs {len(row_lengths)} CSR row lengths"
            )
        return {
            "rows": rows,
            "vocabulary": vocabulary,
            "indices": indices,
            "indptr": indptr.tolist(),
        }

    # ----------------------------------------------------- provenance mirror
    def prov_write(
        self,
        key: PairKey,
        discovered_batch: int,
        hit_ids: Sequence[str],
        vote_events: Sequence[Tuple[int, int, int]],
    ) -> None:
        self.execute(
            "INSERT OR REPLACE INTO provenance "
            "(id_a, id_b, discovered_batch, hit_ids, vote_events) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                key[0],
                key[1],
                discovered_batch,
                json.dumps(list(hit_ids)),
                json.dumps([list(event) for event in vote_events]),
            ),
        )

    def prov_delete(self, keys: Iterable[PairKey]) -> None:
        self.executemany(
            "DELETE FROM provenance WHERE id_a = ? AND id_b = ?", list(keys)
        )

    def load_provenance(
        self,
    ) -> Optional[List[Tuple[PairKey, int, List[str], List[Tuple[int, int, int]]]]]:
        return [
            (
                (id_a, id_b),
                discovered,
                json.loads(hit_ids),
                [tuple(event) for event in json.loads(vote_events)],
            )
            for id_a, id_b, discovered, hit_ids, vote_events in self._conn.execute(
                "SELECT id_a, id_b, discovered_batch, hit_ids, vote_events "
                "FROM provenance ORDER BY rowid"
            )
        ]

    # ------------------------------------------------------- crowd workload
    def append_assignment_seconds(self, values: Sequence[float]) -> None:
        self.executemany(
            "INSERT INTO assignment_seconds (seconds) VALUES (?)",
            [(float(value),) for value in values],
        )

    def load_assignment_seconds(self) -> List[float]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT seconds FROM assignment_seconds ORDER BY ord"
            )
        ]

    # ------------------------------------------------------------- page-in
    def load_ledger(self) -> None:
        """Populate the hot ledger dicts from the pair tables."""
        pairs: Dict[PairKey, Optional[float]] = {}
        for id_a, id_b, likelihood in self._conn.execute(
            "SELECT id_a, id_b, likelihood FROM pairs ORDER BY ord"
        ):
            pairs[(id_a, id_b)] = likelihood
        votes: Dict[PairKey, List[Vote]] = {}
        rounds: Dict[PairKey, int] = {}
        pending: Dict[PairKey, int] = {}
        for id_a, id_b, votes_json, round_count, pending_count in self._conn.execute(
            "SELECT id_a, id_b, votes, rounds, pending FROM pair_votes"
        ):
            key = (id_a, id_b)
            votes[key] = [
                (worker, key, bool(answer)) for worker, answer in json.loads(votes_json)
            ]
            rounds[key] = round_count
            # A live session pops a pair's pending counter when it is
            # aggregated (the SQL mirror stores 0), so only positive
            # counters come back as dict entries.
            if pending_count:
                pending[key] = pending_count
        posteriors = {
            (id_a, id_b): posterior
            for id_a, id_b, posterior in self._conn.execute(
                "SELECT id_a, id_b, posterior FROM posteriors"
            )
        }
        covered = {
            (id_a, id_b)
            for id_a, id_b in self._conn.execute("SELECT id_a, id_b FROM covered")
        }
        # Direct dict assignment: loading must not re-mirror what was read.
        PairLedger.load_bulk(
            self.ledger,
            pairs=pairs,
            votes=votes,
            vote_rounds=rounds,
            pending_votes=pending,
            posteriors=posteriors,
            covered=covered,
        )
