"""Dawid-Skene EM aggregation of crowd votes.

The paper combines the three assignments of every HIT with "the EM-based
algorithm [9], which has been shown to be effective in previous work"
(Section 7.3).  This is the classic Dawid & Skene (1979) model specialised
to binary labels: each pair has a latent true label (match / non-match) and
every worker has a 2x2 confusion matrix; EM alternates between estimating
the posterior of the true labels and re-estimating worker confusion matrices
and the class prior.  Spammers (random or constant answerers) receive
near-uninformative confusion matrices and therefore stop influencing the
aggregate, which is exactly why the paper prefers EM over vote averaging.

Both EM steps are vectorized: votes live in flat ``(pair index, worker
index, answer)`` numpy arrays and every accumulation is a weighted
``np.bincount`` scatter-add, so iteration cost no longer pays a Python
dict/loop price per vote (the regression test pins the posteriors to the
reference per-vote implementation within float tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

import numpy as np

from repro import obs
from repro.aggregation.majority import Vote, majority_vote
from repro.records.pairs import canonical_pair


@dataclass
class DawidSkeneResult:
    """Output of one EM run."""

    posteriors: Dict[Tuple[str, str], float]
    worker_accuracy: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    class_prior: float = 0.5
    iterations: int = 0
    converged: bool = False

    def decisions(self, threshold: float = 0.5) -> Dict[Tuple[str, str], bool]:
        """Binary decisions from the match posteriors."""
        return {key: posterior > threshold for key, posterior in self.posteriors.items()}


class DawidSkeneAggregator:
    """Binary Dawid-Skene EM with majority-vote initialisation.

    Parameters
    ----------
    max_iterations:
        Maximum number of EM iterations.
    tolerance:
        Convergence threshold on the maximum absolute change of any pair
        posterior between iterations.
    smoothing:
        Strength (pseudo-count) of the worker prior added to the
        confusion-matrix counts.  Besides avoiding degenerate 0/1
        probabilities it anchors the model against the label-switching
        symmetry of the two-coin Dawid-Skene model, which matters when each
        worker only has a handful of votes (e.g. a single three-assignment
        HIT batch on a small dataset).
    anchor_accuracy:
        Prior belief about worker accuracy used for the anchoring
        pseudo-counts; must be above 0.5 so that "workers are better than
        chance" breaks the symmetry.  Real vote counts override the prior as
        soon as a worker has more than a few votes.
    """

    name = "dawid-skene"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 4.0,
        anchor_accuracy: float = 0.75,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if not 0.5 < anchor_accuracy <= 1.0:
            raise ValueError("anchor_accuracy must be in (0.5, 1]")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.anchor_accuracy = anchor_accuracy

    def aggregate(self, votes: Iterable[Vote]) -> Dict[Tuple[str, str], float]:
        """Return the per-pair match posterior (interface shared with majority)."""
        return self.run(votes).posteriors

    def run(self, votes: Iterable[Vote]) -> DawidSkeneResult:
        """Run EM and return posteriors plus per-worker accuracy estimates."""
        votes = [
            (worker_id, canonical_pair(*pair_key), bool(answer))
            for worker_id, pair_key, answer in votes
        ]
        if not votes:
            return DawidSkeneResult(posteriors={}, converged=True)

        pair_keys = sorted({pair_key for _, pair_key, _ in votes})
        worker_ids = sorted({worker_id for worker_id, _, _ in votes})
        pair_index = {key: index for index, key in enumerate(pair_keys)}
        worker_index = {worker: index for index, worker in enumerate(worker_ids)}
        n_pairs, n_workers = len(pair_keys), len(worker_ids)

        # Flat vote arrays: vote v is (pair_positions[v], worker_positions[v],
        # answers[v]).  Both EM steps are scatter-adds over these arrays
        # (np.bincount with weights), so no per-vote Python bytecode runs
        # inside the iteration loop.
        pair_positions = np.fromiter(
            (pair_index[pair_key] for _, pair_key, _ in votes),
            dtype=np.int64,
            count=len(votes),
        )
        worker_positions = np.fromiter(
            (worker_index[worker_id] for worker_id, _, _ in votes),
            dtype=np.int64,
            count=len(votes),
        )
        answers = np.fromiter(
            (answer for _, _, answer in votes), dtype=bool, count=len(votes)
        )
        yes_pairs = pair_positions[answers]
        yes_workers = worker_positions[answers]
        no_pairs = pair_positions[~answers]
        no_workers = worker_positions[~answers]

        # Initialise posteriors with the majority vote (standard DS warm start).
        initial = majority_vote(votes)
        posterior = np.array([initial[key] for key in pair_keys], dtype=float)
        posterior = np.clip(posterior, 1e-6, 1 - 1e-6)

        # Worker confusion parameters: sensitivity = P(vote yes | match),
        # specificity = P(vote no | non-match).
        sensitivity = np.full(n_workers, 0.8)
        specificity = np.full(n_workers, 0.8)
        prior = float(np.mean(posterior))

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # M-step: re-estimate worker parameters and the class prior.
            # Pseudo-counts encode the "better than chance" worker prior.
            p_match = posterior[pair_positions]
            anchor = self.anchor_accuracy * self.smoothing
            total_match = self.smoothing + np.bincount(
                worker_positions, weights=p_match, minlength=n_workers
            )
            total_nonmatch = self.smoothing + np.bincount(
                worker_positions, weights=1.0 - p_match, minlength=n_workers
            )
            yes_match = anchor + np.bincount(
                yes_workers, weights=posterior[yes_pairs], minlength=n_workers
            )
            no_nonmatch = anchor + np.bincount(
                no_workers, weights=1.0 - posterior[no_pairs], minlength=n_workers
            )
            sensitivity = yes_match / total_match
            specificity = no_nonmatch / total_nonmatch
            prior = float(np.clip(np.mean(posterior), 1e-6, 1 - 1e-6))

            # E-step: recompute pair posteriors.  Each vote contributes one
            # log-likelihood term per hypothesis; summing them per pair is a
            # weighted bincount over the pair indices.
            log_match = np.full(n_pairs, np.log(prior))
            log_nonmatch = np.full(n_pairs, np.log(1 - prior))
            log_match += np.bincount(
                yes_pairs, weights=np.log(sensitivity)[yes_workers], minlength=n_pairs
            )
            log_nonmatch += np.bincount(
                yes_pairs, weights=np.log(1 - specificity)[yes_workers], minlength=n_pairs
            )
            log_match += np.bincount(
                no_pairs, weights=np.log(1 - sensitivity)[no_workers], minlength=n_pairs
            )
            log_nonmatch += np.bincount(
                no_pairs, weights=np.log(specificity)[no_workers], minlength=n_pairs
            )
            maximum = np.maximum(log_match, log_nonmatch)
            numerator = np.exp(log_match - maximum)
            new_posterior = numerator / (numerator + np.exp(log_nonmatch - maximum))

            change = float(np.max(np.abs(new_posterior - posterior)))
            posterior = new_posterior
            if change < self.tolerance:
                converged = True
                break

        if obs.enabled():
            obs.inc("aggregation_runs_total", 1, aggregator=self.name,
                    help="Aggregator invocations.")
            obs.inc("dawid_skene_em_iterations_total", iterations,
                    help="Cumulative EM iterations across runs.")
            obs.set_gauge("dawid_skene_last_iterations", iterations,
                          help="EM iterations of the most recent run.")
            obs.set_gauge("dawid_skene_last_convergence_delta", change,
                          help="Final max-abs posterior change of the last run.")
            obs.set_gauge("dawid_skene_last_converged", 1.0 if converged else 0.0,
                          help="Whether the last EM run converged (1) or hit max_iterations (0).")

        worker_accuracy = {
            worker: (float(sensitivity[worker_index[worker]]), float(specificity[worker_index[worker]]))
            for worker in worker_ids
        }
        posteriors = {key: float(posterior[pair_index[key]]) for key in pair_keys}
        return DawidSkeneResult(
            posteriors=posteriors,
            worker_accuracy=worker_accuracy,
            class_prior=prior,
            iterations=iterations,
            converged=converged,
        )
