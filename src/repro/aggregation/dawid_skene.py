"""Dawid-Skene EM aggregation of crowd votes.

The paper combines the three assignments of every HIT with "the EM-based
algorithm [9], which has been shown to be effective in previous work"
(Section 7.3).  This is the classic Dawid & Skene (1979) model specialised
to binary labels: each pair has a latent true label (match / non-match) and
every worker has a 2x2 confusion matrix; EM alternates between estimating
the posterior of the true labels and re-estimating worker confusion matrices
and the class prior.  Spammers (random or constant answerers) receive
near-uninformative confusion matrices and therefore stop influencing the
aggregate, which is exactly why the paper prefers EM over vote averaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.aggregation.majority import Vote, majority_vote
from repro.records.pairs import canonical_pair


@dataclass
class DawidSkeneResult:
    """Output of one EM run."""

    posteriors: Dict[Tuple[str, str], float]
    worker_accuracy: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    class_prior: float = 0.5
    iterations: int = 0
    converged: bool = False

    def decisions(self, threshold: float = 0.5) -> Dict[Tuple[str, str], bool]:
        """Binary decisions from the match posteriors."""
        return {key: posterior > threshold for key, posterior in self.posteriors.items()}


class DawidSkeneAggregator:
    """Binary Dawid-Skene EM with majority-vote initialisation.

    Parameters
    ----------
    max_iterations:
        Maximum number of EM iterations.
    tolerance:
        Convergence threshold on the maximum absolute change of any pair
        posterior between iterations.
    smoothing:
        Strength (pseudo-count) of the worker prior added to the
        confusion-matrix counts.  Besides avoiding degenerate 0/1
        probabilities it anchors the model against the label-switching
        symmetry of the two-coin Dawid-Skene model, which matters when each
        worker only has a handful of votes (e.g. a single three-assignment
        HIT batch on a small dataset).
    anchor_accuracy:
        Prior belief about worker accuracy used for the anchoring
        pseudo-counts; must be above 0.5 so that "workers are better than
        chance" breaks the symmetry.  Real vote counts override the prior as
        soon as a worker has more than a few votes.
    """

    name = "dawid-skene"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 4.0,
        anchor_accuracy: float = 0.75,
    ) -> None:
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        if not 0.5 < anchor_accuracy <= 1.0:
            raise ValueError("anchor_accuracy must be in (0.5, 1]")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self.anchor_accuracy = anchor_accuracy

    def aggregate(self, votes: Iterable[Vote]) -> Dict[Tuple[str, str], float]:
        """Return the per-pair match posterior (interface shared with majority)."""
        return self.run(votes).posteriors

    def run(self, votes: Iterable[Vote]) -> DawidSkeneResult:
        """Run EM and return posteriors plus per-worker accuracy estimates."""
        votes = [
            (worker_id, canonical_pair(*pair_key), bool(answer))
            for worker_id, pair_key, answer in votes
        ]
        if not votes:
            return DawidSkeneResult(posteriors={}, converged=True)

        pair_keys = sorted({pair_key for _, pair_key, _ in votes})
        worker_ids = sorted({worker_id for worker_id, _, _ in votes})
        pair_index = {key: index for index, key in enumerate(pair_keys)}
        worker_index = {worker: index for index, worker in enumerate(worker_ids)}
        n_pairs, n_workers = len(pair_keys), len(worker_ids)

        # votes_by_pair[p] = list of (worker index, answer)
        votes_by_pair: List[List[Tuple[int, bool]]] = [[] for _ in range(n_pairs)]
        for worker_id, pair_key, answer in votes:
            votes_by_pair[pair_index[pair_key]].append((worker_index[worker_id], answer))

        # Initialise posteriors with the majority vote (standard DS warm start).
        initial = majority_vote(votes)
        posterior = np.array([initial[key] for key in pair_keys], dtype=float)
        posterior = np.clip(posterior, 1e-6, 1 - 1e-6)

        # Worker confusion parameters: sensitivity = P(vote yes | match),
        # specificity = P(vote no | non-match).
        sensitivity = np.full(n_workers, 0.8)
        specificity = np.full(n_workers, 0.8)
        prior = float(np.mean(posterior))

        iterations = 0
        converged = False
        for iterations in range(1, self.max_iterations + 1):
            # M-step: re-estimate worker parameters and the class prior.
            # Pseudo-counts encode the "better than chance" worker prior.
            yes_match = np.full(n_workers, self.anchor_accuracy * self.smoothing)
            total_match = np.full(n_workers, self.smoothing)
            no_nonmatch = np.full(n_workers, self.anchor_accuracy * self.smoothing)
            total_nonmatch = np.full(n_workers, self.smoothing)
            for pair_position, pair_votes in enumerate(votes_by_pair):
                p_match = posterior[pair_position]
                for worker_position, answer in pair_votes:
                    total_match[worker_position] += p_match
                    total_nonmatch[worker_position] += 1 - p_match
                    if answer:
                        yes_match[worker_position] += p_match
                    else:
                        no_nonmatch[worker_position] += 1 - p_match
            sensitivity = yes_match / total_match
            specificity = no_nonmatch / total_nonmatch
            prior = float(np.clip(np.mean(posterior), 1e-6, 1 - 1e-6))

            # E-step: recompute pair posteriors.
            new_posterior = np.empty_like(posterior)
            for pair_position, pair_votes in enumerate(votes_by_pair):
                log_match = np.log(prior)
                log_nonmatch = np.log(1 - prior)
                for worker_position, answer in pair_votes:
                    if answer:
                        log_match += np.log(sensitivity[worker_position])
                        log_nonmatch += np.log(1 - specificity[worker_position])
                    else:
                        log_match += np.log(1 - sensitivity[worker_position])
                        log_nonmatch += np.log(specificity[worker_position])
                maximum = max(log_match, log_nonmatch)
                numerator = np.exp(log_match - maximum)
                denominator = numerator + np.exp(log_nonmatch - maximum)
                new_posterior[pair_position] = numerator / denominator

            change = float(np.max(np.abs(new_posterior - posterior)))
            posterior = new_posterior
            if change < self.tolerance:
                converged = True
                break

        worker_accuracy = {
            worker: (float(sensitivity[worker_index[worker]]), float(specificity[worker_index[worker]]))
            for worker in worker_ids
        }
        posteriors = {key: float(posterior[pair_index[key]]) for key in pair_keys}
        return DawidSkeneResult(
            posteriors=posteriors,
            worker_accuracy=worker_accuracy,
            class_prior=prior,
            iterations=iterations,
            converged=converged,
        )
