"""Answer aggregation for replicated crowd assignments.

Each HIT is replicated into multiple assignments (three in the paper) done
by different workers; the per-pair votes must be combined into a final
decision and a confidence used to rank pairs.  The paper uses the EM-based
algorithm of Dawid & Skene [9] because plain vote averaging is susceptible
to spammers (Section 7.3); majority voting is provided as the simple
baseline for the ablation benchmark.
"""

from repro.aggregation.majority import majority_vote, MajorityAggregator
from repro.aggregation.dawid_skene import DawidSkeneAggregator, DawidSkeneResult

__all__ = [
    "majority_vote",
    "MajorityAggregator",
    "DawidSkeneAggregator",
    "DawidSkeneResult",
]
