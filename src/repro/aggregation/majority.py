"""Majority-vote aggregation of per-pair crowd votes."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.records.pairs import canonical_pair

# A vote is (worker_id, pair_key, answer) with answer True = "same entity".
Vote = Tuple[str, Tuple[str, str], bool]


def majority_vote(votes: Iterable[Vote]) -> Dict[Tuple[str, str], float]:
    """Aggregate votes into the fraction of "yes" answers per pair.

    The returned value per pair is the proportion of workers who said the
    two records match; 0.5 ties are preserved as 0.5 so the caller can apply
    its own tie-breaking rule.
    """
    yes_counts: Dict[Tuple[str, str], int] = defaultdict(int)
    totals: Dict[Tuple[str, str], int] = defaultdict(int)
    for _worker_id, pair_key, answer in votes:
        key = canonical_pair(*pair_key)
        totals[key] += 1
        if answer:
            yes_counts[key] += 1
    return {key: yes_counts[key] / totals[key] for key in totals}


class MajorityAggregator:
    """Aggregator API wrapper around :func:`majority_vote`.

    ``aggregate`` returns a mapping from pair key to the probability that
    the pair is a match (here: the raw yes-fraction), matching the interface
    of :class:`repro.aggregation.dawid_skene.DawidSkeneAggregator`.
    """

    name = "majority"

    def aggregate(self, votes: Iterable[Vote]) -> Dict[Tuple[str, str], float]:
        """Return the per-pair match probability under majority voting."""
        return majority_vote(votes)

    def decisions(
        self, votes: Iterable[Vote], threshold: float = 0.5
    ) -> Dict[Tuple[str, str], bool]:
        """Binary match decisions: yes-fraction strictly above the threshold.

        The default threshold of 0.5 means a strict majority is required,
        with ties resolved as "non-match" (the conservative choice).
        """
        probabilities = self.aggregate(votes)
        return {key: probability > threshold for key, probability in probabilities.items()}


def vote_matrix(votes: Iterable[Vote]) -> Mapping[Tuple[str, str], List[Tuple[str, bool]]]:
    """Group votes by pair: pair key -> list of (worker, answer)."""
    grouped: Dict[Tuple[str, str], List[Tuple[str, bool]]] = defaultdict(list)
    for worker_id, pair_key, answer in votes:
        grouped[canonical_pair(*pair_key)].append((worker_id, answer))
    return grouped
