"""``python -m repro.service`` — run the resolution server standalone.

Equivalent to ``repro serve``; see :mod:`repro.cli` for the argument
surface and ``docs/service.md`` for deployment guidance.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
