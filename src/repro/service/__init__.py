"""Resolution-as-a-service: an asyncio HTTP front-end for streaming sessions.

The engine is a library; this package makes it a long-lived server process
hosting many concurrent :class:`~repro.streaming.StreamingResolver`
sessions behind a small HTTP/1.1 API (stdlib ``asyncio`` only — no new
dependencies).

Architecture — see ``docs/service.md`` for the full picture:

* :class:`~repro.service.app.ResolutionService` owns the HTTP listener, the
  route table, and the lifecycle (start / graceful stop).
* :class:`~repro.service.shards.ShardExecutor` gives every session exactly
  one owner: sessions are routed to a shard by a CRC32 hash of their
  routing key, and each shard executes its work on one dedicated thread
  through an **ordered queue** — requests against one session serialize
  (preserving the journal/storage guarantees, including SQLite thread
  affinity), while sessions on different shards run concurrently.  A full
  queue answers ``429`` with ``Retry-After`` instead of buffering without
  bound.
* :class:`~repro.service.sessions.SessionManager` maps the HTTP lifecycle
  (create / append / retract / update / flush / status / save / restore /
  close) onto resolver calls and JSON payloads.
* :class:`~repro.service.client.ServiceClient` is the matching blocking
  client (stdlib ``http.client``) used by the tests, the benchmark and CI.

The machine pass of every hosted session runs on the **reused** process
pool (:mod:`repro.simjoin.pool`) by default, so streaming batches stop
paying fork-per-batch and per-worker index serialization; graceful
shutdown drains the shard queues, ``save()``\\ s every durable session and
tears the pools down.
"""

from repro.service.app import ResolutionService
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.errors import ServiceError
from repro.service.sessions import SessionManager
from repro.service.shards import ShardExecutor

__all__ = [
    "ResolutionService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "SessionManager",
    "ShardExecutor",
]
