"""Session lifecycle behind the HTTP API: create, mutate, save, restore.

A hosted session is one :class:`~repro.streaming.StreamingResolver` pinned
to one shard (see :mod:`repro.service.shards`).  The manager owns the
``session_id -> handle`` registry — mutated only on the event-loop thread —
while every resolver call (including construction, restore and close: the
SQLite store and journal are thread-affine) runs on the owning shard's
thread through the executor.

Wire format: records travel as the journal's JSON encoding
(``{"record_id", "attributes", "source"}``), pair keys as two-element
arrays, posteriors as sorted ``[id_a, id_b, posterior]`` triples.  Floats
round-trip through JSON exactly (shortest-repr float64), so a client can
assert **bit-identity** between a served session and a standalone resolver
replaying the same events — the concurrency property tests do.
"""

from __future__ import annotations

import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import WorkflowConfig
from repro.core.results import ResolutionResult
from repro.records.record import Record, RecordError
from repro.service.errors import (
    bad_request,
    resume_conflict,
    session_closed,
    session_exists,
    unknown_session,
)
from repro.service.shards import ShardExecutor
from repro.streaming import StreamingResolver
from repro.streaming.persistence import PersistenceError, decode_record


def encode_result(result: ResolutionResult) -> Dict[str, object]:
    """JSON payload of a resolution snapshot (deterministically ordered)."""
    return {
        "matches": sorted([list(key) for key in result.matches]),
        "posteriors": sorted(
            [[key[0], key[1], value] for key, value in result.posteriors.items()]
        ),
        "candidate_count": result.candidate_count,
        "hit_count": result.hit_count,
        "assignment_count": result.assignment_count,
        "cost": result.cost,
        "recall_ceiling": result.recall_ceiling,
    }


def _parse_records(payload: object) -> List[Record]:
    if not isinstance(payload, list):
        raise bad_request("'records' must be an array of record objects")
    records = []
    for entry in payload:
        if not isinstance(entry, dict) or "record_id" not in entry:
            raise bad_request(f"record entry without a record_id: {entry!r}")
        try:
            records.append(
                decode_record(
                    {
                        "record_id": entry["record_id"],
                        "attributes": entry.get("attributes", {}),
                        "source": entry.get("source"),
                    }
                )
            )
        except (TypeError, ValueError, RecordError) as error:
            raise bad_request(f"invalid record: {error}") from None
    return records


def _parse_truth(payload: object) -> List[Tuple[str, str]]:
    if not isinstance(payload, list):
        raise bad_request("'truth' must be an array of [id_a, id_b] pairs")
    pairs = []
    for entry in payload:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise bad_request(f"invalid truth pair: {entry!r}")
        pairs.append((str(entry[0]), str(entry[1])))
    return pairs


class SessionHandle:
    """Registry entry of one hosted session."""

    def __init__(self, session_id: str, shard: int) -> None:
        self.session_id = session_id
        self.shard = shard
        self.resolver: Optional[StreamingResolver] = None
        self.closed = False
        #: Final status captured at close time (status stays readable).
        self.final_status: Optional[Dict[str, object]] = None

    @property
    def durable(self) -> bool:
        resolver = self.resolver
        if resolver is None:
            return False
        return bool(resolver.config.checkpoint_dir) or resolver.storage.persistent


class SessionManager:
    """The ``session_id -> resolver`` registry and its lifecycle operations.

    All public coroutines are called from the event loop; registry
    mutations happen there (single-threaded, so no lock), resolver work is
    shipped to the owning shard.
    """

    def __init__(self, shards: ShardExecutor) -> None:
        self.shards = shards
        self.sessions: Dict[str, SessionHandle] = {}

    # ------------------------------------------------------------- helpers
    def _handle(self, session_id: str, allow_closed: bool = False) -> SessionHandle:
        handle = self.sessions.get(session_id)
        if handle is None:
            raise unknown_session(session_id)
        if handle.closed and not allow_closed:
            raise session_closed(session_id)
        return handle

    def _status_payload(self, handle: SessionHandle) -> Dict[str, object]:
        resolver = handle.resolver
        assert resolver is not None
        return {
            "session_id": handle.session_id,
            "shard": handle.shard,
            "closed": handle.closed,
            "records": resolver.record_count,
            "candidates": resolver.candidate_count,
            "events_applied": resolver.events_applied,
            "durable": handle.durable,
        }

    # ----------------------------------------------------------- lifecycle
    async def create(self, payload: dict) -> Dict[str, object]:
        """Create a session from a ``WorkflowConfig`` JSON payload."""
        if not isinstance(payload, dict):
            raise bad_request("request body must be a JSON object")
        session_id = payload.get("session_id") or uuid.uuid4().hex
        if not isinstance(session_id, str):
            raise bad_request("'session_id' must be a string")
        config_payload = payload.get("config", {})
        if not isinstance(config_payload, dict):
            raise bad_request("'config' must be a WorkflowConfig JSON object")
        try:
            config = WorkflowConfig(
                **{**config_payload, "vote_mode": "per-pair"}
            )
        except (TypeError, ValueError) as error:
            raise bad_request(f"invalid config: {error}") from None
        cross_sources = payload.get("cross_sources")
        if cross_sources is not None:
            if not isinstance(cross_sources, (list, tuple)) or len(cross_sources) != 2:
                raise bad_request("'cross_sources' must be a two-element array")
            cross_sources = tuple(cross_sources)
        truth = _parse_truth(payload["truth"]) if "truth" in payload else None
        if session_id in self.sessions:
            raise session_exists(session_id)
        shard = self.shards.shard_of(session_id)
        handle = SessionHandle(session_id, shard)
        # Reserve the id before yielding to the shard so concurrent creates
        # of the same id conflict deterministically.
        self.sessions[session_id] = handle

        def build() -> StreamingResolver:
            resolver = StreamingResolver(config=config, cross_sources=cross_sources)
            if truth:
                resolver.add_truth(truth)
            return resolver

        try:
            handle.resolver = await self.shards.submit(session_id, build)
        except PersistenceError as error:
            del self.sessions[session_id]
            raise resume_conflict(session_id, str(error)) from None
        except Exception:
            del self.sessions[session_id]
            raise
        return self._status_payload(handle)

    async def restore(self, session_id: str, payload: dict) -> Dict[str, object]:
        """Re-open a durable session from its checkpoint directory."""
        if not isinstance(payload, dict):
            raise bad_request("request body must be a JSON object")
        checkpoint_dir = payload.get("checkpoint_dir")
        if not checkpoint_dir or not isinstance(checkpoint_dir, str):
            raise bad_request("'checkpoint_dir' is required to restore a session")
        existing = self.sessions.get(session_id)
        if existing is not None and not existing.closed:
            raise resume_conflict(session_id, "session is already open")
        shard = self.shards.shard_of(session_id)
        handle = SessionHandle(session_id, shard)
        self.sessions[session_id] = handle
        try:
            handle.resolver = await self.shards.submit(
                session_id, StreamingResolver.restore, checkpoint_dir
            )
        except PersistenceError as error:
            self.sessions.pop(session_id, None)
            if existing is not None:
                self.sessions[session_id] = existing
            raise resume_conflict(session_id, str(error)) from None
        except Exception:
            self.sessions.pop(session_id, None)
            if existing is not None:
                self.sessions[session_id] = existing
            raise
        return self._status_payload(handle)

    async def close(self, session_id: str) -> Dict[str, object]:
        """Save (when durable) and close a session; status stays readable."""
        handle = self._handle(session_id)
        resolver = handle.resolver
        durable = handle.durable

        def finish() -> Dict[str, object]:
            if durable:
                resolver.save()
            return {
                "session_id": handle.session_id,
                "shard": handle.shard,
                "closed": True,
                "records": resolver.record_count,
                "candidates": resolver.candidate_count,
                "events_applied": resolver.events_applied,
                "durable": durable,
            }

        status = await self.shards.submit(session_id, finish)
        handle.closed = True
        handle.final_status = status
        handle.resolver = None
        return status

    # ----------------------------------------------------------- mutations
    async def append(self, session_id: str, payload: dict) -> Dict[str, object]:
        """Append a record batch (optionally registering truth pairs first)."""
        if not isinstance(payload, dict) or "records" not in payload:
            raise bad_request("request body must be {'records': [...]}")
        records = _parse_records(payload["records"])
        truth = _parse_truth(payload["truth"]) if "truth" in payload else None
        handle = self._handle(session_id)
        resolver = handle.resolver

        def run() -> ResolutionResult:
            return resolver.add_batch(records, true_matches=truth)

        result = await self._submit_resolver_call(session_id, run)
        return encode_result(result)

    async def retract(self, session_id: str, payload: dict) -> Dict[str, object]:
        if not isinstance(payload, dict) or "record_id" not in payload:
            raise bad_request("request body must be {'record_id': ...}")
        record_id = payload["record_id"]
        handle = self._handle(session_id)
        resolver = handle.resolver
        result = await self._submit_resolver_call(
            session_id, lambda: resolver.retract(record_id)
        )
        return encode_result(result)

    async def update(self, session_id: str, payload: dict) -> Dict[str, object]:
        if not isinstance(payload, dict) or "record" not in payload:
            raise bad_request("request body must be {'record': {...}}")
        (record,) = _parse_records([payload["record"]])
        handle = self._handle(session_id)
        resolver = handle.resolver
        result = await self._submit_resolver_call(
            session_id, lambda: resolver.update(record)
        )
        return encode_result(result)

    async def flush(self, session_id: str) -> Dict[str, object]:
        handle = self._handle(session_id)
        resolver = handle.resolver
        result = await self._submit_resolver_call(session_id, resolver.flush)
        return encode_result(result)

    async def save(self, session_id: str) -> Dict[str, object]:
        handle = self._handle(session_id)
        resolver = handle.resolver

        def run() -> Dict[str, object]:
            path = resolver.save()
            return {"session_id": session_id, "saved_to": str(path)}

        return await self.shards.submit(session_id, run)

    async def _submit_resolver_call(self, session_id: str, fn) -> ResolutionResult:
        try:
            return await self.shards.submit(session_id, fn)
        except RecordError as error:
            raise bad_request(str(error)) from None
        except PersistenceError as error:
            raise resume_conflict(session_id, str(error)) from None

    # ------------------------------------------------------------- queries
    async def status(self, session_id: str) -> Dict[str, object]:
        handle = self._handle(session_id, allow_closed=True)
        if handle.closed:
            assert handle.final_status is not None
            return handle.final_status
        return await self.shards.submit(
            session_id, self._status_payload, handle
        )

    async def result(self, session_id: str) -> Dict[str, object]:
        handle = self._handle(session_id)
        resolver = handle.resolver
        result = await self.shards.submit(session_id, resolver.snapshot)
        return encode_result(result)

    def list_sessions(self) -> Dict[str, object]:
        return {
            "sessions": [
                {
                    "session_id": handle.session_id,
                    "shard": handle.shard,
                    "closed": handle.closed,
                }
                for handle in self.sessions.values()
            ]
        }

    # ------------------------------------------------------------ shutdown
    async def save_all(self) -> List[str]:
        """Save every open durable session (graceful-shutdown hook)."""
        saved = []
        for handle in list(self.sessions.values()):
            if handle.closed or not handle.durable:
                continue
            resolver = handle.resolver
            await self.shards.submit(handle.session_id, resolver.save)
            saved.append(handle.session_id)
        return saved
