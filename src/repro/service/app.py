"""The resolution service: route table, dispatch, lifecycle.

Endpoints (see ``docs/service.md`` for the full reference):

=======  ==============================  =======================================
Method   Path                            Action
=======  ==============================  =======================================
GET      ``/healthz``                    liveness probe
GET      ``/metrics``                    Prometheus text scrape (needs metrics)
GET      ``/sessions``                   list hosted sessions
POST     ``/sessions``                   create a session (WorkflowConfig JSON)
GET      ``/sessions/{id}``              status (record/candidate/event counts)
DELETE   ``/sessions/{id}``              save (when durable) and close
GET      ``/sessions/{id}/result``       full snapshot (matches + posteriors)
POST     ``/sessions/{id}/batch``        append a record batch
POST     ``/sessions/{id}/retract``      retract one record
POST     ``/sessions/{id}/update``       revise one record
POST     ``/sessions/{id}/flush``        settle deferred aggregation
POST     ``/sessions/{id}/save``         checkpoint now
POST     ``/sessions/{id}/restore``      re-open a durable session
=======  ==============================  =======================================

Every request runs under a ``service.request`` span and feeds
``service_requests_total{route,method,status}`` /
``service_request_seconds{route}`` plus the ``service_sessions`` gauge;
per-shard queue depths are exported by the executor as
``service_queue_depth{shard}``.

Graceful shutdown (:meth:`ResolutionService.stop`): stop accepting, drain
every shard queue, ``save()`` every open durable session on its owning
thread, stop the shard workers, and tear down the reused join pools.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Dict, Optional, Tuple

from repro import obs
from repro.service.errors import ServiceError, bad_request, not_found
from repro.service.http import HttpRequest, HttpResponse, start_http_server
from repro.service.sessions import SessionManager
from repro.service.shards import ShardExecutor
from repro.simjoin.pool import shutdown_pools

logger = logging.getLogger(__name__)

#: Session sub-resources accepting POST, mapped to manager coroutines
#: taking (session_id, payload).
_SESSION_ACTIONS = ("batch", "retract", "update", "flush", "save", "restore")


class ResolutionService:
    """A server process hosting many concurrent streaming sessions."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shard_count: int = 4,
        queue_depth: int = 64,
    ) -> None:
        self.host = host
        self.port = port
        self.shards = ShardExecutor(shard_count=shard_count, queue_depth=queue_depth)
        self.manager = SessionManager(self.shards)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> int:
        """Start the shard workers and the HTTP listener; returns the port."""
        await self.shards.start()
        self._server, self.port = await start_http_server(
            self._dispatch, self.host, self.port
        )
        logger.info(
            "service listening on %s:%d (%d shards, queue depth %d)",
            self.host, self.port, self.shards.shard_count, self.shards.queue_depth,
        )
        return self.port

    async def stop(self) -> None:
        """Graceful shutdown: drain, save durable sessions, release pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.shards.drain()
        saved = await self.manager.save_all()
        if saved:
            logger.info("saved %d durable session(s) on shutdown", len(saved))
        await self.shards.shutdown()
        shutdown_pools()
        self._stopped.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` is called (e.g. from a signal handler)."""
        await self._stopped.wait()

    # ------------------------------------------------------------- dispatch
    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        route, handler_args = self._route(request)
        started = time.perf_counter()
        status = 500
        try:
            with obs.span("service.request", route=route, method=request.method):
                response = await self._handle(request, route, handler_args)
            status = response.status
            return response
        except ServiceError as error:
            status = error.status
            response = HttpResponse(status=error.status, payload=error.body())
            if error.retry_after is not None:
                response.headers["Retry-After"] = str(error.retry_after)
            return response
        except Exception as error:  # noqa: BLE001 - boundary: never kill the server
            logger.exception("unhandled error on %s %s", request.method, request.path)
            return HttpResponse(
                status=500,
                payload={"error": {"code": "internal", "message": str(error)}},
            )
        finally:
            if obs.enabled():
                obs.inc(
                    "service_requests_total", 1,
                    route=route, method=request.method, status=status,
                    help="HTTP requests served, by route and status.",
                )
                obs.observe(
                    "service_request_seconds", time.perf_counter() - started,
                    route=route,
                    help="End-to-end request latency (including queueing).",
                )
                obs.set_gauge(
                    "service_sessions",
                    sum(1 for h in self.manager.sessions.values() if not h.closed),
                    help="Open sessions hosted by this server.",
                )

    def _route(self, request: HttpRequest) -> Tuple[str, Tuple[str, ...]]:
        """Classify the path into a route label plus path arguments."""
        parts = tuple(part for part in request.path.split("?")[0].split("/") if part)
        if parts == ("healthz",):
            return "/healthz", ()
        if parts == ("metrics",):
            return "/metrics", ()
        if parts == ("sessions",):
            return "/sessions", ()
        if len(parts) == 2 and parts[0] == "sessions":
            return "/sessions/{id}", (parts[1],)
        if (
            len(parts) == 3
            and parts[0] == "sessions"
            and parts[2] in (*_SESSION_ACTIONS, "result")
        ):
            return f"/sessions/{{id}}/{parts[2]}", (parts[1],)
        return "<unknown>", ()

    def _json_body(self, request: HttpRequest) -> dict:
        if not request.body:
            return {}
        try:
            payload = request.json()
        except ValueError as error:
            raise bad_request(str(error)) from None
        if not isinstance(payload, dict):
            raise bad_request("request body must be a JSON object")
        return payload

    async def _handle(
        self, request: HttpRequest, route: str, args: Tuple[str, ...]
    ) -> HttpResponse:
        method = request.method
        if route == "/healthz" and method == "GET":
            return HttpResponse(payload={
                "status": "ok",
                "sessions": len(self.manager.sessions),
                "queue_depths": self.shards.queue_depths(),
            })
        if route == "/metrics" and method == "GET":
            snapshot = obs.snapshot()
            if snapshot is None:
                raise ServiceError(503, "metrics_disabled",
                                   "metrics are not enabled on this server")
            return HttpResponse(
                text=obs.to_prometheus(snapshot),
                content_type="text/plain; version=0.0.4",
            )
        if route == "/sessions":
            if method == "GET":
                return HttpResponse(payload=self.manager.list_sessions())
            if method == "POST":
                payload = self._json_body(request)
                return HttpResponse(
                    status=201, payload=await self.manager.create(payload)
                )
        if route == "/sessions/{id}":
            (session_id,) = args
            if method == "GET":
                return HttpResponse(payload=await self.manager.status(session_id))
            if method == "DELETE":
                return HttpResponse(payload=await self.manager.close(session_id))
        if route == "/sessions/{id}/result" and method == "GET":
            return HttpResponse(payload=await self.manager.result(args[0]))
        if route.startswith("/sessions/{id}/") and method == "POST":
            action = route.rsplit("/", 1)[1]
            (session_id,) = args
            payload = self._json_body(request)
            if action == "batch":
                return HttpResponse(payload=await self.manager.append(session_id, payload))
            if action == "retract":
                return HttpResponse(payload=await self.manager.retract(session_id, payload))
            if action == "update":
                return HttpResponse(payload=await self.manager.update(session_id, payload))
            if action == "flush":
                return HttpResponse(payload=await self.manager.flush(session_id))
            if action == "save":
                return HttpResponse(payload=await self.manager.save(session_id))
            if action == "restore":
                return HttpResponse(payload=await self.manager.restore(session_id, payload))
        raise not_found(f"no route for {method} {request.path}")


def run_service(
    host: str = "127.0.0.1",
    port: int = 8722,
    shard_count: int = 4,
    queue_depth: int = 64,
    port_file: Optional[str] = None,
) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM, then shut down.

    ``port_file`` (paired with ``port=0``) publishes the actually-bound
    port atomically for scripted clients — the crash/restart tests and the
    CI smoke job poll for that file instead of racing on a fixed port.
    """
    import signal

    async def main() -> None:
        service = ResolutionService(
            host=host, port=port, shard_count=shard_count, queue_depth=queue_depth
        )
        await service.start()
        if port_file:
            from pathlib import Path

            target = Path(port_file)
            scratch = target.with_suffix(target.suffix + ".tmp")
            scratch.write_text(str(service.port))
            scratch.replace(target)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(service.stop())
            )
        await service.serve_forever()

    asyncio.run(main())
