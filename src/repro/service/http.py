"""A minimal asyncio HTTP/1.1 layer (stdlib only, no new dependencies).

Just enough protocol for the service API: request line + headers +
``Content-Length`` bodies in, status + headers + body out, keep-alive
honored.  No chunked transfer, no TLS, no multipart — the API is small
JSON messages between trusted processes; anything fancier belongs behind a
real proxy.

The server is transport-only: it parses requests into
:class:`HttpRequest`, hands them to an async ``handler`` returning
:class:`HttpResponse`, and never interprets the payload itself.
"""

from __future__ import annotations

import asyncio
import json
import logging
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple

logger = logging.getLogger(__name__)

#: Hard caps keeping a misbehaving client from ballooning memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        """Decode the body as JSON (raises ``ValueError`` on malformed input)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed JSON body: {error}") from None


@dataclass
class HttpResponse:
    status: int = 200
    payload: Optional[object] = None
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"
    text: Optional[str] = None

    def encode(self) -> bytes:
        if self.text is not None:
            body = self.text.encode("utf-8")
        else:
            body = json.dumps(self.payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


class _ProtocolError(Exception):
    """Unparseable request — the connection is answered 400 and closed."""


async def _read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _ProtocolError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise _ProtocolError("header section too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise _ProtocolError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


async def _serve_connection(
    handler: Handler, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except _ProtocolError as error:
                logger.debug("protocol error: %s", error)
                writer.write(
                    HttpResponse(
                        status=400,
                        payload={"error": {"code": "bad_request", "message": str(error)}},
                    ).encode()
                )
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            response = await handler(request)
            keep_alive = request.headers.get("connection", "keep-alive") != "close"
            response.headers.setdefault(
                "Connection", "keep-alive" if keep_alive else "close"
            )
            writer.write(response.encode())
            await writer.drain()
            if not keep_alive:
                return
    except ConnectionError:  # pragma: no cover - client went away mid-write
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


async def start_http_server(
    handler: Handler, host: str, port: int
) -> Tuple[asyncio.AbstractServer, int]:
    """Bind and start serving; returns (server, actual port).

    ``port=0`` binds an ephemeral port — the tests use it to avoid
    collisions; the actual port comes back for the client to dial.
    """
    server = await asyncio.start_server(
        lambda reader, writer: _serve_connection(handler, reader, writer),
        host=host,
        port=port,
    )
    actual_port = server.sockets[0].getsockname()[1]
    return server, actual_port
