"""A small blocking client for the resolution service (stdlib only).

Used by the tests, the benchmark and the CI smoke job; applications can use
any HTTP client — the API is plain JSON over HTTP/1.1.

:meth:`ServiceClient.request` returns the raw ``(status, headers, body)``
triple without raising, which is what the error-path regression tests
need; the typed convenience methods raise :class:`ServiceClientError` on
any non-2xx answer.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence, Tuple


class ServiceClientError(Exception):
    """A non-2xx service answer, carrying the decoded error body."""

    def __init__(self, status: int, body: object, retry_after: Optional[int] = None) -> None:
        code = ""
        if isinstance(body, dict):
            code = body.get("error", {}).get("code", "")
        super().__init__(f"HTTP {status} {code}".strip())
        self.status = status
        self.body = body
        self.code = code
        self.retry_after = retry_after


class ServiceClient:
    """Blocking JSON client bound to one server address."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Tuple[int, Dict[str, str], object]:
        """One round trip; returns (status, headers, decoded JSON body)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded: object = None
            if raw:
                try:
                    decoded = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = raw.decode("utf-8", "replace")
            return response.status, dict(response.getheaders()), decoded
        finally:
            connection.close()

    def raw(self, method: str, path: str, body: bytes) -> Tuple[int, Dict[str, str], object]:
        """Send a pre-encoded body verbatim (malformed-payload tests)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            raw_body = response.read()
            try:
                decoded: object = json.loads(raw_body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = raw_body.decode("utf-8", "replace")
            return response.status, dict(response.getheaders()), decoded
        finally:
            connection.close()

    def _call(self, method: str, path: str, payload: Optional[object] = None) -> dict:
        status, headers, body = self.request(method, path, payload)
        if status >= 300:
            retry_after = headers.get("Retry-After")
            raise ServiceClientError(
                status, body, int(retry_after) if retry_after else None
            )
        return body  # type: ignore[return-value]

    # --------------------------------------------------------- conveniences
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _headers, body = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceClientError(status, body)
        return body  # type: ignore[return-value]

    def create_session(
        self,
        session_id: Optional[str] = None,
        config: Optional[dict] = None,
        truth: Optional[Sequence[Sequence[str]]] = None,
        cross_sources: Optional[Sequence[str]] = None,
    ) -> dict:
        payload: dict = {"config": config or {}}
        if session_id is not None:
            payload["session_id"] = session_id
        if truth is not None:
            payload["truth"] = [list(pair) for pair in truth]
        if cross_sources is not None:
            payload["cross_sources"] = list(cross_sources)
        return self._call("POST", "/sessions", payload)

    def append(
        self,
        session_id: str,
        records: Sequence[dict],
        truth: Optional[Sequence[Sequence[str]]] = None,
    ) -> dict:
        payload: dict = {"records": list(records)}
        if truth is not None:
            payload["truth"] = [list(pair) for pair in truth]
        return self._call("POST", f"/sessions/{session_id}/batch", payload)

    def retract(self, session_id: str, record_id: str) -> dict:
        return self._call(
            "POST", f"/sessions/{session_id}/retract", {"record_id": record_id}
        )

    def update(self, session_id: str, record: dict) -> dict:
        return self._call(
            "POST", f"/sessions/{session_id}/update", {"record": record}
        )

    def flush(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/flush", {})

    def save(self, session_id: str) -> dict:
        return self._call("POST", f"/sessions/{session_id}/save", {})

    def restore(self, session_id: str, checkpoint_dir: str) -> dict:
        return self._call(
            "POST",
            f"/sessions/{session_id}/restore",
            {"checkpoint_dir": checkpoint_dir},
        )

    def status(self, session_id: str) -> dict:
        return self._call("GET", f"/sessions/{session_id}")

    def result(self, session_id: str) -> dict:
        return self._call("GET", f"/sessions/{session_id}/result")

    def close(self, session_id: str) -> dict:
        return self._call("DELETE", f"/sessions/{session_id}")

    def list_sessions(self) -> List[dict]:
        return self._call("GET", "/sessions")["sessions"]
