"""Sharded ordered execution: one owner thread per group of sessions.

Why shards instead of a free thread pool: a streaming session is a stateful
object with strict ordering requirements (journal sequence, SQLite
connections bound to their creating thread), so every operation against a
session must run (a) one at a time and (b) on the same thread for the
session's whole life.  :class:`ShardExecutor` provides exactly that: each
shard is an ordered ``asyncio.Queue`` feeding one dedicated worker thread,
and a session is pinned to the shard its routing key hashes to —
CRC32(key) mod shard count, so placement is stable across restarts of the
same server configuration.

Requests against sessions on the same shard serialize in arrival order;
sessions on different shards run concurrently.  A full shard queue rejects
new work immediately (the caller answers ``429 Retry-After``) instead of
queueing without bound — latency honesty over buffering.
"""

from __future__ import annotations

import asyncio
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional

from repro import obs
from repro.service.errors import backpressure

#: Sentinel telling a shard's pump loop to exit.
_SHUTDOWN = object()

#: Default seconds clients are told to wait after a 429.
DEFAULT_RETRY_AFTER = 1


def shard_of(routing_key: str, shard_count: int) -> int:
    """Stable shard placement: CRC32 of the routing key, mod shard count."""
    return zlib.crc32(routing_key.encode("utf-8")) % shard_count


class _Shard:
    """One ordered work queue + its dedicated executor thread."""

    def __init__(self, index: int, queue_depth: int) -> None:
        self.index = index
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        # ONE thread: every session owned by this shard lives and dies on
        # it (SQLite connections and journal handles are thread-affine).
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-shard-{index}"
        )
        self.pump: Optional[asyncio.Task] = None

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self.queue.get()
            try:
                if item is _SHUTDOWN:
                    return
                fn, args, future = item
                try:
                    result = await loop.run_in_executor(self.executor, fn, *args)
                except Exception as error:  # noqa: BLE001 - relayed to caller
                    if not future.cancelled():
                        future.set_exception(error)
                else:
                    if not future.cancelled():
                        future.set_result(result)
            finally:
                self.queue.task_done()
                if obs.enabled():
                    obs.set_gauge(
                        "service_queue_depth", self.queue.qsize(),
                        shard=self.index,
                        help="Queued requests per service shard.",
                    )


class ShardExecutor:
    """Route work to per-shard ordered queues backed by dedicated threads.

    ``submit`` returns an awaitable resolving to the callable's result (or
    raising its exception).  Work for one routing key always runs on the
    same thread, in submission order; a full queue raises the 429-mapped
    :func:`~repro.service.errors.backpressure` error immediately.
    """

    def __init__(
        self,
        shard_count: int = 4,
        queue_depth: int = 64,
        retry_after: int = DEFAULT_RETRY_AFTER,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be positive")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.shard_count = shard_count
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self._shards: List[_Shard] = []
        self._started = False

    async def start(self) -> None:
        """Create the shard queues and start their pump tasks."""
        if self._started:
            return
        self._shards = [
            _Shard(index, self.queue_depth) for index in range(self.shard_count)
        ]
        for shard in self._shards:
            shard.pump = asyncio.create_task(shard._run())
        self._started = True

    def shard_of(self, routing_key: str) -> int:
        """The shard index owning ``routing_key``."""
        return shard_of(routing_key, self.shard_count)

    async def submit(
        self, routing_key: str, fn: Callable[..., Any], *args: Any
    ) -> Any:
        """Run ``fn(*args)`` on the owning shard's thread; await the result."""
        if not self._started:
            raise RuntimeError("ShardExecutor.start() has not been called")
        shard = self._shards[self.shard_of(routing_key)]
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            shard.queue.put_nowait((fn, args, future))
        except asyncio.QueueFull:
            raise backpressure(shard.index, self.retry_after) from None
        if obs.enabled():
            obs.set_gauge(
                "service_queue_depth", shard.queue.qsize(), shard=shard.index,
                help="Queued requests per service shard.",
            )
        return await future

    def queue_depths(self) -> List[int]:
        """Current queue depth per shard (observability/status)."""
        return [shard.queue.qsize() for shard in self._shards]

    async def drain(self) -> None:
        """Wait until every queued request has completed."""
        for shard in self._shards:
            await shard.queue.join()

    async def shutdown(self) -> None:
        """Drain, stop the pump tasks and release the worker threads."""
        if not self._started:
            return
        await self.drain()
        for shard in self._shards:
            await shard.queue.put(_SHUTDOWN)
        for shard in self._shards:
            if shard.pump is not None:
                await shard.pump
        for shard in self._shards:
            shard.executor.shutdown(wait=True)
        self._started = False
