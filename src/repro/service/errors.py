"""Typed service errors mapping onto HTTP status codes and JSON bodies.

Every error response the service emits has the same shape::

    {"error": {"code": "<machine-readable-code>", "message": "<detail>"}}

and the regression tests in ``tests/test_service.py`` pin both the status
code and the ``code`` string of every path, so changing either is a
breaking API change.
"""

from __future__ import annotations

from typing import Dict, Optional


class ServiceError(Exception):
    """An error with a defined HTTP mapping.

    Handlers raise these; the dispatcher turns them into JSON error
    responses.  Anything else escaping a handler becomes a 500.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        #: Seconds for the ``Retry-After`` header (backpressure responses).
        self.retry_after = retry_after

    def body(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "message": self.message}}


def bad_request(message: str) -> ServiceError:
    """400 — malformed JSON, invalid config, missing required fields."""
    return ServiceError(400, "bad_request", message)


def not_found(message: str = "no such route") -> ServiceError:
    """404 — unknown route."""
    return ServiceError(404, "not_found", message)


def unknown_session(session_id: str) -> ServiceError:
    """404 — the session id is not (and never was) hosted here."""
    return ServiceError(404, "unknown_session", f"unknown session {session_id!r}")


def session_closed(session_id: str) -> ServiceError:
    """409 — the session was closed; only status remains readable."""
    return ServiceError(
        409, "session_closed", f"session {session_id!r} is closed"
    )


def session_exists(session_id: str) -> ServiceError:
    """409 — create with an id that is already hosted."""
    return ServiceError(
        409, "session_exists", f"session {session_id!r} already exists"
    )


def resume_conflict(session_id: str, message: str) -> ServiceError:
    """409 — restore cannot proceed (already open, or no durable state)."""
    return ServiceError(409, "resume_conflict", f"session {session_id!r}: {message}")


def backpressure(shard: int, retry_after: int) -> ServiceError:
    """429 — the owning shard's queue is full; retry after a beat."""
    return ServiceError(
        429,
        "backpressure",
        f"shard {shard} queue is full; retry after {retry_after}s",
        retry_after=retry_after,
    )
