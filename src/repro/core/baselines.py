"""Machine-only and human-only reference pipelines (Section 7.3).

* :class:`SimJoinRanker` — rank candidate pairs by the Jaccard likelihood
  alone ("simjoin" in Figure 12).
* :class:`SVMRanker` — the learning-based baseline: train a linear SVM on a
  labelled sample and rank the candidates by classifier score ("SVM" in
  Figure 12).
* :func:`human_only_hit_count` — the back-of-envelope cost of the
  human-only approaches of the introduction (all-pairs batched into HITs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.datasets.base import Dataset
from repro.learning.classifier_er import LearningBasedER
from repro.records.pairs import PairSet
from repro.similarity.feature_vectors import FeatureExtractor
from repro.simjoin.likelihood import LikelihoodEstimator, SimJoinLikelihood

PairKey = Tuple[str, str]


@dataclass
class SimJoinRanker:
    """Rank candidate pairs by machine likelihood only."""

    min_likelihood: float = 0.1
    estimator: Optional[LikelihoodEstimator] = None
    name: str = "simjoin"

    def rank(self, dataset: Dataset) -> List[PairKey]:
        """Return candidate pairs in decreasing likelihood order."""
        estimator = self.estimator or SimJoinLikelihood()
        candidates = estimator.estimate(
            dataset.store,
            min_likelihood=self.min_likelihood,
            cross_sources=dataset.cross_sources,
        )
        return [pair.key for pair in candidates.sorted_by_likelihood()]


@dataclass
class SVMRanker:
    """The learning-based baseline of Section 7.3.

    Feature vectors use edit distance and cosine similarity per attribute
    (all attributes for Restaurant-like data, the name attribute for
    Product-like data); training pairs are sampled from the candidates above
    ``min_likelihood`` and labelled with the ground truth.
    """

    min_likelihood: float = 0.1
    training_size: int = 500
    repetitions: int = 3
    attributes: Optional[Sequence[str]] = None
    seed: int = 0
    name: str = "svm"

    def rank(self, dataset: Dataset) -> List[PairKey]:
        """Return candidate pairs ranked by averaged SVM score."""
        estimator = SimJoinLikelihood()
        candidates: PairSet = estimator.estimate(
            dataset.store,
            min_likelihood=self.min_likelihood,
            cross_sources=dataset.cross_sources,
        )
        attributes = list(self.attributes) if self.attributes else dataset.store.attribute_names()
        extractor = FeatureExtractor.for_attributes(attributes)
        learner = LearningBasedER(
            extractor=extractor,
            training_size=self.training_size,
            repetitions=self.repetitions,
            seed=self.seed,
        )
        ranked = learner.rank_pairs(dataset.store, candidates, dataset.ground_truth)
        return [key for key, _score in ranked]


def human_only_hit_count(record_count: int, hit_size: int, cluster_based: bool = False) -> int:
    """HIT counts of the naive human-only approaches (Section 1).

    Pair-based batching needs ``O(n^2 / k)`` HITs; the cluster-based batching
    of Marcus et al. needs ``O(n^2 / k^2)`` HITs.  These are the numbers the
    introduction uses to argue that a machine pruning pass is indispensable
    (10,000 records at k=20 already require 250,000-5,000,000 HITs).
    """
    if record_count < 2 or hit_size < 1:
        raise ValueError("record_count must be >= 2 and hit_size >= 1")
    total_pairs = record_count * (record_count - 1) / 2
    if cluster_based:
        return math.ceil(total_pairs / (hit_size * hit_size))
    return math.ceil(total_pairs / hit_size)
