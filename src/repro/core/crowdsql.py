"""A CrowdSQL-style entry point: the ``~=`` self-join of the introduction.

The paper motivates CrowdER with the CrowdDB query::

    SELECT p.id, q.id FROM product p, product q
    WHERE p.product_name ~= q.product_name;

:func:`crowd_equijoin` offers the same ergonomics as a library call: give it
a record store, the attribute to compare and a ground truth for the crowd
simulation, and it returns the matching id pairs found by the hybrid
workflow.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.datasets.base import Dataset
from repro.records.record import RecordStore

PairKey = Tuple[str, str]


def crowd_equijoin(
    store: RecordStore,
    attribute: str,
    ground_truth: FrozenSet[PairKey],
    likelihood_threshold: float = 0.3,
    cluster_size: int = 4,
    config: Optional[WorkflowConfig] = None,
    seed: int = 0,
) -> List[PairKey]:
    """Run the hybrid workflow as a crowd-powered fuzzy self-join.

    Parameters
    ----------
    store:
        The table to self-join.
    attribute:
        The attribute compared by ``~=`` (only this attribute feeds the
        machine likelihood).
    ground_truth:
        True matches used to simulate crowd answers (on a real deployment
        this would be replaced by actual worker input).
    likelihood_threshold / cluster_size / seed:
        Workflow knobs; ignored when an explicit ``config`` is given.

    Returns
    -------
    The list of matching id pairs, as the CrowdSQL query would return them.
    """
    if config is None:
        config = WorkflowConfig(
            likelihood_threshold=likelihood_threshold,
            cluster_size=cluster_size,
            similarity_attributes=[attribute],
            seed=seed,
        )
    dataset = Dataset(name=f"crowdsql-{store.name}", store=store, ground_truth=ground_truth)
    workflow = HybridWorkflow(config=config)
    result = workflow.resolve(dataset)
    return sorted(result.matches)
