"""Result object returned by a hybrid-workflow run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crowd.latency import LatencyEstimate

PairKey = Tuple[str, str]


@dataclass
class ResolutionResult:
    """Everything a hybrid-workflow run produced.

    Attributes
    ----------
    ranked_pairs:
        Candidate pairs ordered from most to least likely match (crowd
        posterior first, machine likelihood as tie-breaker).  This is the
        ranked list the precision-recall evaluation consumes.
    matches:
        Pairs whose aggregated posterior exceeds the decision threshold —
        the workflow's final answer (Figure 2(c)).
    posteriors:
        Aggregated per-pair match probability.
    likelihoods:
        Machine likelihood of every candidate pair sent to the crowd.
    candidate_count:
        Number of pairs that survived machine pruning.
    hit_count / assignment_count:
        Crowd workload.
    cost:
        Dollar cost under the pricing model.
    latency:
        Latency estimate of the crowd run (None for machine-only runs).
    recall_ceiling:
        Fraction of ground-truth matches that survived pruning — the best
        recall the crowd phase can possibly achieve (needs ground truth;
        None if unknown).
    """

    ranked_pairs: List[PairKey] = field(default_factory=list)
    matches: List[PairKey] = field(default_factory=list)
    posteriors: Dict[PairKey, float] = field(default_factory=dict)
    likelihoods: Dict[PairKey, float] = field(default_factory=dict)
    candidate_count: int = 0
    hit_count: int = 0
    assignment_count: int = 0
    cost: float = 0.0
    latency: Optional[LatencyEstimate] = None
    recall_ceiling: Optional[float] = None
    generator_name: str = ""

    def summary(self) -> Dict[str, object]:
        """Compact dictionary summary used by reports and examples."""
        return {
            "candidates": self.candidate_count,
            "hits": self.hit_count,
            "assignments": self.assignment_count,
            "cost_dollars": round(self.cost, 2),
            "matches": len(self.matches),
            "total_minutes": round(self.latency.total_minutes, 1) if self.latency else None,
            "recall_ceiling": self.recall_ceiling,
            "generator": self.generator_name,
        }
