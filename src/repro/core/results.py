"""Result objects returned by hybrid-workflow and streaming runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crowd.latency import LatencyEstimate

PairKey = Tuple[str, str]


@dataclass
class StreamingDelta:
    """What one streaming batch changed relative to the previous snapshot.

    Attached to the :class:`ResolutionResult` snapshots produced by
    :class:`repro.streaming.StreamingResolver`; ``None`` on batch-mode
    results.  All counts describe the most recent ``add_batch`` call.

    Attributes
    ----------
    batch_index:
        1-based index of the arrival batch that produced this snapshot.
    new_records / new_candidate_pairs:
        Records added by the batch and candidate pairs the incremental join
        discovered for them (new-vs-old plus new-vs-new).
    dirty_components / clean_components:
        Components whose membership or edges changed this batch (their HITs
        were regenerated) vs components left untouched (their votes and
        posteriors were carried over).
    dirty_pairs:
        Candidate pairs living in dirty components.
    regenerated_hits:
        HITs generated for the dirty components this batch.
    crowdsourced_pairs:
        Pairs for which fresh votes were collected this batch (under the
        ``"never"`` re-crowd policy: only never-voted pairs).
    reused_vote_pairs:
        Previously voted pairs whose existing votes were kept.
    preserved_posterior_pairs:
        Pairs in clean components whose cached posterior was reused without
        re-running the aggregator (component aggregation scope only).
    stale_skipped_components:
        Dirty components whose aggregation was skipped because their vote
        ledger gained fewer than ``staleness_epsilon`` new votes since
        their last aggregation (bounded-staleness aggregation; always 0
        when the epsilon is 0).
    retracted_records:
        Records removed from the session by ``retract``/``update`` this
        event (0 for plain arrivals).
    invalidated_pairs:
        Candidate pairs dropped because one of their records was retracted
        — the provenance-reachable region whose votes, posteriors and
        coverage were discarded.
    """

    batch_index: int = 0
    new_records: int = 0
    new_candidate_pairs: int = 0
    dirty_components: int = 0
    clean_components: int = 0
    dirty_pairs: int = 0
    regenerated_hits: int = 0
    crowdsourced_pairs: int = 0
    reused_vote_pairs: int = 0
    preserved_posterior_pairs: int = 0
    stale_skipped_components: int = 0
    retracted_records: int = 0
    invalidated_pairs: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the CLI and benchmark reports."""
        return {
            "batch_index": self.batch_index,
            "new_records": self.new_records,
            "new_candidate_pairs": self.new_candidate_pairs,
            "dirty_components": self.dirty_components,
            "clean_components": self.clean_components,
            "dirty_pairs": self.dirty_pairs,
            "regenerated_hits": self.regenerated_hits,
            "crowdsourced_pairs": self.crowdsourced_pairs,
            "reused_vote_pairs": self.reused_vote_pairs,
            "preserved_posterior_pairs": self.preserved_posterior_pairs,
            "stale_skipped_components": self.stale_skipped_components,
            "retracted_records": self.retracted_records,
            "invalidated_pairs": self.invalidated_pairs,
        }


@dataclass
class ResolutionResult:
    """Everything a hybrid-workflow run produced.

    Attributes
    ----------
    ranked_pairs:
        Candidate pairs ordered from most to least likely match (crowd
        posterior first, machine likelihood as tie-breaker).  This is the
        ranked list the precision-recall evaluation consumes.
    matches:
        Pairs whose aggregated posterior exceeds the decision threshold —
        the workflow's final answer (Figure 2(c)).
    posteriors:
        Aggregated per-pair match probability.
    likelihoods:
        Machine likelihood of every candidate pair sent to the crowd.
    candidate_count:
        Number of pairs that survived machine pruning.
    hit_count / assignment_count:
        Crowd workload.
    cost:
        Dollar cost under the pricing model.
    latency:
        Latency estimate of the crowd run (None for machine-only runs).
    recall_ceiling:
        Fraction of ground-truth matches that survived pruning — the best
        recall the crowd phase can possibly achieve (needs ground truth;
        None if unknown).
    delta:
        For streaming snapshots, what the latest batch changed
        (:class:`StreamingDelta`); ``None`` for batch-mode runs.
    """

    ranked_pairs: List[PairKey] = field(default_factory=list)
    matches: List[PairKey] = field(default_factory=list)
    posteriors: Dict[PairKey, float] = field(default_factory=dict)
    likelihoods: Dict[PairKey, float] = field(default_factory=dict)
    candidate_count: int = 0
    hit_count: int = 0
    assignment_count: int = 0
    cost: float = 0.0
    latency: Optional[LatencyEstimate] = None
    recall_ceiling: Optional[float] = None
    generator_name: str = ""
    delta: Optional[StreamingDelta] = None

    def summary(self) -> Dict[str, object]:
        """Compact dictionary summary used by reports and examples."""
        return {
            "candidates": self.candidate_count,
            "hits": self.hit_count,
            "assignments": self.assignment_count,
            "cost_dollars": round(self.cost, 2),
            "matches": len(self.matches),
            "total_minutes": round(self.latency.total_minutes, 1) if self.latency else None,
            "recall_ceiling": self.recall_ceiling,
            "generator": self.generator_name,
        }
