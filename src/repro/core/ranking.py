"""Posterior/likelihood ranking shared by batch and streaming resolution.

Both :class:`repro.core.workflow.HybridWorkflow` and
:class:`repro.streaming.StreamingResolver` end a run the same way: candidate
pairs are ranked by crowd posterior with the machine likelihood as the
tie-breaker, pairs the crowd never voted on fall back to their likelihood
(slotted below every crowd-confirmed match and above every crowd-rejected
pair), and the final match set is everything whose posterior clears the
decision threshold.  Keeping the rule in one place guarantees the streaming
snapshot ranks exactly like a one-shot resolve given the same posteriors
and likelihoods.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

PairKey = Tuple[str, str]


def rank_candidates(
    likelihoods: Dict[PairKey, float],
    posteriors: Dict[PairKey, float],
    decision_threshold: float,
) -> Tuple[List[PairKey], List[PairKey]]:
    """Return ``(ranked_pairs, matches)`` for the given scores.

    ``ranked_pairs`` orders every candidate from most to least likely match:
    crowd-confirmed pairs (posterior above the threshold) first, then
    unvoted pairs by machine likelihood, then crowd-rejected pairs.
    ``matches`` is the subset of voted pairs whose posterior is strictly
    above the decision threshold, in ranked order.
    """

    def rank_key(key: PairKey) -> Tuple[int, float, float]:
        posterior = posteriors.get(key)
        if posterior is None:
            return (1, likelihoods[key], likelihoods[key])
        tier = 2 if posterior > decision_threshold else 0
        return (tier, posterior, likelihoods[key])

    # Pre-sorting by key makes equal-score ties break on ascending pair key
    # regardless of dict insertion order, so a streaming snapshot (arrival
    # order) and a one-shot resolve (likelihood order) rank identically.
    ranked = sorted(sorted(likelihoods), key=rank_key, reverse=True)
    matches = [
        key for key in ranked if posteriors.get(key, 0.0) > decision_threshold
    ]
    return ranked, matches
