"""Configuration of the hybrid workflow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.simjoin.backend import AUTO_BACKEND, available_backends
from repro.simjoin.pool import POOL_MODES


@dataclass
class WorkflowConfig:
    """All knobs of one hybrid-workflow run.

    Attributes mirror the experimental setup of Section 7:

    * ``likelihood_threshold`` — the machine pruning threshold (0.35 for
      Restaurant, 0.2 for Product in the paper).
    * ``hit_type`` — ``"cluster"`` (the paper's default) or ``"pair"``.
    * ``cluster_size`` — the cluster-size threshold ``k`` (10 in the paper).
    * ``pairs_per_hit`` — pair-based batching size (only for pair HITs).
    * ``cluster_generator`` — ``"two-tiered"``, ``"bfs"``, ``"dfs"``,
      ``"random"`` or ``"approximation"``.
    * ``assignments_per_hit`` — replication factor (3 in the paper).
    * ``use_qualification_test`` — whether workers must pass the test.
    * ``aggregation`` — ``"dawid-skene"`` (the paper) or ``"majority"``.
    * ``similarity_attributes`` — attributes pooled by the simjoin
      likelihood (``None`` = all).
    * ``join_backend`` — similarity-join engine for the machine pass
      (``"auto"``, ``"naive"``, ``"prefix"``, ``"vectorized"`` or
      ``"parallel"``); all engines return identical pair sets, the choice
      only affects speed.
    * ``join_workers`` — worker processes for the sharded ``parallel``
      backend and the auto heuristic that may select it (0 = one per CPU
      core).  Any value produces bit-identical pairs and likelihoods.
    * ``join_pool`` — pool strategy of the ``parallel`` backend:
      ``"reused"`` (default) runs shards on one long-lived process pool
      shared across batches and sessions, with the CSR index published
      into shared memory that workers map zero-copy; ``"fork"`` forks a
      fresh pool per join call (the legacy baseline kept for
      benchmarking).  Results are bit-identical across modes.
    * ``vote_mode`` — how the simulated crowd draws votes:
      ``"sequential"`` (legacy; votes depend on HIT grouping and publish
      order) or ``"per-pair"`` (votes are a pure function of the pair key —
      required for streaming == batch equivalence, see
      :class:`repro.streaming.StreamingResolver`).
    * ``stream_batch_size`` — records per arrival batch when a dataset is
      replayed through the streaming resolver (CLI ``resolve-stream``).
    * ``recrowd_policy`` — what the streaming resolver does with pairs in a
      dirty component that already have votes: ``"never"`` keeps the first
      votes forever (each pair is crowdsourced exactly once), ``"dirty"``
      re-asks them with fresh votes every time their component is touched.
    * ``streaming_aggregation_scope`` — ``"component"`` re-aggregates only
      dirty components on each snapshot (posteriors of untouched components
      are preserved bit-for-bit), ``"global"`` re-runs the aggregator over
      all accumulated votes (exactly matches one-shot Dawid-Skene).
    * ``staleness_epsilon`` — bounded-staleness aggregation for streaming
      (component scope only): a dirty component whose vote ledger gained
      fewer than this many new votes *since its last aggregation* keeps
      its cached posteriors instead of re-running the aggregator; pending
      gains accumulate across batches and reset on aggregation, so a
      cached posterior is never more than epsilon votes behind the ledger.
      0 (default) always re-aggregates dirty components — the exact,
      pre-existing behavior.
    * ``checkpoint_dir`` — when set, a streaming session is *durable*:
      every event is written to an fsynced write-ahead journal in this
      directory before it is applied, and compacted snapshots let
      :meth:`repro.streaming.StreamingResolver.restore` resume the session
      bit-identically after a crash or restart.  ``None`` (default) keeps
      the session in memory only.
    * ``checkpoint_every_batches`` — snapshot cadence of a durable
      session: a compacted snapshot is written after every this-many
      applied events (batches, retractions, updates, flushes), bounding
      how much journal a restore has to replay.  0 disables automatic
      snapshots (journal-only durability; snapshots still happen on
      explicit ``save()`` calls).
    * ``storage_backend`` — where a streaming session keeps its state:
      ``"memory"`` (default; the pre-existing in-process structures) or
      ``"sqlite"`` (a WAL-mode SQLite file holding records, the join
      substrate, the vote ledger and provenance; restore becomes a
      page-in of committed state plus a short journal-tail replay, and
      records stay out of process memory).  Results are bit-identical
      across backends.
    * ``storage_path`` — the SQLite store file for
      ``storage_backend="sqlite"``.  ``None`` (default) places
      ``store.sqlite`` inside ``checkpoint_dir`` when that is set.
    * ``journal_segment_events`` — journal lifecycle: the write-ahead
      journal's active file is rotated into a closed, immutable segment
      once it holds this many events, and closed segments fully covered
      by a snapshot (or by the SQLite store) are archived on ``save()``
      instead of being replayed forever.  0 disables rotation (one
      unbounded journal file, the pre-segmentation behavior).
    * ``metrics_enabled`` — turn on the :mod:`repro.obs` observability
      runtime for this run: every pipeline phase records spans, counters
      and histograms into the process-global metrics registry
      (``obs.snapshot()``, Prometheus export, ``repro stats``).  Off by
      default — the instrumented hot paths then cost one no-op check.
      Purely observational: results are bit-identical either way.
    * ``trace_path`` — when set, a structured JSONL trace-event sink is
      attached at that path (one JSON object per span/counter event plus a
      final metrics snapshot).  Implies ``metrics_enabled`` behavior for
      this run; readable by ``repro stats --trace``.
    * ``crowd_mode`` — how streaming sessions talk to the crowd:
      ``"sync"`` (default; ``publish()`` returns every vote in-process) or
      ``"async"`` (HITs are enqueued on a virtual clock and votes arrive
      later through :meth:`repro.crowd.AsyncCrowdPlatform.poll`, with
      timeouts, retries, reissues and deduplication; requires
      ``vote_mode="per-pair"``).  Final results are bit-identical across
      modes for any fault schedule with eventual delivery.
    * ``vote_timeout`` — async mode: virtual-clock ticks before an
      unanswered HIT assignment times out and is retried.
    * ``max_inflight_hits`` — async mode backpressure window: the maximum
      number of HITs with undelivered assignments; 0 = unbounded.
    * ``backpressure_policy`` — what an async publish does when the
      in-flight window is full: ``"block"`` advances the virtual clock
      until votes drain, ``"shed"`` defers the publish (the session
      retries the shed pairs on the next event and at flush).
    * ``crowd_max_retries`` — async mode: free retry attempts per HIT
      assignment before further attempts become paid reissues.
    * ``crowd_backoff_ticks`` — async mode: base of the exponential retry
      backoff (attempt ``n`` waits ``crowd_backoff_ticks * 2**(n-1)``
      ticks plus deterministic jitter before reposting).
    * ``fault_plan`` — async mode: optional JSON-friendly dict (the
      :meth:`repro.crowd.FaultPlan.to_dict` shape) injecting deterministic
      seeded delivery faults — delays, drops, duplicates, reorder, worker
      churn, burst backlogs.  ``None`` (default) delivers fault-free.
    * ``seed`` — seed for the crowd simulation.
    """

    likelihood_threshold: float = 0.2
    hit_type: str = "cluster"
    cluster_size: int = 10
    pairs_per_hit: int = 16
    cluster_generator: str = "two-tiered"
    packing_method: str = "column-generation"
    assignments_per_hit: int = 3
    use_qualification_test: bool = False
    aggregation: str = "dawid-skene"
    similarity_attributes: Optional[Sequence[str]] = None
    join_backend: str = AUTO_BACKEND
    join_workers: int = 0
    join_pool: str = "reused"
    vote_mode: str = "sequential"
    stream_batch_size: int = 256
    recrowd_policy: str = "never"
    streaming_aggregation_scope: str = "component"
    staleness_epsilon: int = 0
    checkpoint_dir: Optional[str] = None
    checkpoint_every_batches: int = 16
    storage_backend: str = "memory"
    storage_path: Optional[str] = None
    journal_segment_events: int = 512
    decision_threshold: float = 0.5
    metrics_enabled: bool = False
    trace_path: Optional[str] = None
    crowd_mode: str = "sync"
    vote_timeout: int = 8
    max_inflight_hits: int = 64
    backpressure_policy: str = "block"
    crowd_max_retries: int = 3
    crowd_backoff_ticks: int = 2
    fault_plan: Optional[dict] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.likelihood_threshold <= 1.0:
            raise ValueError("likelihood_threshold must be in [0, 1]")
        if self.hit_type not in ("pair", "cluster"):
            raise ValueError("hit_type must be 'pair' or 'cluster'")
        if self.cluster_size < 2:
            raise ValueError("cluster_size must be at least 2")
        if self.pairs_per_hit < 1:
            raise ValueError("pairs_per_hit must be at least 1")
        if self.assignments_per_hit < 1:
            raise ValueError("assignments_per_hit must be at least 1")
        if self.aggregation not in ("dawid-skene", "majority"):
            raise ValueError("aggregation must be 'dawid-skene' or 'majority'")
        if self.join_backend != AUTO_BACKEND and self.join_backend not in available_backends():
            raise ValueError(
                f"join_backend must be '{AUTO_BACKEND}' or one of {available_backends()}"
            )
        if self.join_workers < 0:
            raise ValueError("join_workers must be non-negative (0 = one per core)")
        if self.join_pool not in POOL_MODES:
            raise ValueError(f"join_pool must be one of {POOL_MODES}")
        if self.staleness_epsilon < 0:
            raise ValueError("staleness_epsilon must be non-negative")
        if self.checkpoint_every_batches < 0:
            raise ValueError(
                "checkpoint_every_batches must be non-negative (0 = only on save())"
            )
        if self.storage_backend not in ("memory", "sqlite"):
            raise ValueError("storage_backend must be 'memory' or 'sqlite'")
        if self.journal_segment_events < 0:
            raise ValueError(
                "journal_segment_events must be non-negative (0 = no rotation)"
            )
        if self.vote_mode not in ("sequential", "per-pair"):
            raise ValueError("vote_mode must be 'sequential' or 'per-pair'")
        if self.stream_batch_size < 1:
            raise ValueError("stream_batch_size must be at least 1")
        if self.recrowd_policy not in ("never", "dirty"):
            raise ValueError("recrowd_policy must be 'never' or 'dirty'")
        if self.streaming_aggregation_scope not in ("component", "global"):
            raise ValueError("streaming_aggregation_scope must be 'component' or 'global'")
        if not 0.0 <= self.decision_threshold <= 1.0:
            raise ValueError("decision_threshold must be in [0, 1]")
        if self.trace_path is not None and not str(self.trace_path):
            raise ValueError("trace_path must be a non-empty path or None")
        if self.crowd_mode not in ("sync", "async"):
            raise ValueError("crowd_mode must be 'sync' or 'async'")
        if self.crowd_mode == "async" and self.vote_mode != "per-pair":
            raise ValueError("crowd_mode='async' requires vote_mode='per-pair'")
        if self.vote_timeout < 1:
            raise ValueError("vote_timeout must be at least 1 tick")
        if self.max_inflight_hits < 0:
            raise ValueError("max_inflight_hits must be non-negative (0 = unbounded)")
        if self.backpressure_policy not in ("block", "shed"):
            raise ValueError("backpressure_policy must be 'block' or 'shed'")
        if self.crowd_max_retries < 0:
            raise ValueError("crowd_max_retries must be non-negative")
        if self.crowd_backoff_ticks < 0:
            raise ValueError("crowd_backoff_ticks must be non-negative")
        if self.fault_plan is not None and not isinstance(self.fault_plan, dict):
            raise ValueError(
                "fault_plan must be a JSON-friendly dict (FaultPlan.to_dict()) or None"
            )
