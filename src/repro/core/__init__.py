"""The CrowdER core: the hybrid human-machine workflow (Figure 1).

This package ties the substrates together into the workflow the paper
proposes: machine-based likelihood estimation, likelihood-threshold pruning,
HIT generation, (simulated) crowdsourcing, and answer aggregation into a
ranked list of matching pairs.  Machine-only reference pipelines (simjoin
and SVM ranking) are provided for the Figure-12 comparison, and a small
CrowdSQL-style helper exposes the workflow as the ``~=`` self-join of the
introduction.
"""

from repro.core.config import WorkflowConfig
from repro.core.ranking import rank_candidates
from repro.core.results import ResolutionResult, StreamingDelta
from repro.core.workflow import HybridWorkflow
from repro.core.baselines import SimJoinRanker, SVMRanker, human_only_hit_count
from repro.core.crowdsql import crowd_equijoin

__all__ = [
    "WorkflowConfig",
    "ResolutionResult",
    "StreamingDelta",
    "rank_candidates",
    "HybridWorkflow",
    "SimJoinRanker",
    "SVMRanker",
    "human_only_hit_count",
    "crowd_equijoin",
]
