"""The hybrid human-machine entity-resolution workflow (Figure 1).

``HybridWorkflow.resolve`` runs the full pipeline on a dataset:

1. **Machine pass** — the likelihood estimator scores candidate pairs and
   pairs below the likelihood threshold are pruned.
2. **HIT generation** — the surviving pairs are grouped into pair-based or
   cluster-based HITs.
3. **Crowdsourcing** — the (simulated) platform replicates every HIT into
   assignments and collects per-pair votes.
4. **Aggregation** — votes are combined (Dawid-Skene EM by default) into a
   match posterior per pair, producing the ranked list and the final match
   set.
"""

from __future__ import annotations

import logging
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro import obs
from repro.aggregation.dawid_skene import DawidSkeneAggregator
from repro.aggregation.majority import MajorityAggregator
from repro.core.config import WorkflowConfig
from repro.core.ranking import rank_candidates
from repro.core.results import ResolutionResult
from repro.crowd.latency import LatencyModel
from repro.crowd.platform import SimulatedCrowdPlatform
from repro.crowd.pricing import PricingModel
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import WorkerPool
from repro.datasets.base import Dataset
from repro.hit.generator import get_cluster_generator
from repro.hit.pair_generation import PairHITGenerator
from repro.records.pairs import PairSet, canonical_pair
from repro.records.record import RecordStore
from repro.simjoin.likelihood import LikelihoodEstimator, SimJoinLikelihood

PairKey = Tuple[str, str]

logger = logging.getLogger(__name__)


def build_hit_generator(config: WorkflowConfig):
    """Instantiate the HIT generator the config asks for.

    Shared by the batch workflow and the streaming resolver so both batch
    pairs into HITs identically.
    """
    if config.hit_type == "pair":
        return PairHITGenerator(pairs_per_hit=config.pairs_per_hit)
    return get_cluster_generator(
        config.cluster_generator,
        cluster_size=config.cluster_size,
        **(
            {"packing_method": config.packing_method}
            if config.cluster_generator == "two-tiered"
            else {}
        ),
    )


def build_aggregator(config: WorkflowConfig):
    """Instantiate the vote aggregator the config asks for."""
    if config.aggregation == "majority":
        return MajorityAggregator()
    return DawidSkeneAggregator()


class HybridWorkflow:
    """The CrowdER hybrid workflow over a simulated crowd.

    Parameters
    ----------
    config:
        The workflow configuration (thresholds, HIT type, aggregation, ...).
    estimator:
        Machine likelihood estimator; defaults to the paper's simjoin.
    platform:
        Crowd platform; defaults to a simulated platform built from the
        config (worker pool, qualification test, pricing, latency model).
    """

    def __init__(
        self,
        config: Optional[WorkflowConfig] = None,
        estimator: Optional[LikelihoodEstimator] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        worker_pool: Optional[WorkerPool] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.config = config or WorkflowConfig()
        self.estimator = estimator or SimJoinLikelihood(
            attributes=self.config.similarity_attributes,
            backend=self.config.join_backend,
            workers=self.config.join_workers or None,
            pool_mode=self.config.join_pool,
        )
        if platform is not None:
            self.platform = platform
        else:
            qualification = QualificationTest() if self.config.use_qualification_test else None
            self.platform = SimulatedCrowdPlatform(
                pool=worker_pool or WorkerPool.build(seed=self.config.seed),
                assignments_per_hit=self.config.assignments_per_hit,
                qualification=qualification,
                pricing=pricing,
                latency=latency,
                seed=self.config.seed,
                vote_mode=self.config.vote_mode,
            )
        obs.activate_if_configured(self.config)

    # -------------------------------------------------------------- stages
    def machine_candidates(self, dataset: Dataset) -> PairSet:
        """Stage 1: machine likelihoods plus threshold pruning."""
        return self.estimator.estimate(
            dataset.store,
            min_likelihood=self.config.likelihood_threshold,
            cross_sources=dataset.cross_sources,
        )

    def generate_hits(self, candidates: PairSet):
        """Stage 2: batch the surviving pairs into HITs."""
        with obs.span("workflow.hit_generation", pairs=len(candidates)):
            return build_hit_generator(self.config).generate(candidates)

    def _aggregator(self):
        return build_aggregator(self.config)

    # ----------------------------------------------------------------- run
    def resolve(self, dataset: Dataset) -> ResolutionResult:
        """Run the full workflow on a dataset and return the result."""
        logger.debug(
            "resolving dataset with %d records (threshold %.2f, %s HITs)",
            len(dataset.store), self.config.likelihood_threshold, self.config.hit_type,
        )
        with obs.span("workflow.resolve", records=len(dataset.store)):
            with obs.span("workflow.machine_pass"):
                candidates = self.machine_candidates(dataset)
            batch = self.generate_hits(candidates)
            with obs.span("workflow.crowd", hits=batch.hit_count):
                crowd_run = self.platform.publish(
                    batch, true_matches=dataset.ground_truth
                )
            with obs.span(
                "workflow.aggregate",
                aggregator=self.config.aggregation,
                votes=len(crowd_run.votes),
            ):
                posteriors = self._aggregator().aggregate(crowd_run.votes)

        likelihoods: Dict[PairKey, float] = {
            pair.key: pair.likelihood or 0.0 for pair in candidates
        }
        # Pairs the crowd never voted on (possible when a cluster HIT omits a
        # candidate pair that another HIT was supposed to cover) fall back to
        # the machine likelihood: below every crowd-confirmed match, above
        # every crowd-rejected pair.
        ranked, matches = rank_candidates(
            likelihoods, posteriors, self.config.decision_threshold
        )

        recall_ceiling = None
        if dataset.ground_truth:
            surviving = candidates.intersection_keys(dataset.ground_truth)
            recall_ceiling = len(surviving) / len(dataset.ground_truth)

        return ResolutionResult(
            ranked_pairs=ranked,
            matches=matches,
            posteriors=dict(posteriors),
            likelihoods=likelihoods,
            candidate_count=len(candidates),
            hit_count=batch.hit_count,
            assignment_count=crowd_run.assignment_count,
            cost=crowd_run.cost,
            latency=crowd_run.latency,
            recall_ceiling=recall_ceiling,
            generator_name=batch.generator_name,
        )
