"""Synthetic two-source Product dataset (the Abt-Buy stand-in).

The real dataset integrates 1081 records from the "abt" website and 1092
records from the "buy" website with 1097 cross-source matching pairs; each
record has a [name, price] pair.  The defining property for the paper's
experiments is that the two sources describe the same product very
differently (verbose titles with model codes vs terse titles), so the
Jaccard likelihood of true matches is spread widely and machine-only
techniques perform poorly (Table 2(b), Figure 12(b)).

The generator creates a catalogue of product entities and renders each
entity through two "house styles":

* **abt style** — brand, capacity, colour, generation, product line and an
  alphanumeric model code, e.g.
  ``"apple 8gb black 2nd generation ipod touch mb528lla"``.
* **buy style** — a terse reordering that keeps only some of those tokens
  and may reword the generation (``"gen 2"``), e.g.
  ``"apple ipod touch 8gb 2nd gen"``.

A controlled fraction of entities get heavily divergent buy titles, which
pushes their Jaccard similarity below the usual 0.2-0.5 thresholds and
produces the low-recall-at-high-threshold profile of Table 2(b).
"""

from __future__ import annotations

import random
import string
from typing import Dict, List, Tuple

from repro.datasets.base import Dataset
from repro.records.pairs import canonical_pair
from repro.records.record import Record, RecordStore

_BRANDS = [
    "apple", "sony", "samsung", "panasonic", "canon", "nikon", "toshiba", "dell",
    "hp", "lenovo", "asus", "acer", "lg", "philips", "bose", "garmin", "jbl",
    "logitech", "netgear", "seagate", "kodak", "olympus", "pentax", "vizio",
    "sharp", "sanyo", "pioneer", "kenwood", "yamaha", "denon", "onkyo", "jvc",
    "casio", "epson", "brother", "western", "sandisk", "kingston", "tomtom",
    "magellan",
]
_LINES = [
    "ipod touch", "ipod nano", "ipod shuffle", "walkman player", "galaxy player",
    "lumix camera", "powershot camera", "coolpix camera", "portable dvd player",
    "notebook", "netbook", "ultrabook", "lcd monitor", "soundbar", "home theater",
    "gps navigator", "wireless router", "external hard drive", "bluetooth speaker",
    "noise cancelling headphones", "digital camcorder", "photo printer",
    "e reader", "media streamer", "smart remote", "clock radio", "micro stereo",
    "receiver amplifier", "turntable", "subwoofer", "earbuds", "webcam",
    "flash drive", "memory card", "docking station", "projector", "scanner",
    "label maker", "cordless phone", "answering machine", "baby monitor",
    "weather station", "fitness tracker", "action camera", "dash cam",
    "karaoke machine", "dvd recorder", "blu ray player", "cd changer",
    "minidisc recorder",
]
_COLORS = [
    "black", "white", "silver", "blue", "red", "pink", "gray", "green",
    "purple", "orange", "titanium", "champagne",
]
_CAPACITIES = ["2gb", "4gb", "8gb", "16gb", "32gb", "64gb", "120gb", "250gb", "500gb", "1tb"]
_GENERATIONS = ["1st", "2nd", "3rd", "4th", "5th"]
_EXTRAS = [
    "wifi", "hd", "portable", "compact", "pro", "plus", "slim", "touchscreen",
    "wireless", "rechargeable", "waterproof", "ultra", "mini", "deluxe",
    "premium", "advanced",
]


class ProductGenerator:
    """Generate the synthetic two-source Product dataset.

    Parameters
    ----------
    shared_entities:
        Entities described by both sources (each contributes one matching
        pair).
    extra_buy_duplicates:
        Number of shared entities that receive a *second* buy record (each
        adds one more matching pair, mirroring the fact that the real
        dataset has slightly more matches than shared products).
    abt_only / buy_only:
        Entities present in only one source (no matching pair).
    hard_fraction:
        Fraction of shared entities whose buy title is heavily divergent
        (drives the low-threshold tail of Table 2(b)).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        shared_entities: int = 1005,
        extra_buy_duplicates: int = 87,
        abt_only: int = 76,
        buy_only: int = 0,
        hard_fraction: float = 0.40,
        seed: int = 7,
    ) -> None:
        if shared_entities < 1:
            raise ValueError("shared_entities must be positive")
        if not 0.0 <= hard_fraction <= 1.0:
            raise ValueError("hard_fraction must be in [0, 1]")
        if extra_buy_duplicates > shared_entities:
            raise ValueError("extra_buy_duplicates cannot exceed shared_entities")
        self.shared_entities = shared_entities
        self.extra_buy_duplicates = extra_buy_duplicates
        self.abt_only = abt_only
        self.buy_only = buy_only
        self.hard_fraction = hard_fraction
        self.seed = seed

    # ------------------------------------------------------------ entities
    def _make_entity(self, rng: random.Random) -> Dict[str, str]:
        model_code = "".join(rng.choices(string.ascii_lowercase, k=2)) + "".join(
            rng.choices(string.digits, k=3)
        ) + rng.choice(["lla", "b", "s", "xe", "us"])
        return {
            "brand": rng.choice(_BRANDS),
            "line": rng.choice(_LINES),
            "color": rng.choice(_COLORS),
            "capacity": rng.choice(_CAPACITIES),
            "generation": rng.choice(_GENERATIONS),
            "extra": rng.choice(_EXTRAS),
            "model_code": model_code,
            "price": round(rng.uniform(15, 1500), 2),
        }

    # -------------------------------------------------------------- titles
    def _abt_title(self, entity: Dict[str, str], rng: random.Random) -> str:
        tokens = [
            entity["brand"],
            entity["capacity"],
            entity["color"],
            f"{entity['generation']} generation",
            entity["line"],
            entity["extra"],
            entity["model_code"],
        ]
        if rng.random() < 0.3:
            tokens.insert(5, "with accessories kit")
        return " ".join(tokens)

    def _buy_title(self, entity: Dict[str, str], rng: random.Random, hard: bool) -> str:
        """Render the terse "buy" style title.

        ``hard`` selects the divergent regime; within each regime a
        continuous divergence level controls how many of the abt-style
        tokens survive, which spreads the match likelihoods across the
        0.1-0.6 range the way Table 2(b) requires.
        """
        divergence = rng.uniform(0.42, 0.95) if hard else rng.uniform(0.0, 0.42)
        line_tokens = entity["line"].split()
        if divergence > 0.6 and len(line_tokens) > 1:
            line = " ".join(line_tokens[:-1])
        else:
            line = entity["line"]
        if divergence < 0.35:
            generation_word = f"{entity['generation']} generation"
        elif divergence < 0.7:
            generation_word = f"gen {entity['generation'][0]}"
        else:
            generation_word = ""
        tokens = [
            entity["brand"],
            line,
            entity["capacity"] if rng.random() > 0.55 * divergence else "",
            generation_word,
            entity["color"] if rng.random() > 0.25 + 0.65 * divergence else "",
            entity["extra"] if rng.random() > 0.45 + 0.5 * divergence else "",
            entity["model_code"] if rng.random() < 0.2 else "",
        ]
        if divergence > 0.75:
            tokens.append(rng.choice(["refurbished", "bundle", "new", "edition", ""]))
        return " ".join(token for token in tokens if token)

    # ------------------------------------------------------------ generate
    def generate(self) -> Dataset:
        """Generate the dataset."""
        rng = random.Random(self.seed)
        store = RecordStore(name="product")
        matches: List[Tuple[str, str]] = []
        abt_counter = 0
        buy_counter = 0

        def add_abt(entity: Dict[str, str]) -> str:
            nonlocal abt_counter
            abt_counter += 1
            record_id = f"a{abt_counter}"
            price = f"${entity['price']:.2f}"
            store.add(
                Record(
                    record_id=record_id,
                    attributes={"name": self._abt_title(entity, rng), "price": price},
                    source="abt",
                )
            )
            return record_id

        def add_buy(entity: Dict[str, str], hard: bool) -> str:
            nonlocal buy_counter
            buy_counter += 1
            record_id = f"b{buy_counter}"
            # Buy prices differ slightly from abt prices for the same product.
            price = f"${entity['price'] * rng.uniform(0.9, 1.1):.2f}"
            store.add(
                Record(
                    record_id=record_id,
                    attributes={"name": self._buy_title(entity, rng, hard), "price": price},
                    source="buy",
                )
            )
            return record_id

        shared = [self._make_entity(rng) for _ in range(self.shared_entities)]
        hard_count = int(round(self.shared_entities * self.hard_fraction))
        hard_flags = [True] * hard_count + [False] * (self.shared_entities - hard_count)
        rng.shuffle(hard_flags)

        duplicate_indices = set(rng.sample(range(self.shared_entities), self.extra_buy_duplicates))
        for index, entity in enumerate(shared):
            abt_id = add_abt(entity)
            buy_id = add_buy(entity, hard_flags[index])
            matches.append(canonical_pair(abt_id, buy_id))
            if index in duplicate_indices:
                second_buy_id = add_buy(entity, hard_flags[index])
                matches.append(canonical_pair(abt_id, second_buy_id))

        for _ in range(self.abt_only):
            add_abt(self._make_entity(rng))
        for _ in range(self.buy_only):
            add_buy(self._make_entity(rng), hard=False)

        return Dataset(
            name="product",
            store=store,
            ground_truth=frozenset(matches),
            cross_sources=("abt", "buy"),
            metadata={
                "seed": self.seed,
                "shared_entities": self.shared_entities,
                "abt_records": abt_counter,
                "buy_records": buy_counter,
                "hard_fraction": self.hard_fraction,
            },
        )


def load_product(seed: int = 7, scale: float = 1.0) -> Dataset:
    """Generate the Product dataset.

    ``scale`` shrinks the dataset proportionally (e.g. ``scale=0.2`` for the
    fast unit-test configuration) while keeping the same qualitative
    similarity profile; ``scale=1.0`` matches the paper's record counts.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    generator = ProductGenerator(
        shared_entities=max(1, int(round(1005 * scale))),
        extra_buy_duplicates=max(0, int(round(87 * scale))),
        abt_only=max(0, int(round(76 * scale))),
        buy_only=0,
        seed=seed,
    )
    return generator.generate()
