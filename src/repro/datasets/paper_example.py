"""The nine-record product table of the paper (Table 1).

This tiny dataset drives the worked examples of Sections 2-6 (Figures 2, 5,
8 and 9) and is used by the walkthrough tests to check that the
implementation reproduces the paper's intermediate results exactly: the ten
pairs surviving a 0.3 likelihood threshold, the three-HIT optimal cover for
k = 4, the LCC partition of Example 3 and the three-comparison count of
Example 4.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.records.pairs import canonical_pair
from repro.records.record import Record, RecordStore

_ROWS = [
    ("r1", "iPad Two 16GB WiFi White", "$490"),
    ("r2", "iPad 2nd generation 16GB WiFi White", "$469"),
    ("r3", "iPhone 4th generation White 16GB", "$545"),
    ("r4", "Apple iPhone 4 16GB White", "$520"),
    ("r5", "Apple iPhone 3rd generation Black 16GB", "$375"),
    ("r6", "iPhone 4 32GB White", "$599"),
    ("r7", "Apple iPad2 16GB WiFi White", "$499"),
    ("r8", "Apple iPod shuffle 2GB Blue", "$49"),
    ("r9", "Apple iPod shuffle USB Cable", "$19"),
]

# Records referring to the same real-world product, per the paper's
# discussion: r1/r2/r7 are the same iPad 2, r4/r6 are not the same (different
# capacity), r3/r4 are the same iPhone 4.
_MATCHES = [
    ("r1", "r2"),
    ("r1", "r7"),
    ("r2", "r7"),
    ("r3", "r4"),
]


def paper_example_store() -> RecordStore:
    """The nine products of Table 1 as a :class:`RecordStore`."""
    store = RecordStore(name="paper-example")
    for record_id, product_name, price in _ROWS:
        store.add(
            Record(
                record_id=record_id,
                attributes={"product_name": product_name, "price": price},
            )
        )
    return store


def paper_example_matches() -> FrozenSet[Tuple[str, str]]:
    """Ground-truth matching pairs among the nine example records."""
    return frozenset(canonical_pair(a, b) for a, b in _MATCHES)
