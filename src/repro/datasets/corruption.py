"""Record-perturbation utilities used by the synthetic dataset generators.

Duplicate records in real data differ by abbreviations, re-orderings, typos,
dropped tokens and alternative phrasings; these helpers apply such
perturbations deterministically (given a ``random.Random``) so that the
generators can control how textually different each duplicate is — which is
what shapes the Table-2 likelihood/recall profile.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.records.record import Record, RecordStore


def swap_random_tokens(text: str, rng: random.Random) -> str:
    """Swap two random tokens of the text (the Product+Dup construction).

    Texts with fewer than two tokens are returned unchanged.
    """
    tokens = text.split()
    if len(tokens) < 2:
        return text
    i, j = rng.sample(range(len(tokens)), 2)
    tokens[i], tokens[j] = tokens[j], tokens[i]
    return " ".join(tokens)


def drop_random_token(text: str, rng: random.Random) -> str:
    """Remove one random token (keeps at least one token)."""
    tokens = text.split()
    if len(tokens) <= 1:
        return text
    index = rng.randrange(len(tokens))
    del tokens[index]
    return " ".join(tokens)


def introduce_typo(text: str, rng: random.Random) -> str:
    """Introduce a single-character typo into one token of the text.

    The typo either duplicates, deletes or substitutes one character of a
    token with length at least 4 (so very short tokens such as numbers stay
    recognisable).
    """
    tokens = text.split()
    eligible = [index for index, token in enumerate(tokens) if len(token) >= 4]
    if not eligible:
        return text
    index = rng.choice(eligible)
    token = tokens[index]
    position = rng.randrange(len(token))
    mode = rng.choice(["duplicate", "delete", "substitute"])
    if mode == "duplicate":
        token = token[: position + 1] + token[position] + token[position + 1 :]
    elif mode == "delete":
        token = token[:position] + token[position + 1 :]
    else:
        replacement = rng.choice("abcdefghijklmnopqrstuvwxyz")
        token = token[:position] + replacement + token[position + 1 :]
    tokens[index] = token
    return " ".join(tokens)


def abbreviate_tokens(text: str, abbreviations: Dict[str, str], rng: random.Random, probability: float = 1.0) -> str:
    """Replace tokens by their abbreviation with the given probability.

    E.g. ``{"street": "st", "avenue": "ave"}`` turns "55 east street" into
    "55 east st".
    """
    tokens = text.split()
    result: List[str] = []
    for token in tokens:
        lowered = token.lower()
        if lowered in abbreviations and rng.random() < probability:
            result.append(abbreviations[lowered])
        else:
            result.append(token)
    return " ".join(result)


def shuffle_tokens(text: str, rng: random.Random) -> str:
    """Return the text with its tokens in random order."""
    tokens = text.split()
    rng.shuffle(tokens)
    return " ".join(tokens)


#: Named corruption operators usable by :func:`corrupt_dataset`.
CORRUPTIONS = {
    "swap": swap_random_tokens,
    "drop": drop_random_token,
    "typo": introduce_typo,
}


def corrupt_record(record: "Record", seed: int, corruptions: Sequence[str]) -> "Record":
    """Return an **id-stable** corrupted copy of one record.

    The perturbation is a pure function of ``(seed, record_id)`` — the RNG
    is derived from both, never from iteration order or store membership —
    so corrupting a corpus record-by-record, in any order, over any subset,
    always produces the same corrupted text for the same record.  The
    record id and source tag are preserved untouched.
    """
    rng = random.Random(f"{seed}|{record.record_id}")
    updates = {}
    for attribute, value in record.attributes.items():
        if not value or not value.strip():
            continue
        operator = CORRUPTIONS[rng.choice(list(corruptions))]
        updates[attribute] = operator(value, rng)
    return record.with_attributes(**updates) if updates else record


def corrupt_dataset(
    dataset,
    seed: int = 0,
    fraction: float = 0.3,
    corruptions: Sequence[str] = ("swap", "drop", "typo"),
):
    """Return a corrupted variant of a dataset with **identical ids and gold pairs**.

    A deterministic per-record coin (keyed on ``(seed, record_id)``, like
    the perturbation itself) selects ``fraction`` of the records for
    corruption; each selected record's text attributes are perturbed by one
    of the named ``corruptions`` (see :data:`CORRUPTIONS`).  Record ids,
    source tags, insertion order and the ``ground_truth`` pair set are
    carried over unchanged — so gold-pair ids in the corrupted variant
    always resolve, and metrics on the corrupted corpus are directly
    comparable to the clean one.

    Earlier corruption helpers operated on bare text and left id handling
    to each caller, which made it easy to produce variants whose gold pairs
    referenced regenerated ids; this entry point owns that invariant
    (``tests/test_datasets.py`` pins it).
    """
    from repro.datasets.base import Dataset

    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    unknown = [name for name in corruptions if name not in CORRUPTIONS]
    if unknown:
        raise ValueError(f"unknown corruption(s) {unknown}; choose from {sorted(CORRUPTIONS)}")
    store = RecordStore(name=f"{dataset.store.name}-corrupted")
    corrupted_count = 0
    for record in dataset.store:
        coin = random.Random(f"{seed}|select|{record.record_id}").random()
        if coin < fraction:
            store.add(corrupt_record(record, seed, corruptions))
            corrupted_count += 1
        else:
            store.add(record)
    metadata = dict(dataset.metadata)
    metadata["corruption"] = {
        "seed": seed,
        "fraction": fraction,
        "corruptions": list(corruptions),
        "corrupted_records": corrupted_count,
        "base_dataset": dataset.name,
    }
    return Dataset(
        name=f"{dataset.name}-corrupted",
        store=store,
        ground_truth=dataset.ground_truth,
        cross_sources=dataset.cross_sources,
        metadata=metadata,
    )


def pick_subset(tokens: Sequence[str], keep_fraction: float, rng: random.Random) -> List[str]:
    """Keep a random subset of the tokens (at least one), preserving order."""
    if not tokens:
        return []
    keep_count = max(1, int(round(len(tokens) * keep_fraction)))
    indices = sorted(rng.sample(range(len(tokens)), min(keep_count, len(tokens))))
    return [tokens[index] for index in indices]
