"""Record-perturbation utilities used by the synthetic dataset generators.

Duplicate records in real data differ by abbreviations, re-orderings, typos,
dropped tokens and alternative phrasings; these helpers apply such
perturbations deterministically (given a ``random.Random``) so that the
generators can control how textually different each duplicate is — which is
what shapes the Table-2 likelihood/recall profile.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence


def swap_random_tokens(text: str, rng: random.Random) -> str:
    """Swap two random tokens of the text (the Product+Dup construction).

    Texts with fewer than two tokens are returned unchanged.
    """
    tokens = text.split()
    if len(tokens) < 2:
        return text
    i, j = rng.sample(range(len(tokens)), 2)
    tokens[i], tokens[j] = tokens[j], tokens[i]
    return " ".join(tokens)


def drop_random_token(text: str, rng: random.Random) -> str:
    """Remove one random token (keeps at least one token)."""
    tokens = text.split()
    if len(tokens) <= 1:
        return text
    index = rng.randrange(len(tokens))
    del tokens[index]
    return " ".join(tokens)


def introduce_typo(text: str, rng: random.Random) -> str:
    """Introduce a single-character typo into one token of the text.

    The typo either duplicates, deletes or substitutes one character of a
    token with length at least 4 (so very short tokens such as numbers stay
    recognisable).
    """
    tokens = text.split()
    eligible = [index for index, token in enumerate(tokens) if len(token) >= 4]
    if not eligible:
        return text
    index = rng.choice(eligible)
    token = tokens[index]
    position = rng.randrange(len(token))
    mode = rng.choice(["duplicate", "delete", "substitute"])
    if mode == "duplicate":
        token = token[: position + 1] + token[position] + token[position + 1 :]
    elif mode == "delete":
        token = token[:position] + token[position + 1 :]
    else:
        replacement = rng.choice("abcdefghijklmnopqrstuvwxyz")
        token = token[:position] + replacement + token[position + 1 :]
    tokens[index] = token
    return " ".join(tokens)


def abbreviate_tokens(text: str, abbreviations: Dict[str, str], rng: random.Random, probability: float = 1.0) -> str:
    """Replace tokens by their abbreviation with the given probability.

    E.g. ``{"street": "st", "avenue": "ave"}`` turns "55 east street" into
    "55 east st".
    """
    tokens = text.split()
    result: List[str] = []
    for token in tokens:
        lowered = token.lower()
        if lowered in abbreviations and rng.random() < probability:
            result.append(abbreviations[lowered])
        else:
            result.append(token)
    return " ".join(result)


def shuffle_tokens(text: str, rng: random.Random) -> str:
    """Return the text with its tokens in random order."""
    tokens = text.split()
    rng.shuffle(tokens)
    return " ".join(tokens)


def pick_subset(tokens: Sequence[str], keep_fraction: float, rng: random.Random) -> List[str]:
    """Keep a random subset of the tokens (at least one), preserving order."""
    if not tokens:
        return []
    keep_count = max(1, int(round(len(tokens) * keep_fraction)))
    indices = sorted(rng.sample(range(len(tokens)), min(keep_count, len(tokens))))
    return [tokens[index] for index in indices]
