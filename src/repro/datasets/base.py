"""Dataset container shared by all generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.records.pairs import canonical_pair
from repro.records.record import RecordStore


@dataclass
class Dataset:
    """A record store plus its ground-truth matching pairs.

    Attributes
    ----------
    name:
        Dataset name used in reports (``"restaurant"``, ``"product"``, ...).
    store:
        The records to resolve.
    ground_truth:
        Canonical keys of all truly matching pairs.
    cross_sources:
        For record-linkage datasets, the two source tags whose cross product
        forms the candidate space (``None`` for deduplication datasets).
    metadata:
        Free-form generation metadata (entity counts, seeds, ...).
    """

    name: str
    store: RecordStore
    ground_truth: FrozenSet[Tuple[str, str]]
    cross_sources: Optional[Tuple[str, str]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.ground_truth = frozenset(canonical_pair(a, b) for a, b in self.ground_truth)
        for id_a, id_b in self.ground_truth:
            if id_a not in self.store or id_b not in self.store:
                raise ValueError(f"ground-truth pair ({id_a}, {id_b}) references unknown records")

    @property
    def record_count(self) -> int:
        """Number of records in the dataset."""
        return len(self.store)

    @property
    def match_count(self) -> int:
        """Number of ground-truth matching pairs."""
        return len(self.ground_truth)

    def total_pair_count(self) -> int:
        """Size of the candidate space the naive approach would verify."""
        if self.cross_sources is not None:
            left = len(self.store.records_from_source(self.cross_sources[0]))
            right = len(self.store.records_from_source(self.cross_sources[1]))
            return left * right
        return self.store.total_pair_count()

    def is_match(self, id_a: str, id_b: str) -> bool:
        """True if the two records are a ground-truth match."""
        return canonical_pair(id_a, id_b) in self.ground_truth

    def entity_groups(self) -> List[List[str]]:
        """Group record ids into entities via the ground-truth matches."""
        parent: Dict[str, str] = {record.record_id: record.record_id for record in self.store}

        def find(record_id: str) -> str:
            while parent[record_id] != record_id:
                parent[record_id] = parent[parent[record_id]]
                record_id = parent[record_id]
            return record_id

        for id_a, id_b in self.ground_truth:
            root_a, root_b = find(id_a), find(id_b)
            if root_a != root_b:
                parent[root_b] = root_a
        groups: Dict[str, List[str]] = {}
        for record in self.store:
            groups.setdefault(find(record.record_id), []).append(record.record_id)
        return list(groups.values())
