"""Synthetic Restaurant dataset (the Fodors/Zagat stand-in).

The real dataset has 858 non-identical restaurant records with attributes
[name, address, city, type] and 106 duplicate pairs.  The generator below
produces a dataset with exactly that shape: ``record_count`` records of
which ``duplicate_pairs`` base records receive one perturbed duplicate.

The perturbations are calibrated so that the Jaccard-likelihood profile of
the duplicates resembles Table 2(a) of the paper: most duplicate pairs keep
a similarity above 0.4-0.5 (light perturbations such as street
abbreviations or a dropped token), a minority fall into the 0.3-0.4 band
(heavier rewording), and a handful fall below 0.3 (dirty duplicates).
Non-duplicate records frequently share city and cuisine tokens, producing
the large low-similarity candidate tail the paper's Table 2(a) shows for
small thresholds.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.base import Dataset
from repro.datasets.corruption import abbreviate_tokens, drop_random_token, introduce_typo
from repro.records.pairs import canonical_pair
from repro.records.record import Record, RecordStore

_NAME_FIRST = [
    "golden", "blue", "royal", "little", "grand", "old", "new", "silver", "red",
    "green", "happy", "lucky", "sunny", "ocean", "garden", "village", "corner",
    "uptown", "downtown", "harbor", "lake", "river", "mountain", "palm", "cedar",
]
_NAME_SECOND = [
    "dragon", "lotus", "olive", "pepper", "basil", "truffle", "anchor", "lantern",
    "rose", "maple", "willow", "orchid", "tavern", "table", "spoon", "fork",
    "kettle", "stove", "hearth", "grove", "terrace", "panda", "tiger", "falcon",
]
_NAME_SUFFIX = [
    "cafe", "grill", "bistro", "kitchen", "diner", "house", "restaurant", "bar",
    "eatery", "brasserie", "cantina", "trattoria", "steakhouse", "noodle bar",
]
_STREET_NAMES = [
    "main", "oak", "pine", "maple", "market", "broadway", "sunset", "hill",
    "park", "lake", "mission", "valencia", "union", "spring", "canal", "grand",
    "madison", "lexington", "melrose", "ventura", "wilshire", "columbus",
]
_STREET_TYPES = ["street", "avenue", "boulevard", "road", "drive", "place"]
_CITIES = [
    "new york", "los angeles", "san francisco", "chicago", "atlanta",
    "boston", "seattle", "houston", "miami", "denver",
]
_CUISINES = [
    "american", "american new", "italian", "french", "chinese", "japanese",
    "mexican", "thai", "indian", "seafood", "steakhouse", "mediterranean",
    "bbq", "pizza", "vegetarian",
]
_ABBREVIATIONS = {
    "street": "st", "avenue": "ave", "boulevard": "blvd", "road": "rd",
    "drive": "dr", "place": "pl", "east": "e", "west": "w", "north": "n",
    "south": "s", "restaurant": "rest",
}


class RestaurantGenerator:
    """Generate the synthetic Restaurant dataset.

    Parameters
    ----------
    record_count:
        Total number of records to produce (858 in the paper).
    duplicate_pairs:
        Number of duplicate pairs (106 in the paper); each duplicate pair is
        a base record plus one perturbed copy, so the number of distinct
        entities is ``record_count - duplicate_pairs``.
    seed:
        RNG seed; the same seed always yields the same dataset.
    """

    def __init__(self, record_count: int = 858, duplicate_pairs: int = 106, seed: int = 42) -> None:
        if duplicate_pairs < 0 or record_count < 2 * duplicate_pairs:
            raise ValueError("record_count must be at least twice duplicate_pairs")
        self.record_count = record_count
        self.duplicate_pairs = duplicate_pairs
        self.seed = seed

    # ---------------------------------------------------------------- base
    def _base_entity(self, rng: random.Random, used_names: set) -> Dict[str, str]:
        for _ in range(100):
            name = " ".join(
                [rng.choice(_NAME_FIRST), rng.choice(_NAME_SECOND), rng.choice(_NAME_SUFFIX)]
            )
            if name not in used_names:
                used_names.add(name)
                break
        direction = rng.choice(["", "east ", "west ", "north ", "south "])
        address = (
            f"{rng.randint(1, 9999)} {direction}{rng.choice(_STREET_NAMES)} "
            f"{rng.choice(_STREET_TYPES)}"
        )
        return {
            "name": name,
            "address": address,
            "city": rng.choice(_CITIES),
            "type": rng.choice(_CUISINES),
        }

    # ----------------------------------------------------------- duplicates
    def _perturb(self, base: Dict[str, str], rng: random.Random) -> Dict[str, str]:
        """Create a duplicate of a base entity with a calibrated perturbation level."""
        duplicate = dict(base)
        level = rng.random()
        # Always vary the address formatting a little.
        duplicate["address"] = abbreviate_tokens(duplicate["address"], _ABBREVIATIONS, rng, probability=0.8)
        if level < 0.72:
            # Light perturbation: abbreviation plus maybe a typo -> high Jaccard.
            if rng.random() < 0.5:
                duplicate["name"] = introduce_typo(duplicate["name"], rng)
        elif level < 0.87:
            # Medium: drop a name token and reword the cuisine; the pair
            # typically lands in the 0.4-0.5 likelihood band.
            duplicate["name"] = drop_random_token(duplicate["name"], rng)
            duplicate["type"] = rng.choice(_CUISINES)
        elif level < 0.96:
            # Heavy: shortened name, different cuisine wording and a typo in
            # the address (0.3-0.4 band).
            duplicate["name"] = drop_random_token(introduce_typo(duplicate["name"], rng), rng)
            duplicate["type"] = rng.choice(_CUISINES)
            duplicate["address"] = introduce_typo(duplicate["address"], rng)
        else:
            # Very dirty duplicate: only fragments of the name survive and the
            # street part of the address is rewritten (likelihood around 0.2-0.3).
            duplicate["name"] = drop_random_token(drop_random_token(duplicate["name"], rng), rng)
            duplicate["type"] = rng.choice(_CUISINES)
            address_tokens = duplicate["address"].split()
            duplicate["address"] = f"{address_tokens[0]} {rng.choice(_STREET_NAMES)} st"
        return duplicate

    # ------------------------------------------------------------- generate
    def generate(self) -> Dataset:
        """Generate the dataset."""
        rng = random.Random(self.seed)
        entity_count = self.record_count - self.duplicate_pairs
        used_names: set = set()
        entities = [self._base_entity(rng, used_names) for _ in range(entity_count)]

        duplicated_indices = rng.sample(range(entity_count), self.duplicate_pairs)
        rows: List[Tuple[Dict[str, str], int]] = [
            (attributes, index) for index, attributes in enumerate(entities)
        ]
        for index in duplicated_indices:
            rows.append((self._perturb(entities[index], rng), index))
        rng.shuffle(rows)

        store = RecordStore(name="restaurant")
        first_record_of_entity: Dict[int, str] = {}
        matches: List[Tuple[str, str]] = []
        for position, (attributes, entity_index) in enumerate(rows):
            record_id = f"r{position + 1}"
            store.add(Record(record_id=record_id, attributes=attributes))
            if entity_index in first_record_of_entity:
                matches.append(canonical_pair(first_record_of_entity[entity_index], record_id))
            else:
                first_record_of_entity[entity_index] = record_id

        return Dataset(
            name="restaurant",
            store=store,
            ground_truth=frozenset(matches),
            metadata={
                "seed": self.seed,
                "entities": entity_count,
                "duplicate_pairs": self.duplicate_pairs,
            },
        )


def load_restaurant(seed: int = 42, record_count: int = 858, duplicate_pairs: int = 106) -> Dataset:
    """Generate the Restaurant dataset with the paper's default sizes."""
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()
