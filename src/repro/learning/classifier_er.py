"""Learning-based entity resolution: the paper's SVM baseline end to end.

The pipeline follows Section 7.3:

1. Compute the Jaccard candidates above a low threshold (0.1 in the paper).
2. Sample ``training_size`` candidate pairs, label them with the ground
   truth, and extract similarity feature vectors.
3. Train the classifier and score the remaining candidate pairs.
4. Return a ranked list of pairs (most likely matches first) used to plot
   precision-recall curves.

The sampling / training is repeated ``repetitions`` times with different
seeds and the per-pair scores are averaged, mirroring "the training pairs
were sampled 10 times, and we report the average performance here".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.learning.svm import LinearSVM
from repro.learning.training import build_training_set
from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.similarity.feature_vectors import FeatureExtractor


@dataclass
class LearningBasedER:
    """SVM-based ER ranker over machine-generated candidate pairs.

    Parameters
    ----------
    extractor:
        Feature extractor (edit + cosine per attribute in the paper).
    training_size:
        Number of labelled training pairs per repetition (500 in the paper).
    repetitions:
        Number of independent training repetitions to average (10 in the
        paper; smaller values keep the benchmarks fast).
    seed:
        Base random seed.
    classifier_factory:
        Callable returning a fresh classifier exposing ``fit`` and
        ``decision_function``; defaults to :class:`LinearSVM`.
    """

    extractor: FeatureExtractor
    training_size: int = 500
    repetitions: int = 3
    seed: int = 0
    classifier_factory: Optional[object] = None
    name: str = "svm"
    last_training_sizes: List[int] = field(default_factory=list)

    def rank_pairs(
        self,
        store: RecordStore,
        candidates: PairSet,
        ground_truth: FrozenSet[Tuple[str, str]],
        exclude_training: bool = False,
    ) -> List[Tuple[Tuple[str, str], float]]:
        """Return candidate pairs ranked by averaged classifier score.

        ``exclude_training`` removes the pairs used for training from the
        ranked output (the paper ranks "the remaining pairs"); keeping them
        simplifies recall accounting and changes results only marginally.
        """
        keys = list(candidates.keys())
        if not keys:
            return []
        features = self.extractor.extract_pairs(store, keys)
        total_scores = np.zeros(len(keys))
        successful_runs = 0
        excluded: set = set()
        self.last_training_sizes = []

        for repetition in range(self.repetitions):
            training = build_training_set(
                store,
                candidates,
                ground_truth,
                self.extractor,
                sample_size=self.training_size,
                seed=self.seed + repetition,
            )
            self.last_training_sizes.append(training.size)
            if not training.has_both_classes():
                continue
            classifier = self._new_classifier(repetition)
            classifier.fit(training.features, training.labels)
            total_scores += classifier.decision_function(features)
            successful_runs += 1
            if exclude_training:
                excluded.update(training.pair_keys)

        if successful_runs == 0:
            # Fall back to ranking by the machine likelihood if training was
            # impossible (e.g. no positive pairs among the candidates).
            scored = [
                (pair.key, pair.likelihood or 0.0)
                for pair in candidates.sorted_by_likelihood()
            ]
            return [(key, score) for key, score in scored if key not in excluded]

        scores = total_scores / successful_runs
        ranked = sorted(zip(keys, scores), key=lambda item: item[1], reverse=True)
        if exclude_training:
            ranked = [(key, score) for key, score in ranked if key not in excluded]
        return [(key, float(score)) for key, score in ranked]

    def _new_classifier(self, repetition: int):
        if self.classifier_factory is not None:
            return self.classifier_factory()  # type: ignore[operator]
        return LinearSVM(seed=self.seed + repetition)
