"""L2-regularised logistic regression trained with batch gradient descent.

Provided as an alternative learning-based baseline to the SVM (the paper
only evaluates SVM; logistic regression is included for ablations and as a
sanity cross-check of the feature extraction).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LogisticRegression:
    """Binary logistic regression on dense numpy features."""

    def __init__(
        self,
        regularization: float = 1e-4,
        learning_rate: float = 0.5,
        iterations: int = 2_000,
        fit_intercept: bool = True,
    ) -> None:
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.regularization = regularization
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.fit_intercept = fit_intercept
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self.weights is not None

    @staticmethod
    def _sigmoid(values: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(values, -35.0, 35.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Train on a feature matrix and 0/1 labels."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float).ravel()
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if len(np.unique(labels)) < 2:
            raise ValueError("training data must contain both classes")

        n_samples, n_features = features.shape
        weights = np.zeros(n_features)
        bias = 0.0
        for _ in range(self.iterations):
            scores = features @ weights + bias
            probabilities = self._sigmoid(scores)
            error = probabilities - labels
            gradient_w = features.T @ error / n_samples + self.regularization * weights
            gradient_b = float(np.mean(error))
            weights -= self.learning_rate * gradient_w
            if self.fit_intercept:
                bias -= self.learning_rate * gradient_b
        self.weights = weights
        self.bias = bias
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive (match) class."""
        if not self.is_fitted:
            raise RuntimeError("LogisticRegression must be fitted before scoring")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return self._sigmoid(features @ self.weights + self.bias)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw linear scores (monotone in the probability)."""
        if not self.is_fitted:
            raise RuntimeError("LogisticRegression must be fitted before scoring")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary 0/1 predictions at the 0.5 probability threshold."""
        return (self.predict_proba(features) > 0.5).astype(int)
