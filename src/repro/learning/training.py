"""Training-set construction for the learning-based baseline.

Section 7.3: the SVM classifier is trained "on 500 pairs that were randomly
selected from the pairs whose Jaccard similarities were above 0.1", labelled
with the ground truth, and the sampling is repeated several times with the
average performance reported.  These helpers implement that protocol.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.records.pairs import PairSet, canonical_pair
from repro.records.record import RecordStore
from repro.similarity.feature_vectors import FeatureExtractor


@dataclass
class TrainingSet:
    """A labelled sample of candidate pairs ready for classifier training."""

    pair_keys: List[Tuple[str, str]]
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.pair_keys) != self.features.shape[0] or len(self.pair_keys) != len(self.labels):
            raise ValueError("pair_keys, features and labels must have matching lengths")

    @property
    def size(self) -> int:
        """Number of labelled pairs."""
        return len(self.pair_keys)

    @property
    def positive_count(self) -> int:
        """Number of matching (positive) pairs in the sample."""
        return int(np.sum(self.labels))

    def has_both_classes(self) -> bool:
        """True if the sample contains at least one match and one non-match."""
        return 0 < self.positive_count < self.size


def sample_training_pairs(
    candidates: PairSet,
    ground_truth: FrozenSet[Tuple[str, str]],
    sample_size: int,
    seed: int = 0,
    ensure_both_classes: bool = True,
) -> List[Tuple[Tuple[str, str], bool]]:
    """Randomly sample candidate pairs and label them with the ground truth.

    With ``ensure_both_classes`` the sample is rejected and re-drawn (with a
    shifted seed) until it contains at least one positive and one negative
    pair, mirroring the fact that an SVM cannot be trained on a single class.
    """
    keys = list(candidates.keys())
    if not keys:
        return []
    sample_size = min(sample_size, len(keys))
    truth = {canonical_pair(a, b) for a, b in ground_truth}
    for attempt in range(50):
        rng = random.Random(seed + attempt)
        sampled = rng.sample(keys, sample_size)
        labelled = [(key, key in truth) for key in sampled]
        positives = sum(1 for _, label in labelled if label)
        if not ensure_both_classes or 0 < positives < len(labelled):
            return labelled
    # Could not find both classes by sampling (e.g. no positives exist among
    # the candidates); return the last sample rather than looping forever.
    return labelled


def build_training_set(
    store: RecordStore,
    candidates: PairSet,
    ground_truth: FrozenSet[Tuple[str, str]],
    extractor: FeatureExtractor,
    sample_size: int = 500,
    seed: int = 0,
    balance: bool = True,
    minority_fraction: float = 0.25,
) -> TrainingSet:
    """Sample, label and featurise a training set in one step.

    ``balance`` oversamples the minority class (by repeating rows) up to
    ``minority_fraction`` of the training set.  Candidate sets for entity
    resolution are extremely imbalanced (a 500-pair random sample typically
    contains only a handful of true matches), and a stochastic-gradient SVM
    trained on the raw sample would all but ignore the positive class; the
    oversampling keeps the paper's sampling protocol while making the
    classifier trainable.
    """
    labelled = sample_training_pairs(candidates, ground_truth, sample_size, seed=seed)
    if balance and labelled:
        positives = [item for item in labelled if item[1]]
        negatives = [item for item in labelled if not item[1]]
        minority, majority = (
            (positives, negatives) if len(positives) <= len(negatives) else (negatives, positives)
        )
        if minority and len(minority) < minority_fraction * len(labelled):
            target = int(minority_fraction * len(majority) / (1 - minority_fraction))
            repeats = max(1, target // len(minority))
            labelled = majority + minority * repeats
            rng = random.Random(seed)
            rng.shuffle(labelled)
    pair_keys = [key for key, _ in labelled]
    labels = np.array([1 if label else 0 for _, label in labelled], dtype=int)
    features = extractor.extract_pairs(store, pair_keys)
    return TrainingSet(pair_keys=pair_keys, features=features, labels=labels)
