"""Linear soft-margin SVM trained with the Pegasos algorithm.

Pegasos (Shalev-Shwartz et al.) performs stochastic sub-gradient descent on
the primal L2-regularised hinge loss; for the low-dimensional feature
vectors used by entity resolution (2-8 similarity features) it converges in
a few thousand iterations and reproduces the ranking behaviour of an
off-the-shelf linear SVM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearSVM:
    """Binary linear SVM with hinge loss and L2 regularisation.

    Parameters
    ----------
    regularization:
        The lambda of the Pegasos objective; larger values mean a wider
        margin / stronger regularisation.
    iterations:
        Number of stochastic sub-gradient steps.
    seed:
        Seed of the sampling RNG, for reproducible training.
    fit_intercept:
        Whether to learn an (unregularised) bias term.
    """

    def __init__(
        self,
        regularization: float = 1e-3,
        iterations: int = 20_000,
        seed: int = 0,
        fit_intercept: bool = True,
    ) -> None:
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self.regularization = regularization
        self.iterations = iterations
        self.seed = seed
        self.fit_intercept = fit_intercept
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self.weights is not None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearSVM":
        """Train on a feature matrix and 0/1 (or +/-1) labels.

        Raises ``ValueError`` if only one class is present: a margin cannot
        be defined in that case and the caller should fall back to a
        similarity-threshold ranking instead.
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        signed = np.where(labels > 0, 1.0, -1.0)
        if len(np.unique(signed)) < 2:
            raise ValueError("training data must contain both classes")

        n_samples, n_features = features.shape
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(n_features)
        bias = 0.0
        for step in range(1, self.iterations + 1):
            index = int(rng.integers(0, n_samples))
            x = features[index]
            y = signed[index]
            learning_rate = 1.0 / (self.regularization * step)
            margin = y * (float(np.dot(weights, x)) + bias)
            weights *= 1.0 - learning_rate * self.regularization
            if margin < 1.0:
                weights += learning_rate * y * x
                if self.fit_intercept:
                    bias += learning_rate * y
            # Optional projection step of Pegasos keeps ||w|| bounded.
            norm = float(np.linalg.norm(weights))
            limit = 1.0 / np.sqrt(self.regularization)
            if norm > limit:
                weights *= limit / norm
        self.weights = weights
        self.bias = bias if self.fit_intercept else 0.0
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the separating hyperplane (ranking score)."""
        if not self.is_fitted:
            raise RuntimeError("LinearSVM must be fitted before scoring")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return features @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Binary 0/1 predictions."""
        return (self.decision_function(features) > 0).astype(int)

    def score_probability(self, features: np.ndarray) -> np.ndarray:
        """Squash decision values into (0, 1) with a logistic link.

        These are *not* calibrated probabilities; they are only used to rank
        pairs, which is all the precision-recall evaluation needs.
        """
        return 1.0 / (1.0 + np.exp(-self.decision_function(features)))
