"""Learning-based entity resolution (Section 2.1.2 and the SVM baseline).

The paper's strongest machine-only baseline trains an SVM on feature vectors
built from edit distance and cosine similarity per attribute, then ranks the
remaining pairs by classifier score.  Because no third-party ML library is
available offline, the classifiers here are implemented from scratch on
numpy: a linear SVM trained with Pegasos-style stochastic sub-gradient
descent and an L2-regularised logistic regression trained with batch
gradient descent.
"""

from repro.learning.svm import LinearSVM
from repro.learning.logistic import LogisticRegression
from repro.learning.training import TrainingSet, sample_training_pairs
from repro.learning.classifier_er import LearningBasedER

__all__ = [
    "LinearSVM",
    "LogisticRegression",
    "TrainingSet",
    "sample_training_pairs",
    "LearningBasedER",
]
