"""Span/trace runtime: nested timing spans and a JSONL trace-event sink.

A span is a ``with`` block around one pipeline phase::

    with obs.span("simjoin.vectorized.block", rows=512):
        ...

On exit the span records its duration into the shared ``span_seconds``
histogram (label ``span`` = the dotted span name) and, when a trace sink is
attached, appends one JSON line describing the span — name, wall-clock
timestamp, duration, nesting depth, parent span id, attributes, and the
exception type if the block raised. Exceptions always propagate; the span
still records.

The runtime is fork-aware: it remembers the PID that created it, and every
entry point no-ops in a forked child (the ``parallel`` join backend forks
worker processes — their copied runtime must not double-count or interleave
writes into the parent's trace file). Per-worker shard timings are measured
inside the workers with plain ``perf_counter`` and recorded by the parent.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, IO, Mapping, Optional

from .metrics import MetricsRegistry

#: Trace-file schema version, bumped on incompatible event changes.
TRACE_FORMAT_VERSION = 1

SPAN_HISTOGRAM = "span_seconds"
SPAN_HISTOGRAM_HELP = "Duration of instrumented pipeline spans, by span name."


class TraceSink:
    """Append-only JSONL writer for trace events (single process, locked)."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self.emit({"type": "trace_start", "version": TRACE_FORMAT_VERSION, "pid": os.getpid()})

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(json.dumps(event, separators=(",", ":"), sort_keys=True))
            self._handle.write("\n")

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class NoopSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class Span:
    """A live timing span; use via ``obs.span(...)`` as a context manager."""

    __slots__ = ("_runtime", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, runtime: "ObsRuntime", name: str, attrs: Mapping[str, Any]) -> None:
        self._runtime = runtime
        self.name = name
        self.attrs = dict(attrs)
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "Span":
        runtime = self._runtime
        stack = runtime._span_stack()
        self.span_id = next(runtime._span_ids)
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        seconds = time.perf_counter() - self._start
        stack = self._runtime._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._runtime.record_span(self, seconds, exc_type)
        return False


class ObsRuntime:
    """One process's metrics registry plus optional trace sink."""

    def __init__(self, trace_path: Optional[str] = None) -> None:
        self.registry = MetricsRegistry()
        self.sink: Optional[TraceSink] = TraceSink(trace_path) if trace_path else None
        self.pid = os.getpid()
        self._local = threading.local()
        self._span_ids = itertools.count(1)

    def live(self) -> bool:
        """False in forked children — their copy must stay inert."""
        return os.getpid() == self.pid

    def attach_sink(self, trace_path: str) -> None:
        if self.sink is None:
            self.sink = TraceSink(trace_path)

    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, attrs: Mapping[str, Any]) -> Span:
        return Span(self, name, attrs)

    def record_span(self, span: Span, seconds: float, exc_type) -> None:
        self.registry.histogram(SPAN_HISTOGRAM, SPAN_HISTOGRAM_HELP).observe(
            seconds, span=span.name
        )
        if exc_type is not None:
            self.registry.counter(
                "span_errors_total", "Spans that exited with an exception."
            ).inc(1, span=span.name)
        if self.sink is not None:
            event: Dict[str, Any] = {
                "type": "span",
                "name": span.name,
                "ts": time.time(),
                "seconds": seconds,
                "span_id": span.span_id,
                "depth": span.depth,
            }
            if span.parent_id is not None:
                event["parent_id"] = span.parent_id
            if span.attrs:
                event["attrs"] = span.attrs
            if exc_type is not None:
                event["error"] = exc_type.__name__
            self.sink.emit(event)

    def inc(self, name: str, value: float, labels: Mapping[str, Any], help: str = "") -> None:
        self.registry.counter(name, help).inc(value, **labels)
        if self.sink is not None:
            event: Dict[str, Any] = {"type": "counter", "name": name, "value": value}
            if labels:
                event["labels"] = {key: str(val) for key, val in labels.items()}
            self.sink.emit(event)

    def observe(self, name: str, value: float, labels: Mapping[str, Any], help: str = "") -> None:
        self.registry.histogram(name, help).observe(value, **labels)

    def set_gauge(self, name: str, value: float, labels: Mapping[str, Any], help: str = "") -> None:
        self.registry.gauge(name, help).set(value, **labels)
        if self.sink is not None:
            event: Dict[str, Any] = {"type": "gauge", "name": name, "value": value}
            if labels:
                event["labels"] = {key: str(val) for key, val in labels.items()}
            self.sink.emit(event)

    def close(self) -> None:
        """Flush a final metrics snapshot into the trace and close the sink."""
        if self.sink is not None:
            self.sink.emit({"type": "snapshot", "metrics": self.registry.snapshot().to_dict()})
            self.sink.close()
            self.sink = None
