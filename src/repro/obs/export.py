"""Prometheus text-format exporter and format validator.

:func:`to_prometheus` renders a :class:`~repro.obs.metrics.MetricsSnapshot`
in the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers, escaped label values, cumulative histogram buckets with
a ``+Inf`` bound plus ``_sum`` / ``_count`` series.

:func:`validate_prometheus_text` is a dependency-free lint of that format —
CI pipes every exported file through it (``python -m repro.obs.export
--check FILE``) so a malformed escape or an out-of-order ``# TYPE`` fails
the build rather than a scrape.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from typing import List, Optional, Sequence

from .metrics import MetricsSnapshot

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"$'
)
_VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict, extra: Optional[List[tuple]] = None) -> str:
    pairs = [(key, str(value)) for key, value in sorted(labels.items())]
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in pairs)
    return "{" + body + "}"


def to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in snapshot.metrics:
        name = metric["name"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        if metric["kind"] == "histogram":
            bounds = [_format_value(float(bound)) for bound in metric["buckets"]]
            for sample in metric["samples"]:
                cumulative = 0
                for bound, count in zip(bounds + ["+Inf"], sample["counts"]):
                    cumulative += count
                    labelstr = _format_labels(sample["labels"], extra=[("le", bound)])
                    lines.append(f"{name}_bucket{labelstr} {cumulative}")
                labelstr = _format_labels(sample["labels"])
                lines.append(f"{name}_sum{labelstr} {_format_value(sample['sum'])}")
                lines.append(f"{name}_count{labelstr} {sample['count']}")
        else:
            for sample in metric["samples"]:
                labelstr = _format_labels(sample["labels"])
                lines.append(f"{name}{labelstr} {_format_value(sample['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_value(raw: str) -> Optional[float]:
    if raw in ("+Inf", "Inf"):
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        return None


def _split_labels(body: str) -> Optional[List[str]]:
    """Split a label body on commas that are outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes or escaped:
        return None
    if current or parts:
        parts.append("".join(current))
    return parts


def validate_prometheus_text(text: str) -> List[str]:
    """Lint Prometheus text format; returns a list of error strings."""
    errors: List[str] = []
    declared_types: dict = {}
    sampled_names: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(" ", 3)
            if len(fields) >= 2 and fields[1] in ("HELP", "TYPE"):
                if len(fields) < 3 or not _NAME_RE.match(fields[2]):
                    errors.append(f"line {lineno}: malformed {fields[1]} comment")
                    continue
                if fields[1] == "TYPE":
                    name = fields[2]
                    kind = fields[3].strip() if len(fields) > 3 else ""
                    if kind not in _VALID_TYPES:
                        errors.append(f"line {lineno}: unknown metric type {kind!r}")
                    if name in declared_types:
                        errors.append(f"line {lineno}: duplicate TYPE for {name}")
                    if name in sampled_names:
                        errors.append(
                            f"line {lineno}: TYPE for {name} appears after its samples"
                        )
                    declared_types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparsable sample line: {line!r}")
            continue
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        sampled_names.add(base if base in declared_types else name)
        if _parse_value(match.group("value")) is None:
            errors.append(f"line {lineno}: invalid sample value {match.group('value')!r}")
        body = match.group("labels")
        if body is not None:
            parts = _split_labels(body)
            if parts is None:
                errors.append(f"line {lineno}: unterminated label quoting")
                continue
            for part in parts:
                if not _LABEL_PAIR_RE.match(part):
                    errors.append(f"line {lineno}: malformed label pair {part!r}")
    return errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a Prometheus text-format metrics file."
    )
    parser.add_argument("path", help="metrics file to check ('-' for stdin)")
    parser.add_argument(
        "--check", action="store_true",
        help="accepted for readability in CI scripts; validation always runs",
    )
    args = parser.parse_args(argv)
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    errors = validate_prometheus_text(text)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        return 1
    samples = sum(
        1 for line in text.splitlines() if line.strip() and not line.startswith("#")
    )
    print(f"OK: {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
