"""Per-session cost reports: HITs, votes, machine vs. crowd time split.

The paper's headline claims are cost claims, so this module turns raw
metrics into the numbers an operator actually asks for: how many HITs a
session issued, how many votes came back, what the simulated crowd cost,
and how the time divides between the machine pass (real wall-clock spent in
instrumented spans) and the simulated crowd (worker-seconds and round-trip
latency from the latency model).

A report can be built from three sources (the CLI ``repro stats`` command
accepts all three):

* :meth:`CostReport.from_snapshot` — a live :class:`~repro.obs.metrics.MetricsSnapshot`;
* :meth:`CostReport.from_store` — a SQLite session store (works even for
  runs without ``metrics_enabled``: the session meta and vote ledger are
  enough for the crowd-side numbers, machine timings are just absent);
* :meth:`CostReport.from_trace` — a JSONL trace file written via
  ``WorkflowConfig.trace_path``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .metrics import MetricsSnapshot

#: Top-level (never-nested) span names; their histogram totals sum to the
#: real wall-clock the machine spent resolving, without double-counting the
#: sub-spans nested inside them.
MACHINE_ROOT_SPANS = (
    "workflow.resolve",
    "streaming.batch",
    "streaming.retract",
    "streaming.flush",
    "streaming.restore",
)


@dataclass
class CostReport:
    """One session's cost accounting, ready to render or serialise."""

    source: str = ""
    hits_issued: int = 0
    assignments: int = 0
    votes: int = 0
    crowd_cost_dollars: float = 0.0
    #: Simulated worker-seconds (sum of per-assignment durations).
    crowd_work_seconds: float = 0.0
    #: Simulated end-to-end crowd latency in minutes (latency-model output).
    crowd_elapsed_minutes: float = 0.0
    #: Async crowd robustness numbers (all zero for synchronous runs).
    crowd_retries: int = 0
    crowd_timeouts: int = 0
    crowd_reissued: int = 0
    crowd_duplicates_dropped: int = 0
    #: Real wall-clock seconds spent inside top-level machine spans; None
    #: when the run had no metrics (e.g. a store written without
    #: ``metrics_enabled``).
    machine_seconds: Optional[float] = None
    #: Per-span ``(calls, total_seconds)`` breakdown, all spans.
    phase_seconds: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    #: Streaming counters of record (``streaming_*`` totals).
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "hits_issued": self.hits_issued,
            "assignments": self.assignments,
            "votes": self.votes,
            "crowd_cost_dollars": self.crowd_cost_dollars,
            "crowd_work_seconds": self.crowd_work_seconds,
            "crowd_elapsed_minutes": self.crowd_elapsed_minutes,
            "crowd_retries": self.crowd_retries,
            "crowd_timeouts": self.crowd_timeouts,
            "crowd_reissued": self.crowd_reissued,
            "crowd_duplicates_dropped": self.crowd_duplicates_dropped,
            "machine_seconds": self.machine_seconds,
            "phase_seconds": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in sorted(self.phase_seconds.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    # ------------------------------------------------------------- builders
    @classmethod
    def from_snapshot(
        cls,
        snapshot: MetricsSnapshot,
        source: str = "snapshot",
        session_meta: Optional[Mapping] = None,
    ) -> "CostReport":
        report = cls(source=source)
        report.hits_issued = int(snapshot.counter_total("hits_issued_total"))
        report.assignments = int(snapshot.counter_total("crowd_assignments_total"))
        report.votes = int(snapshot.counter_total("crowd_votes_total"))
        report.crowd_cost_dollars = snapshot.counter_total("crowd_cost_dollars_total")
        report.crowd_work_seconds = snapshot.counter_total("crowd_work_seconds_total")
        report.crowd_elapsed_minutes = snapshot.counter_total("crowd_elapsed_minutes_total")
        report.crowd_retries = int(snapshot.counter_total("crowd_retries_total"))
        report.crowd_timeouts = int(snapshot.counter_total("crowd_timeouts_total"))
        report.crowd_reissued = int(snapshot.counter_total("crowd_reissued_total"))
        report.crowd_duplicates_dropped = int(
            snapshot.counter_total("crowd_duplicates_dropped_total")
        )
        spans = snapshot.get("span_seconds")
        machine = 0.0
        if spans is not None:
            for sample in spans["samples"]:
                name = sample["labels"].get("span", "")
                calls, seconds = report.phase_seconds.get(name, (0, 0.0))
                report.phase_seconds[name] = (
                    calls + sample["count"], seconds + sample["sum"]
                )
            machine = sum(
                seconds
                for name, (_, seconds) in report.phase_seconds.items()
                if name in MACHINE_ROOT_SPANS
            )
        report.machine_seconds = machine if report.phase_seconds else None
        for metric in snapshot.metrics:
            if metric["kind"] == "counter" and metric["name"].startswith("streaming_"):
                report.counters[metric["name"]] = sum(
                    sample["value"] for sample in metric["samples"]
                )
        if session_meta:
            report._fold_session_meta(session_meta)
        return report

    def _fold_session_meta(self, meta: Mapping) -> None:
        """Fill crowd-side numbers the snapshot lacks from session meta."""
        if not self.hits_issued:
            self.hits_issued = int(meta.get("hit_count", 0))
        if not self.crowd_cost_dollars:
            self.crowd_cost_dollars = float(meta.get("cost", 0.0))

    @classmethod
    def from_store(cls, path: str) -> "CostReport":
        """Build from a SQLite session store file (``store.sqlite``)."""
        from repro.storage.sqlite import SqliteStore

        store = SqliteStore(path)
        try:
            if store.get_meta("version") is None:
                raise ValueError(f"{path} does not hold a resolution session")
            session_meta = store.get_meta("session") or {}
            async_meta = store.get_meta("async") or {}
            metrics_payload = store.get_meta("metrics")
            assignment_seconds = store.load_assignment_seconds()
            ledger_votes = sum(len(votes) for votes in store.ledger.votes.values())
        finally:
            store.close()
        if metrics_payload is not None:
            report = cls.from_snapshot(
                MetricsSnapshot.from_dict(metrics_payload),
                source=f"store {path}",
                session_meta=session_meta,
            )
        else:
            report = cls(source=f"store {path}")
            report.hits_issued = int(session_meta.get("hit_count", 0))
            report.crowd_cost_dollars = float(session_meta.get("cost", 0.0))
        if not report.assignments:
            report.assignments = len(assignment_seconds)
        if not report.votes:
            report.votes = ledger_votes
        if not report.crowd_work_seconds:
            report.crowd_work_seconds = float(sum(assignment_seconds))
        # Async robustness counters live in the mirrored platform state, so
        # they survive runs without metrics_enabled too.
        platform_state = async_meta.get("platform") or {}
        if not report.crowd_retries:
            report.crowd_retries = int(platform_state.get("retries", 0))
        if not report.crowd_timeouts:
            report.crowd_timeouts = int(platform_state.get("timeouts", 0))
        if not report.crowd_reissued:
            report.crowd_reissued = int(platform_state.get("reissued", 0))
        if not report.crowd_duplicates_dropped:
            report.crowd_duplicates_dropped = int(
                platform_state.get("duplicates_dropped", 0)
            )
        return report

    @classmethod
    def from_trace(cls, path: str) -> "CostReport":
        """Build from a JSONL trace file (``WorkflowConfig.trace_path``).

        Prefers the final ``snapshot`` event a clean ``obs.deactivate()``
        appends; a truncated trace (crash, still-running session) falls
        back to replaying the counter and span events seen so far.
        """
        snapshot_payload: Optional[dict] = None
        counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
        spans: Dict[str, Tuple[int, float]] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                kind = event.get("type")
                if kind == "snapshot":
                    snapshot_payload = event["metrics"]
                elif kind == "counter":
                    labels = tuple(sorted((event.get("labels") or {}).items()))
                    key = (event["name"], labels)
                    counters[key] = counters.get(key, 0.0) + event["value"]
                elif kind == "span":
                    calls, seconds = spans.get(event["name"], (0, 0.0))
                    spans[event["name"]] = (calls + 1, seconds + event["seconds"])
        if snapshot_payload is not None:
            return cls.from_snapshot(
                MetricsSnapshot.from_dict(snapshot_payload), source=f"trace {path}"
            )
        report = cls(source=f"trace {path} (no final snapshot; replayed events)")

        def total(name: str) -> float:
            return sum(value for (key, _), value in counters.items() if key == name)

        report.hits_issued = int(total("hits_issued_total"))
        report.assignments = int(total("crowd_assignments_total"))
        report.votes = int(total("crowd_votes_total"))
        report.crowd_cost_dollars = total("crowd_cost_dollars_total")
        report.crowd_work_seconds = total("crowd_work_seconds_total")
        report.crowd_elapsed_minutes = total("crowd_elapsed_minutes_total")
        report.crowd_retries = int(total("crowd_retries_total"))
        report.crowd_timeouts = int(total("crowd_timeouts_total"))
        report.crowd_reissued = int(total("crowd_reissued_total"))
        report.crowd_duplicates_dropped = int(total("crowd_duplicates_dropped_total"))
        report.phase_seconds = spans
        report.machine_seconds = (
            sum(
                seconds
                for name, (_, seconds) in spans.items()
                if name in MACHINE_ROOT_SPANS
            )
            if spans
            else None
        )
        report.counters = {
            name: value
            for (name, _), value in sorted(counters.items())
            if name.startswith("streaming_")
        }
        return report

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        lines: List[str] = [f"Session cost report — {self.source}"]
        lines.append(f"  HITs issued            : {self.hits_issued}")
        lines.append(f"  assignments            : {self.assignments}")
        lines.append(f"  votes collected        : {self.votes}")
        lines.append(f"  crowd cost             : ${self.crowd_cost_dollars:.2f}")
        lines.append(
            f"  crowd work (simulated) : {self.crowd_work_seconds:.1f} worker-seconds"
        )
        if self.crowd_elapsed_minutes:
            lines.append(
                f"  crowd latency (simulated): {self.crowd_elapsed_minutes:.1f} min"
            )
        if self.crowd_retries or self.crowd_timeouts or self.crowd_reissued:
            # Reissues cost real money — their assignments are already part
            # of the crowd cost above; this line shows where it went.
            lines.append(
                f"  async robustness       : {self.crowd_timeouts} timeouts, "
                f"{self.crowd_retries} retries, {self.crowd_reissued} reissued, "
                f"{self.crowd_duplicates_dropped} duplicates dropped"
            )
        if self.machine_seconds is None:
            lines.append("  machine time           : n/a (run without metrics_enabled)")
        else:
            lines.append(f"  machine time           : {self.machine_seconds:.3f} s")
            simulated = self.crowd_work_seconds
            total_time = self.machine_seconds + simulated
            if total_time > 0:
                machine_pct = 100.0 * self.machine_seconds / total_time
                lines.append(
                    f"  machine vs crowd split : {machine_pct:.1f}% machine / "
                    f"{100.0 - machine_pct:.1f}% crowd (of "
                    f"{total_time:.1f} combined seconds)"
                )
        if self.counters:
            lines.append("  streaming counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<42} {value:g}")
        if self.phase_seconds:
            lines.append("  phase timings (wall-clock):")
            ranked = sorted(
                self.phase_seconds.items(), key=lambda item: -item[1][1]
            )
            for name, (calls, seconds) in ranked:
                lines.append(
                    f"    {name:<34} {seconds:9.4f} s over {calls} span(s)"
                )
        return "\n".join(lines)
