"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is deliberately tiny — three metric kinds, label support, and
an immutable :class:`MetricsSnapshot` view that serialises straight to JSON
(``to_dict``) or Prometheus text format (:func:`repro.obs.export.to_prometheus`).
Everything is process-local and thread-safe under a single registry lock;
there is no push gateway, no background thread, no third-party dependency.

Metric names follow Prometheus conventions (``[a-zA-Z_:][a-zA-Z0-9_:]*``,
counters end in ``_total`` or a unit suffix). Span durations land in the
shared ``span_seconds`` histogram with a ``span`` label carrying the dotted
span name (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds, in seconds. Chosen for the spans
#: this codebase actually has: sub-millisecond journal appends up to
#: multi-second full resolves. ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable form of a label mapping (sorted, stringified)."""
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name: {key!r}")
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class _Metric:
    """Common behaviour: a name, a help string, per-label-set samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._lock = lock
        self._samples: Dict[LabelKey, float] = {}

    def _snapshot_samples(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._samples.items())
        ]

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "samples": self._snapshot_samples(),
        }


class Counter(_Metric):
    """Monotonically increasing value, e.g. ``hits_issued_total``."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value


class Gauge(_Metric):
    """Point-in-time value that may go up or down."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def add(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + value


class Histogram(_Metric):
    """Distribution over fixed bucket boundaries (cumulative at export)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted and unique")
        self.buckets = bounds
        # per label set: [per-bucket counts incl. +Inf overflow, sum, count]
        self._series: Dict[LabelKey, List] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            series[0][index] += 1
            series[1] += value
            series[2] += 1

    def _snapshot(self) -> dict:
        samples = [
            {
                "labels": dict(key),
                "counts": list(series[0]),
                "sum": series[1],
                "count": series[2],
            }
            for key, series in sorted(self._series.items())
        ]
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "samples": samples,
        }


class MetricsRegistry:
    """Create-or-get factory for metrics plus atomic snapshotting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, name: str, factory) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, lambda: Counter(name, help, self._lock))
        if not isinstance(metric, Counter):
            raise ValueError(f"{name} already registered as {metric.kind}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get(name, lambda: Gauge(name, help, self._lock))
        if not isinstance(metric, Gauge):
            raise ValueError(f"{name} already registered as {metric.kind}")
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get(name, lambda: Histogram(name, help, self._lock, buckets))
        if not isinstance(metric, Histogram):
            raise ValueError(f"{name} already registered as {metric.kind}")
        return metric

    def snapshot(self) -> "MetricsSnapshot":
        with self._lock:
            metrics = list(self._metrics.values())
        return MetricsSnapshot([metric._snapshot() for metric in metrics])

    def merge_snapshot(self, snapshot: "MetricsSnapshot") -> None:
        """Fold a previously exported snapshot into the live registry.

        Counters accumulate, gauges take the snapshot value, histogram
        series add elementwise.  Used by session restore so that counters
        mirrored into a store before a restart keep counting from where
        they left off instead of restarting at zero.  Metrics whose kind
        (or histogram bucket layout) conflicts with an already-registered
        one are skipped rather than corrupted.
        """
        for metric in snapshot.metrics:
            name, kind = metric["name"], metric["kind"]
            try:
                if kind == "counter":
                    target = self.counter(name, metric.get("help", ""))
                    for sample in metric["samples"]:
                        target.inc(sample["value"], **sample["labels"])
                elif kind == "gauge":
                    target = self.gauge(name, metric.get("help", ""))
                    for sample in metric["samples"]:
                        target.set(sample["value"], **sample["labels"])
                elif kind == "histogram":
                    target = self.histogram(
                        name, metric.get("help", ""), metric["buckets"]
                    )
                    if tuple(target.buckets) != tuple(
                        float(b) for b in metric["buckets"]
                    ):
                        continue
                    for sample in metric["samples"]:
                        key = _label_key(sample["labels"])
                        with self._lock:
                            series = target._series.get(key)
                            if series is None:
                                series = [[0] * (len(target.buckets) + 1), 0.0, 0]
                                target._series[key] = series
                            for index, count in enumerate(sample["counts"]):
                                series[0][index] += count
                            series[1] += sample["sum"]
                            series[2] += sample["count"]
            except ValueError:
                continue


def _labels_match(sample_labels: Mapping[str, str], wanted: Mapping[str, object]) -> bool:
    return all(sample_labels.get(key) == str(value) for key, value in wanted.items())


class MetricsSnapshot:
    """Immutable, JSON-ready view of a registry at one instant."""

    def __init__(self, metrics: List[dict]) -> None:
        self.metrics = metrics

    def to_dict(self) -> dict:
        return {"metrics": self.metrics}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsSnapshot":
        return cls(list(payload.get("metrics", [])))

    def get(self, name: str) -> Optional[dict]:
        for metric in self.metrics:
            if metric["name"] == name:
                return metric
        return None

    def counter_total(self, name: str, **labels: object) -> float:
        """Sum of a counter's samples whose labels match ``labels``."""
        metric = self.get(name)
        if metric is None or metric["kind"] != "counter":
            return 0.0
        return sum(
            sample["value"]
            for sample in metric["samples"]
            if _labels_match(sample["labels"], labels)
        )

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        metric = self.get(name)
        if metric is None or metric["kind"] != "gauge":
            return None
        for sample in metric["samples"]:
            if _labels_match(sample["labels"], labels):
                return sample["value"]
        return None

    def histogram_sum(self, name: str, **labels: object) -> float:
        metric = self.get(name)
        if metric is None or metric["kind"] != "histogram":
            return 0.0
        return sum(
            sample["sum"]
            for sample in metric["samples"]
            if _labels_match(sample["labels"], labels)
        )

    def histogram_count(self, name: str, **labels: object) -> int:
        metric = self.get(name)
        if metric is None or metric["kind"] != "histogram":
            return 0
        return sum(
            sample["count"]
            for sample in metric["samples"]
            if _labels_match(sample["labels"], labels)
        )
