"""``repro.obs`` — metrics, tracing and cost accounting for the pipeline.

The module-level API is the whole integration surface; instrumented code
does::

    from repro import obs

    obs.inc("hits_issued_total", batch.hit_count)
    with obs.span("streaming.batch.join", batch=event_id):
        ...

Observability is **off by default**: until :func:`activate` is called every
entry point returns immediately after one ``None`` check, and ``span``
returns a shared no-op context manager, so instrumented hot paths cost
nothing measurable when disabled (the CI gate holds ``bench_streaming``
regression under 2%). Activation is process-global — one registry, one
optional JSONL trace sink — and fork-aware: worker processes forked by the
``parallel`` join backend inherit an inert copy that never double-counts.

Activate explicitly, or set ``WorkflowConfig.metrics_enabled=True`` /
``WorkflowConfig.trace_path`` and let :class:`~repro.core.workflow.HybridWorkflow`
and :class:`~repro.streaming.session.StreamingResolver` do it for you.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from .trace import NOOP_SPAN, NoopSpan, ObsRuntime, Span, TraceSink
from .export import to_prometheus, validate_prometheus_text
from .report import CostReport

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NoopSpan",
    "ObsRuntime",
    "Span",
    "TraceSink",
    "CostReport",
    "to_prometheus",
    "validate_prometheus_text",
    "activate",
    "activate_if_configured",
    "deactivate",
    "enabled",
    "runtime",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "merge_snapshot",
]

_runtime: Optional[ObsRuntime] = None


def activate(trace_path: Optional[str] = None) -> ObsRuntime:
    """Turn observability on for this process (idempotent).

    Creates the global runtime if absent; if one is already live, a
    ``trace_path`` attaches a sink only when none is attached yet. A runtime
    inherited across a ``fork`` is dead in the child and gets replaced.
    """
    global _runtime
    if _runtime is None or not _runtime.live():
        _runtime = ObsRuntime(trace_path)
    elif trace_path is not None:
        _runtime.attach_sink(trace_path)
    return _runtime


def activate_if_configured(config) -> bool:
    """Activate when a :class:`~repro.core.config.WorkflowConfig` asks.

    ``metrics_enabled=True`` or a ``trace_path`` turns the runtime on;
    otherwise this is a no-op and returns ``False``. Called by
    ``HybridWorkflow`` and ``StreamingResolver`` so config-driven runs need
    no explicit ``obs.activate()``.
    """
    trace_path = getattr(config, "trace_path", None)
    if getattr(config, "metrics_enabled", False) or trace_path:
        activate(trace_path=trace_path)
        return True
    return False


def deactivate() -> Optional[ObsRuntime]:
    """Turn observability off; flushes and closes the trace sink if any.

    Returns the retired runtime so callers can still read its final
    registry state (``deactivate().registry.snapshot()``).
    """
    global _runtime
    retired = _runtime
    _runtime = None
    if retired is not None and retired.live():
        retired.close()
    return retired


def enabled() -> bool:
    runtime_ = _runtime
    return runtime_ is not None and runtime_.live()


def runtime() -> Optional[ObsRuntime]:
    runtime_ = _runtime
    if runtime_ is not None and runtime_.live():
        return runtime_
    return None


def span(name: str, **attrs: Any) -> Union[Span, NoopSpan]:
    """Timing span context manager; no-op singleton while disabled."""
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live():
        return NOOP_SPAN
    return runtime_.span(name, attrs)


def inc(name: str, value: float = 1.0, help: str = "", **labels: Any) -> None:
    """Increment counter ``name`` (created on first use)."""
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live():
        return
    runtime_.inc(name, value, labels, help)


def observe(name: str, value: float, help: str = "", **labels: Any) -> None:
    """Record ``value`` into histogram ``name`` (default buckets)."""
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live():
        return
    runtime_.observe(name, value, labels, help)


def set_gauge(name: str, value: float, help: str = "", **labels: Any) -> None:
    """Set gauge ``name`` to ``value``."""
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live():
        return
    runtime_.set_gauge(name, value, labels, help)


def snapshot() -> Optional[MetricsSnapshot]:
    """Snapshot the live registry, or ``None`` while disabled."""
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live():
        return None
    return runtime_.registry.snapshot()


def merge_snapshot(payload: Optional[dict]) -> bool:
    """Fold a stored snapshot dict into the live registry (restore path).

    Session restore passes the ``metrics`` meta a durable store mirrored
    before shutdown, so cumulative counters survive process restarts.
    No-op (returns ``False``) while disabled or for empty payloads.
    """
    runtime_ = _runtime
    if runtime_ is None or not runtime_.live() or not payload:
        return False
    runtime_.registry.merge_snapshot(MetricsSnapshot.from_dict(payload))
    return True
