"""Common interface for cluster-based HIT generators plus a registry.

Every cluster-based generator (Random, BFS, DFS, Approximation, Two-tiered)
takes a :class:`~repro.records.pairs.PairSet` and a cluster-size threshold
``k`` and returns a :class:`~repro.hit.base.HITBatch` of
:class:`~repro.hit.base.ClusterBasedHIT` objects satisfying Definition 1 of
the paper.  The registry lets the benchmark harness iterate over all
algorithms by name, exactly as the paper's Figures 10 and 11 do.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro import obs
from repro.hit.base import ClusterBasedHIT, HITBatch
from repro.records.pairs import PairSet


class ClusterHITGenerator:
    """Base class for cluster-based HIT generation algorithms."""

    name = "cluster-generator"

    def __init__(self, cluster_size: int) -> None:
        if cluster_size < 2:
            raise ValueError("cluster_size must be at least 2 (a HIT must fit one pair)")
        self.cluster_size = cluster_size

    def generate(self, pairs: PairSet) -> HITBatch:
        """Generate the cluster-based HIT batch for the candidate pairs."""
        with obs.span("hit.cluster", generator=self.name, pairs=len(pairs)):
            clusters = self._clusters(pairs)
        hits = [
            ClusterBasedHIT(hit_id=f"{self.name}-hit-{index + 1}", records=tuple(cluster))
            for index, cluster in enumerate(clusters)
        ]
        if obs.enabled():
            obs.inc("hit_pairs_packed_total", len(pairs), generator=self.name,
                    help="Candidate pairs packed into generated HITs.")
            obs.inc("hits_generated_total", len(hits), generator=self.name,
                    help="HITs produced by the generators.")
        return HITBatch(
            hit_type="cluster",
            hits=list(hits),
            candidate_pairs=set(pairs.keys()),
            generator_name=self.name,
            cluster_size=self.cluster_size,
        )

    def _clusters(self, pairs: PairSet) -> List[Sequence[str]]:
        """Return the record groups; subclasses implement the algorithm."""
        raise NotImplementedError


_REGISTRY: Dict[str, Callable[..., ClusterHITGenerator]] = {}


def register_generator(name: str) -> Callable[[type], type]:
    """Class decorator registering a generator under ``name``."""

    def decorator(cls: type) -> type:
        _REGISTRY[name] = cls
        return cls

    return decorator


def get_cluster_generator(name: str, cluster_size: int, **kwargs) -> ClusterHITGenerator:
    """Instantiate a registered generator by name.

    Known names: ``random``, ``bfs``, ``dfs``, ``approximation``,
    ``two-tiered``.
    """
    # Import implementations lazily so the registry is populated without
    # creating circular imports at module load time.
    from repro.hit import approximation, cluster_baselines, two_tiered  # noqa: F401

    if name not in _REGISTRY:
        raise KeyError(f"unknown cluster generator {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name](cluster_size=cluster_size, **kwargs)


def available_generators() -> List[str]:
    """Names of all registered cluster generators."""
    from repro.hit import approximation, cluster_baselines, two_tiered  # noqa: F401

    return sorted(_REGISTRY)
