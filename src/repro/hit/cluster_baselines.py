"""Baseline cluster-based HIT generators: Random, BFS-based and DFS-based.

These are the baseline algorithms of Section 7.2:

* **Random** — repeatedly pick pairs from ``P`` (in random order) and merge
  their records into the current HIT; when the HIT holds ``k`` records it is
  emitted and the pairs it covers are dropped.
* **BFS-based / DFS-based** — build the pair graph and add records to HITs
  in breadth-first / depth-first traversal order; each HIT of ``k`` records
  is emitted and the edges it covers are removed, until no edge remains.

All three guarantee a valid cover (every candidate pair ends up inside at
least one HIT of size at most ``k``); they only differ in how many HITs they
need, which is exactly what Figures 10 and 11 of the paper compare.
"""

from __future__ import annotations

import random
from collections import deque
from itertools import combinations
from typing import List, Sequence, Set, Tuple

from repro.graph.graph import Graph
from repro.hit.generator import ClusterHITGenerator, register_generator
from repro.records.pairs import PairSet, canonical_pair


@register_generator("random")
class RandomClusterGenerator(ClusterHITGenerator):
    """The naive random algorithm of Section 7.2."""

    name = "random"

    def __init__(self, cluster_size: int, seed: int = 0) -> None:
        super().__init__(cluster_size)
        self.seed = seed

    def _clusters(self, pairs: PairSet) -> List[Sequence[str]]:
        rng = random.Random(self.seed)
        order = list(pairs.keys())
        rng.shuffle(order)
        remaining: Set[Tuple[str, str]] = set(order)

        clusters: List[List[str]] = []
        cluster: List[str] = []
        members: Set[str] = set()

        def flush() -> None:
            if len(cluster) < 2:
                return
            covered = {
                canonical_pair(a, b)
                for a, b in combinations(sorted(members), 2)
                if canonical_pair(a, b) in remaining
            }
            remaining.difference_update(covered)
            clusters.append(list(cluster))

        for key in order:
            if key not in remaining:
                continue
            id_a, id_b = key
            new_members = [rid for rid in (id_a, id_b) if rid not in members]
            if len(cluster) + len(new_members) > self.cluster_size:
                flush()
                cluster = []
                members = set()
                new_members = [id_a, id_b]
            for rid in new_members:
                cluster.append(rid)
                members.add(rid)
            if len(cluster) >= self.cluster_size:
                flush()
                cluster = []
                members = set()
        flush()

        # A final sweep guarantees cover even for pairs skipped above
        # (possible when a pair's records were split across flushed HITs).
        leftovers = sorted(remaining)
        for key in leftovers:
            if key not in remaining:
                continue
            clusters.append([key[0], key[1]])
            remaining.discard(key)
        return clusters


class _TraversalClusterGenerator(ClusterHITGenerator):
    """Shared implementation for BFS-based and DFS-based generation.

    Following Section 7.2: to generate one cluster-based HIT the algorithm
    traverses the remaining graph (from the first vertex that still has
    edges, in insertion order) and adds records to the HIT in traversal
    order until it holds ``k`` records; the HIT is emitted, the edges it
    covers are removed, and the process repeats until no edge remains.  When
    a connected component is exhausted before the HIT is full, the traversal
    restarts from the next vertex that still has edges (exactly like a full
    graph traversal would), so small components get batched together.  The
    traversal is truncated after ``k`` vertices, so each HIT costs only
    O(k * degree) work.
    """

    def _partial_traversal(
        self, graph: Graph, starts: List[str], start_position: int, limit: int
    ) -> List[str]:
        """Collect up to ``limit`` vertices in traversal order.

        ``starts`` is the static insertion-order vertex list and
        ``start_position`` the index of the first candidate start; when the
        current connected component is exhausted the traversal restarts from
        the next start candidate that still has edges.
        """
        raise NotImplementedError

    def _clusters(self, pairs: PairSet) -> List[Sequence[str]]:
        graph = Graph.from_pair_set(pairs)
        vertices = graph.vertices()
        clusters: List[List[str]] = []
        start_index = 0
        while graph.edge_count > 0:
            # Advance to the next start vertex that still has uncovered edges.
            while start_index < len(vertices):
                vertex = vertices[start_index]
                if graph.has_vertex(vertex) and graph.degree(vertex) > 0:
                    break
                start_index += 1
            if start_index >= len(vertices):
                # All insertion-order starts exhausted but edges remain
                # (cannot happen: an edge keeps both endpoints non-isolated);
                # cover one edge directly as a defensive fallback.
                u, v = next(iter(graph.edges()))
                graph.remove_edge(u, v)
                clusters.append([u, v])
                continue
            cluster = self._partial_traversal(graph, vertices, start_index, self.cluster_size)
            removed = graph.remove_edges_within(cluster)
            if removed == 0:  # pragma: no cover - defensive
                u, v = next(iter(graph.edges()))
                graph.remove_edge(u, v)
                cluster = [u, v]
            clusters.append(list(cluster))
            for vertex in cluster:
                if graph.has_vertex(vertex) and graph.degree(vertex) == 0:
                    graph.remove_vertex(vertex)
        return clusters


@register_generator("bfs")
class BFSClusterGenerator(_TraversalClusterGenerator):
    """BFS-based baseline: fill HITs in breadth-first traversal order."""

    name = "bfs"

    def _partial_traversal(
        self, graph: Graph, starts: List[str], start_position: int, limit: int
    ) -> List[str]:
        order: List[str] = []
        visited = set()
        queue: deque = deque()
        position = start_position
        while len(order) < limit:
            if not queue:
                # Current component exhausted: restart from the next vertex
                # (in insertion order) that still has uncovered edges.
                while position < len(starts):
                    candidate = starts[position]
                    position += 1
                    if (
                        candidate not in visited
                        and graph.has_vertex(candidate)
                        and graph.degree(candidate) > 0
                    ):
                        visited.add(candidate)
                        queue.append(candidate)
                        break
                else:
                    break
            vertex = queue.popleft()
            order.append(vertex)
            if len(order) == limit:
                break
            for neighbour in graph.neighbors(vertex):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)
        return order


@register_generator("dfs")
class DFSClusterGenerator(_TraversalClusterGenerator):
    """DFS-based baseline: fill HITs in depth-first traversal order."""

    name = "dfs"

    def _partial_traversal(
        self, graph: Graph, starts: List[str], start_position: int, limit: int
    ) -> List[str]:
        order: List[str] = []
        visited = set()
        stack: List[str] = []
        position = start_position
        while len(order) < limit:
            if not stack:
                while position < len(starts):
                    candidate = starts[position]
                    position += 1
                    if (
                        candidate not in visited
                        and graph.has_vertex(candidate)
                        and graph.degree(candidate) > 0
                    ):
                        stack.append(candidate)
                        break
                else:
                    break
            vertex = stack.pop()
            if vertex in visited:
                continue
            visited.add(vertex)
            order.append(vertex)
            if len(order) == limit:
                break
            for neighbour in reversed(graph.neighbors(vertex)):
                if neighbour not in visited:
                    stack.append(neighbour)
        return order
