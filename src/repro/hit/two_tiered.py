"""The two-tiered cluster-based HIT generation approach (Algorithm 1).

1. Build the pair graph and split its connected components into small (SCC,
   at most ``k`` vertices) and large (LCC, more than ``k`` vertices).
2. **Top tier**: partition every LCC into highly-connected SCCs
   (:mod:`repro.hit.partitioning`).
3. **Bottom tier**: pack all SCCs into cluster-based HITs of capacity ``k``
   (:mod:`repro.hit.packing`).

This is the paper's main algorithm; Figures 10 and 11 show it generating the
fewest HITs of all evaluated approaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.graph.components import split_components_with_labels
from repro.graph.graph import Graph
from repro.hit.generator import ClusterHITGenerator, register_generator
from repro.hit.packing import pack_components
from repro.hit.partitioning import partition_all
from repro.records.pairs import PairSet


@dataclass
class TwoTieredStats:
    """Diagnostics of one two-tiered run (used by tests and ablations)."""

    small_components: int = 0
    large_components: int = 0
    partitioned_sccs: int = 0
    packed_hits: int = 0
    component_sizes: List[int] = field(default_factory=list)
    #: vertex -> component id from the single component traversal; lets
    #: callers (ablations, the streaming resolver) group per-record data by
    #: component without re-running a BFS over the pair graph.
    vertex_component: Dict[str, int] = field(default_factory=dict)


@register_generator("two-tiered")
class TwoTieredClusterGenerator(ClusterHITGenerator):
    """The paper's two-tiered heuristic (Algorithm 1).

    Parameters
    ----------
    cluster_size:
        The cluster-size threshold ``k``.
    packing_method:
        Bottom-tier solver: ``"column-generation"`` (the paper's choice),
        ``"branch-and-bound"`` or ``"ffd"``.
    tie_break:
        Top-tier tie-breaking rule (see
        :func:`repro.hit.partitioning.partition_large_component`).
    """

    name = "two-tiered"

    def __init__(
        self,
        cluster_size: int,
        packing_method: str = "column-generation",
        tie_break: str = "min-outdegree",
    ) -> None:
        super().__init__(cluster_size)
        self.packing_method = packing_method
        self.tie_break = tie_break
        self.last_stats: Optional[TwoTieredStats] = None

    def _clusters(self, pairs: PairSet) -> List[Sequence[str]]:
        graph = Graph.from_pair_set(pairs)
        small, large, labels = split_components_with_labels(graph, self.cluster_size)

        stats = TwoTieredStats(
            small_components=len(small),
            large_components=len(large),
            component_sizes=[len(component) for component in small + large],
            vertex_component=labels,
        )

        # Top tier: partition every large connected component.
        partitioned = partition_all(graph, large, self.cluster_size, tie_break=self.tie_break)
        stats.partitioned_sccs = len(partitioned)

        # Bottom tier: pack all small components (original + partitioned).
        all_small = [list(component) for component in small] + partitioned
        hit_groups = pack_components(all_small, self.cluster_size, method=self.packing_method)
        stats.packed_hits = len(hit_groups)
        self.last_stats = stats
        return hit_groups
