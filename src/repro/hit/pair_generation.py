"""Pair-based HIT generation (Section 3.1).

Generating pair-based HITs is straightforward: given a set of pairs ``P``
and a per-HIT capacity ``k`` pairs, produce ``ceil(|P| / k)`` HITs.  Pairs
are batched in descending likelihood order by default so that the most
promising verifications are published first (useful when a budget cuts the
run short), with an option to keep the original insertion order.

The ranking runs on the columnar substrate: the pair set materializes as a
key list plus a dense likelihood array (:meth:`~repro.records.pairs.PairSet.to_arrays`)
and one stable vectorized argsort
(:func:`~repro.simjoin.columnar.argsort_descending`) replaces the
per-object comparison sort — same order, array-speed, which matters when a
large dirty region is re-batched in one streaming event.
"""

from __future__ import annotations

import math
from typing import List

from repro import obs
from repro.hit.base import HITBatch, PairBasedHIT
from repro.records.pairs import PairSet
from repro.simjoin.columnar import argsort_descending


class PairHITGenerator:
    """Chunk a pair set into pair-based HITs of at most ``pairs_per_hit`` pairs."""

    name = "pair-based"

    def __init__(self, pairs_per_hit: int, order_by_likelihood: bool = True) -> None:
        if pairs_per_hit < 1:
            raise ValueError("pairs_per_hit must be at least 1")
        self.pairs_per_hit = pairs_per_hit
        self.order_by_likelihood = order_by_likelihood

    def expected_hit_count(self, pair_count: int) -> int:
        """ceil(|P| / k): the number of HITs the generator will produce."""
        if pair_count <= 0:
            return 0
        return math.ceil(pair_count / self.pairs_per_hit)

    def generate(self, pairs: PairSet) -> HITBatch:
        """Generate the pair-based HIT batch for the given candidate pairs."""
        keys, likelihoods = pairs.to_arrays()
        if self.order_by_likelihood:
            # Stable descending argsort == the old per-object sort: missing
            # likelihoods were already densified to -1.0, and ties keep
            # insertion order either way.
            ordered = [keys[index] for index in argsort_descending(likelihoods)]
        else:
            ordered = keys
        hits: List[PairBasedHIT] = []
        for start in range(0, len(ordered), self.pairs_per_hit):
            chunk = ordered[start : start + self.pairs_per_hit]
            hits.append(
                PairBasedHIT(
                    hit_id=f"pair-hit-{len(hits) + 1}",
                    pairs=tuple(chunk),
                )
            )
        if obs.enabled():
            obs.inc("hit_pairs_packed_total", len(keys), generator=self.name,
                    help="Candidate pairs packed into generated HITs.")
            obs.inc("hits_generated_total", len(hits), generator=self.name,
                    help="HITs produced by the generators.")
        return HITBatch(
            hit_type="pair",
            hits=list(hits),
            candidate_pairs=set(keys),
            generator_name=self.name,
            cluster_size=self.pairs_per_hit,
        )
