"""HIT data structures shared by all generators.

Two HIT types mirror the two AMT interfaces of the paper (Figures 3 and 4):

* :class:`PairBasedHIT` — a list of record pairs, each verified separately.
* :class:`ClusterBasedHIT` — a set of records; workers find all duplicates.

:class:`HITBatch` is the output of a generator: an ordered collection of
HITs plus bookkeeping (which pairs each HIT can check) used by validation,
pricing and the crowd simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.records.pairs import PairSet, canonical_pair


@dataclass(frozen=True)
class PairBasedHIT:
    """A pair-based HIT: a batch of record pairs verified one by one."""

    hit_id: str
    pairs: Tuple[Tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("a pair-based HIT must contain at least one pair")
        canonical = tuple(canonical_pair(a, b) for a, b in self.pairs)
        object.__setattr__(self, "pairs", canonical)

    @property
    def size(self) -> int:
        """Number of pairs in the HIT."""
        return len(self.pairs)

    @property
    def record_ids(self) -> Set[str]:
        """All records mentioned by the HIT."""
        ids: Set[str] = set()
        for id_a, id_b in self.pairs:
            ids.add(id_a)
            ids.add(id_b)
        return ids

    def checkable_pairs(self) -> Set[Tuple[str, str]]:
        """The pairs a worker can decide in this HIT (exactly its pair list)."""
        return set(self.pairs)


@dataclass(frozen=True)
class ClusterBasedHIT:
    """A cluster-based HIT: a group of records labelled for duplicates.

    A cluster-based HIT can check a pair if and only if both records of the
    pair are in the HIT (Definition 1, requirement 2).
    """

    hit_id: str
    records: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.records) < 1:
            raise ValueError("a cluster-based HIT must contain at least one record")
        if len(set(self.records)) != len(self.records):
            raise ValueError("a cluster-based HIT cannot contain duplicate record ids")
        object.__setattr__(self, "records", tuple(self.records))

    @property
    def size(self) -> int:
        """Number of records in the HIT."""
        return len(self.records)

    @property
    def record_ids(self) -> Set[str]:
        """The records of the HIT as a set."""
        return set(self.records)

    def contains_pair(self, id_a: str, id_b: str) -> bool:
        """True if both records are in the HIT (so the pair can be checked)."""
        members = self.record_ids
        return id_a in members and id_b in members

    def checkable_pairs(self, candidate_pairs: Optional[Iterable[Tuple[str, str]]] = None) -> Set[Tuple[str, str]]:
        """Pairs this HIT can check.

        With ``candidate_pairs`` given, only candidate pairs fully contained
        in the HIT are returned; otherwise all ``size*(size-1)/2`` internal
        pairs are returned.
        """
        members = sorted(self.record_ids)
        if candidate_pairs is None:
            result: Set[Tuple[str, str]] = set()
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    result.add(canonical_pair(members[i], members[j]))
            return result
        member_set = set(members)
        return {
            canonical_pair(a, b)
            for a, b in candidate_pairs
            if a in member_set and b in member_set
        }


@dataclass
class HITBatch:
    """The output of a HIT generator.

    Attributes
    ----------
    hit_type:
        ``"pair"`` or ``"cluster"``.
    hits:
        The generated HITs, in generation order.
    candidate_pairs:
        The pair keys the batch was generated for (used for cover checks).
    generator_name:
        Name of the algorithm that produced the batch.
    cluster_size:
        The cluster-size threshold ``k`` (pair HITs record the max pairs per
        HIT here instead).
    """

    hit_type: str
    hits: List[object] = field(default_factory=list)
    candidate_pairs: Set[Tuple[str, str]] = field(default_factory=set)
    generator_name: str = ""
    cluster_size: int = 0

    def __post_init__(self) -> None:
        if self.hit_type not in ("pair", "cluster"):
            raise ValueError("hit_type must be 'pair' or 'cluster'")
        self.candidate_pairs = {canonical_pair(a, b) for a, b in self.candidate_pairs}

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[object]:
        return iter(self.hits)

    @property
    def hit_count(self) -> int:
        """Number of HITs in the batch (what the paper's Figures 10-11 plot)."""
        return len(self.hits)

    def covered_pairs(self) -> Set[Tuple[str, str]]:
        """Union of candidate pairs checkable by at least one HIT.

        Cluster HITs enumerate their own internal pairs (at most k*(k-1)/2
        each) rather than scanning the full candidate set, so the check stays
        fast even for batches generated from tens of thousands of pairs.
        """
        covered: Set[Tuple[str, str]] = set()
        for hit in self.hits:
            if isinstance(hit, ClusterBasedHIT):
                covered |= hit.checkable_pairs() & self.candidate_pairs
            elif isinstance(hit, PairBasedHIT):
                covered |= hit.checkable_pairs() & self.candidate_pairs
        return covered

    def uncovered_pairs(self) -> Set[Tuple[str, str]]:
        """Candidate pairs no HIT can check (must be empty for a valid batch)."""
        return self.candidate_pairs - self.covered_pairs()

    def is_valid_cover(self) -> bool:
        """True if every candidate pair is checkable by at least one HIT."""
        return not self.uncovered_pairs()

    def max_hit_size(self) -> int:
        """The largest HIT size in the batch."""
        sizes = [hit.size for hit in self.hits]  # type: ignore[attr-defined]
        return max(sizes) if sizes else 0

    def pair_to_hits(self) -> Dict[Tuple[str, str], List[str]]:
        """Map every candidate pair to the ids of the HITs that can check it."""
        mapping: Dict[Tuple[str, str], List[str]] = {key: [] for key in self.candidate_pairs}
        for hit in self.hits:
            if isinstance(hit, ClusterBasedHIT):
                checkable = hit.checkable_pairs(self.candidate_pairs)
            else:
                checkable = hit.checkable_pairs() & self.candidate_pairs  # type: ignore[union-attr]
            for key in checkable:
                mapping[key].append(hit.hit_id)  # type: ignore[attr-defined]
        return mapping


def validate_cluster_cover(
    hits: Sequence[ClusterBasedHIT],
    pairs: PairSet,
    cluster_size: int,
) -> None:
    """Raise ``ValueError`` unless the HITs are a valid cover (Definition 1).

    Requirement 1: every HIT has at most ``cluster_size`` records.
    Requirement 2: every candidate pair is contained in at least one HIT.
    """
    for hit in hits:
        if hit.size > cluster_size:
            raise ValueError(
                f"HIT {hit.hit_id} has {hit.size} records, exceeding the "
                f"cluster-size threshold {cluster_size}"
            )
    hits_of_record: Dict[str, Set[int]] = {}
    for index, hit in enumerate(hits):
        for record_id in hit.records:
            hits_of_record.setdefault(record_id, set()).add(index)
    uncovered = []
    for pair in pairs:
        shared = hits_of_record.get(pair.id_a, set()) & hits_of_record.get(pair.id_b, set())
        if not shared:
            uncovered.append(pair.key)
    if uncovered:
        raise ValueError(f"{len(uncovered)} candidate pairs are not covered, e.g. {uncovered[:5]}")
