"""The back-of-the-envelope comparison model of Section 6.

For a pair-based HIT the number of comparisons a worker performs is simply
the number of pairs in the HIT.  For a cluster-based HIT with ``n`` records
grouped into ``m`` distinct entities ``e_1..e_m`` processed in some order,
the worker needs

    sum_{i=1..m} (n - 1 - sum_{j<i} |e_j|)            (Equation 1)
  = (n - 1) * m - sum_{i=1..m-1} (m - i) * |e_i|      (Equation 2)

comparisons.  The count decreases when the HIT contains more duplicates and
depends on the order in which entities are identified.  Minimising Equation 2
means maximising the weighted sum ``sum (m - i) * |e_i|`` whose weights
decrease with ``i``, so identifying entities in *decreasing* size order gives
the minimum number of comparisons and increasing order gives the maximum.
(The paper's prose says "increasing order"; Equation 2 and a two-entity
counter-example — sizes [2, 1] need 2 comparisons large-first but 3
small-first — show the optimum is the decreasing order, so this module
follows the equation.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.hit.base import ClusterBasedHIT, PairBasedHIT


def pair_hit_comparisons(hit: PairBasedHIT) -> int:
    """Comparisons for a pair-based HIT: one per batched pair."""
    return hit.size


def entity_partition(
    records: Sequence[str], matches: Iterable[Tuple[str, str]]
) -> List[List[str]]:
    """Group the records of a HIT into entities using the matching pairs.

    Two records belong to the same entity when they are connected by a chain
    of matching pairs (transitive closure restricted to the HIT's records).
    Records with no match inside the HIT form singleton entities.
    """
    record_list = list(records)
    record_set = set(record_list)
    parent: Dict[str, str] = {record: record for record in record_list}

    def find(record: str) -> str:
        while parent[record] != record:
            parent[record] = parent[parent[record]]
            record = parent[record]
        return record

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for id_a, id_b in matches:
        if id_a in record_set and id_b in record_set:
            union(id_a, id_b)

    groups: Dict[str, List[str]] = {}
    for record in record_list:
        groups.setdefault(find(record), []).append(record)
    return list(groups.values())


def comparisons_for_entity_sizes(entity_sizes: Sequence[int]) -> int:
    """Evaluate Equation 1 for entities identified in the given order."""
    n = sum(entity_sizes)
    total = 0
    identified = 0
    for size in entity_sizes:
        remaining = n - 1 - identified
        if remaining > 0:
            total += remaining
        identified += size
    return total


def cluster_hit_comparisons(
    hit: ClusterBasedHIT,
    matches: Iterable[Tuple[str, str]],
    order: str = "as-given",
) -> int:
    """Comparisons a worker needs for a cluster-based HIT (Equation 1).

    Parameters
    ----------
    hit:
        The cluster-based HIT.
    matches:
        The ground-truth (or believed) matching pairs; only those inside the
        HIT matter.
    order:
        The order in which the worker identifies entities: ``"as-given"``
        keeps the record order of the HIT (the first record of each
        yet-unidentified entity starts it), ``"best"`` identifies entities
        in descending size order (the minimiser of Equation 2), ``"worst"``
        in ascending order.
    """
    entities = entity_partition(hit.records, matches)
    if order == "best":
        sizes = sorted((len(entity) for entity in entities), reverse=True)
    elif order == "worst":
        sizes = sorted(len(entity) for entity in entities)
    elif order == "as-given":
        # Entities in order of their first record's appearance in the HIT.
        first_position = {
            min(hit.records.index(record) for record in entity): len(entity)
            for entity in entities
        }
        sizes = [first_position[position] for position in sorted(first_position)]
    else:
        raise ValueError("order must be 'as-given', 'best' or 'worst'")
    return comparisons_for_entity_sizes(sizes)


def cluster_hit_comparisons_bounds(
    hit: ClusterBasedHIT, matches: Iterable[Tuple[str, str]]
) -> Tuple[int, int]:
    """(best-case, worst-case) comparison counts for a cluster-based HIT."""
    matches = list(matches)
    return (
        cluster_hit_comparisons(hit, matches, order="best"),
        cluster_hit_comparisons(hit, matches, order="worst"),
    )


def no_duplicate_comparisons(n_records: int) -> int:
    """Comparisons when the HIT contains no duplicates: n*(n-1)/2."""
    return n_records * (n_records - 1) // 2


def all_duplicate_comparisons(n_records: int) -> int:
    """Comparisons when all records of the HIT are duplicates: n-1."""
    return max(0, n_records - 1)
