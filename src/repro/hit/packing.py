"""Bottom tier of the two-tiered approach: SCC packing (Section 5.3).

Packing small connected components into the minimum number of cluster-based
HITs of capacity ``k`` is a one-dimensional cutting-stock / bin-packing
problem.  The paper formulates it as an integer linear program over feasible
*patterns* ``p = [a_1, ..., a_k]`` (``a_j`` = number of packed components of
size ``j``) and solves it with column generation and branch-and-bound.

Three solvers are provided and cross-validated in the test suite:

* :func:`first_fit_decreasing` — the classic FFD heuristic (fast, at most
  ``11/9 OPT + 1`` bins).
* :func:`branch_and_bound_packing` — exact bin packing by depth-first search
  with lower-bound pruning (falls back to FFD when the node budget is hit).
* :func:`column_generation_packing` — the paper's cutting-stock approach:
  LP relaxation solved by column generation (scipy ``linprog`` restricted
  master + dynamic-programming knapsack pricing), then an integer solution
  obtained by rounding down and repairing the residual demand with FFD.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

try:  # scipy is a hard dependency of the package, but keep the import local.
    from scipy.optimize import linprog
except ImportError:  # pragma: no cover - exercised only in broken environments
    linprog = None


@dataclass
class PackingSolution:
    """Result of packing items (component sizes) into bins (HITs).

    Attributes
    ----------
    bins:
        Each bin is a list of item indices (into the original item list).
    capacity:
        The bin capacity (cluster-size threshold ``k``).
    sizes:
        The item sizes, in the original order.
    method:
        Name of the solver that produced the solution.
    lower_bound:
        A proven lower bound on the optimal number of bins (when available).
    """

    bins: List[List[int]]
    capacity: int
    sizes: List[int]
    method: str
    lower_bound: Optional[int] = None

    @property
    def bin_count(self) -> int:
        """Number of bins used."""
        return len(self.bins)

    def is_feasible(self) -> bool:
        """Every item packed exactly once and no bin exceeds the capacity."""
        packed = [index for bin_items in self.bins for index in bin_items]
        if sorted(packed) != list(range(len(self.sizes))):
            return False
        return all(
            sum(self.sizes[index] for index in bin_items) <= self.capacity
            for bin_items in self.bins
        )

    def bin_loads(self) -> List[int]:
        """Total size packed into each bin."""
        return [sum(self.sizes[index] for index in bin_items) for bin_items in self.bins]


def size_lower_bound(sizes: Sequence[int], capacity: int) -> int:
    """The trivial L1 lower bound: ceil(total size / capacity)."""
    if not sizes:
        return 0
    return math.ceil(sum(sizes) / capacity)


def _validate(sizes: Sequence[int], capacity: int) -> None:
    if capacity < 1:
        raise ValueError("capacity must be at least 1")
    for size in sizes:
        if size < 1:
            raise ValueError(f"item sizes must be positive, got {size}")
        if size > capacity:
            raise ValueError(f"item of size {size} cannot fit into capacity {capacity}")


# --------------------------------------------------------------------- FFD
def first_fit_decreasing(sizes: Sequence[int], capacity: int) -> PackingSolution:
    """First-fit-decreasing heuristic bin packing.

    The first-fit rule ("lowest-indexed open bin with room") is implemented
    with a capacity-indexed structure instead of a linear scan over all open
    bins: ``residual_bins[r]`` is a min-heap of the indices of bins with
    exactly ``r`` free units.  Placing an item of size ``s`` peeks the
    ``capacity - s + 1`` feasible residual classes and takes the smallest
    bin index among their heads — O(capacity + log bins) per item instead
    of O(bins), while producing the *same* bins as the scan by construction
    (each bin lives in exactly one residual class, and the minimum index
    over the feasible classes is exactly the first fit).
    """
    _validate(sizes, capacity)
    order = sorted(range(len(sizes)), key=lambda index: (-sizes[index], index))
    bins: List[List[int]] = []
    residual_bins: List[List[int]] = [[] for _ in range(capacity + 1)]
    for index in order:
        size = sizes[index]
        best_residual = -1
        best_bin = -1
        for residual in range(size, capacity + 1):
            heap = residual_bins[residual]
            if heap and (best_bin < 0 or heap[0] < best_bin):
                best_bin = heap[0]
                best_residual = residual
        if best_bin < 0:
            residual = capacity - size
            heapq.heappush(residual_bins[residual], len(bins))
            bins.append([index])
            continue
        heapq.heappop(residual_bins[best_residual])
        heapq.heappush(residual_bins[best_residual - size], best_bin)
        bins[best_bin].append(index)
    return PackingSolution(
        bins=bins,
        capacity=capacity,
        sizes=list(sizes),
        method="ffd",
        lower_bound=size_lower_bound(sizes, capacity),
    )


# ---------------------------------------------------------- branch & bound
def branch_and_bound_packing(
    sizes: Sequence[int],
    capacity: int,
    max_nodes: int = 200_000,
) -> PackingSolution:
    """Exact bin packing by depth-first branch-and-bound.

    Items are placed in decreasing size order; at each step the current item
    is tried in every open bin with room (skipping bins with identical
    residual capacity) and in one new bin.  The search prunes on the L1
    lower bound of the unplaced items.  If the node budget ``max_nodes`` is
    exhausted the best solution found so far (at worst the FFD solution) is
    returned, so the function always terminates quickly.
    """
    _validate(sizes, capacity)
    if not sizes:
        return PackingSolution([], capacity, [], method="branch-and-bound", lower_bound=0)

    order = sorted(range(len(sizes)), key=lambda index: (-sizes[index], index))
    ordered_sizes = [sizes[index] for index in order]
    ffd = first_fit_decreasing(sizes, capacity)
    best_bins: List[List[int]] = [list(bin_items) for bin_items in ffd.bins]
    best_count = ffd.bin_count
    lower_bound = size_lower_bound(sizes, capacity)
    nodes_visited = 0

    current_bins: List[List[int]] = []
    current_loads: List[int] = []

    def remaining_lower_bound(position: int) -> int:
        remaining = sum(ordered_sizes[position:])
        free = sum(capacity - load for load in current_loads)
        extra = max(0, remaining - free)
        return len(current_bins) + math.ceil(extra / capacity) if extra > 0 else len(current_bins)

    def search(position: int) -> None:
        nonlocal best_bins, best_count, nodes_visited
        if best_count == lower_bound:
            return
        nodes_visited += 1
        if nodes_visited > max_nodes:
            return
        if position == len(ordered_sizes):
            if len(current_bins) < best_count:
                best_count = len(current_bins)
                best_bins = [list(bin_items) for bin_items in current_bins]
            return
        if remaining_lower_bound(position) >= best_count:
            return
        item_index = order[position]
        size = ordered_sizes[position]
        tried_residuals = set()
        for bin_index in range(len(current_bins)):
            residual = capacity - current_loads[bin_index]
            if size <= residual and residual not in tried_residuals:
                tried_residuals.add(residual)
                current_bins[bin_index].append(item_index)
                current_loads[bin_index] += size
                search(position + 1)
                current_loads[bin_index] -= size
                current_bins[bin_index].pop()
        if len(current_bins) + 1 < best_count:
            current_bins.append([item_index])
            current_loads.append(size)
            search(position + 1)
            current_bins.pop()
            current_loads.pop()

    search(0)
    return PackingSolution(
        bins=best_bins,
        capacity=capacity,
        sizes=list(sizes),
        method="branch-and-bound",
        lower_bound=lower_bound,
    )


# ------------------------------------------------------- column generation
def _knapsack_pricing(duals: Dict[int, float], capacity: int) -> Tuple[List[int], float]:
    """Solve the pricing knapsack: max dual value of a feasible pattern.

    Returns the pattern as a list ``a_1..a_capacity`` (count per item size)
    and its total dual value.  Dynamic program over the capacity with
    unbounded item counts, O(capacity * #sizes).
    """
    best_value = [0.0] * (capacity + 1)
    best_choice: List[Optional[int]] = [None] * (capacity + 1)
    for load in range(1, capacity + 1):
        best_value[load] = best_value[load - 1]
        best_choice[load] = None
        for size, dual in duals.items():
            if size <= load and best_value[load - size] + dual > best_value[load] + 1e-12:
                best_value[load] = best_value[load - size] + dual
                best_choice[load] = size
    pattern = [0] * capacity
    load = capacity
    while load > 0:
        choice = best_choice[load]
        if choice is None:
            load -= 1
            continue
        pattern[choice - 1] += 1
        load -= choice
    return pattern, best_value[capacity]


def column_generation_packing(
    sizes: Sequence[int],
    capacity: int,
    max_iterations: int = 200,
) -> PackingSolution:
    """Cutting-stock packing via column generation (the paper's formulation).

    The restricted master problem minimises the number of used patterns
    subject to covering the demand ``c_j`` (number of components of size
    ``j``); new patterns are priced in with a knapsack dynamic program until
    no pattern has negative reduced cost.  The fractional optimum is turned
    into an integer packing by rounding down the pattern usage and repairing
    the residual demand with FFD.  The returned ``lower_bound`` is the
    ceiling of the LP optimum, a valid lower bound on the optimal number of
    HITs.
    """
    _validate(sizes, capacity)
    if not sizes:
        return PackingSolution([], capacity, [], method="column-generation", lower_bound=0)
    if linprog is None:  # pragma: no cover
        return first_fit_decreasing(sizes, capacity)

    demand = Counter(sizes)
    distinct_sizes = sorted(demand)

    # Initial patterns: one pattern per size, filled with as many copies of
    # that size as fit (the classic Gilmore-Gomory start).
    patterns: List[List[int]] = []
    for size in distinct_sizes:
        pattern = [0] * capacity
        pattern[size - 1] = capacity // size
        patterns.append(pattern)

    lp_objective = float("inf")
    solution_x: Optional[np.ndarray] = None
    for _ in range(max_iterations):
        # Restricted master LP: min sum x_i  s.t.  sum a_ij x_i >= c_j, x >= 0.
        n_patterns = len(patterns)
        cost = np.ones(n_patterns)
        constraint_matrix = np.zeros((len(distinct_sizes), n_patterns))
        for row, size in enumerate(distinct_sizes):
            for col, pattern in enumerate(patterns):
                constraint_matrix[row, col] = pattern[size - 1]
        result = linprog(
            c=cost,
            A_ub=-constraint_matrix,
            b_ub=-np.array([demand[size] for size in distinct_sizes], dtype=float),
            bounds=[(0, None)] * n_patterns,
            method="highs",
        )
        if not result.success:  # pragma: no cover - defensive
            return first_fit_decreasing(sizes, capacity)
        lp_objective = float(result.fun)
        solution_x = result.x
        duals_array = result.ineqlin.marginals if hasattr(result, "ineqlin") else None
        if duals_array is None:  # pragma: no cover - older scipy
            break
        # linprog's inequality marginals are <= 0 for A_ub x <= b_ub; the dual
        # value of the covering constraint is their negation.
        duals = {
            size: max(0.0, -float(duals_array[row]))
            for row, size in enumerate(distinct_sizes)
        }
        pattern, value = _knapsack_pricing(duals, capacity)
        # Reduced cost of the new pattern = 1 - value; stop when >= 0.
        if value <= 1.0 + 1e-9:
            break
        if pattern in patterns:
            break
        patterns.append(pattern)

    lp_lower_bound = int(math.ceil(lp_objective - 1e-9)) if math.isfinite(lp_objective) else None

    # Integer solution: round the LP usage down, then repair with FFD.
    residual = Counter(demand)
    chosen_patterns: List[List[int]] = []
    if solution_x is not None:
        for pattern, usage in zip(patterns, solution_x):
            count = int(math.floor(usage + 1e-9))
            for _ in range(count):
                # Only apply the pattern while it still covers real demand.
                if not any(
                    pattern[size - 1] > 0 and residual[size] > 0 for size in distinct_sizes
                ):
                    break
                chosen_patterns.append(pattern)
                for size in distinct_sizes:
                    take = min(pattern[size - 1], residual[size])
                    residual[size] -= take

    # Assign concrete item indices to the chosen patterns.
    items_by_size: Dict[int, List[int]] = {}
    for index, size in enumerate(sizes):
        items_by_size.setdefault(size, []).append(index)
    bins: List[List[int]] = []
    for pattern in chosen_patterns:
        bin_items: List[int] = []
        for size in distinct_sizes:
            for _ in range(pattern[size - 1]):
                if items_by_size.get(size):
                    bin_items.append(items_by_size[size].pop())
        if bin_items:
            bins.append(bin_items)

    leftovers = [index for remaining in items_by_size.values() for index in remaining]
    if leftovers:
        leftover_sizes = [sizes[index] for index in leftovers]
        repaired = first_fit_decreasing(leftover_sizes, capacity)
        for bin_items in repaired.bins:
            bins.append([leftovers[position] for position in bin_items])

    solution = PackingSolution(
        bins=bins,
        capacity=capacity,
        sizes=list(sizes),
        method="column-generation",
        lower_bound=(
            lp_lower_bound if lp_lower_bound is not None else size_lower_bound(sizes, capacity)
        ),
    )
    # The rounding repair can only over-use bins, never under-cover items;
    # fall back to plain FFD in the (never observed) case it is worse.
    ffd = first_fit_decreasing(sizes, capacity)
    if not solution.is_feasible() or solution.bin_count > ffd.bin_count:
        if solution.lower_bound is not None:
            ffd.lower_bound = solution.lower_bound
        ffd.method = "column-generation(ffd-fallback)"
        return ffd
    return solution


_PACKING_METHODS = {
    "ffd": first_fit_decreasing,
    "branch-and-bound": branch_and_bound_packing,
    "column-generation": column_generation_packing,
}


def pack_components(
    components: Sequence[Sequence[str]],
    cluster_size: int,
    method: str = "column-generation",
) -> List[List[str]]:
    """Pack small connected components into cluster-based HIT record groups.

    Components of exactly ``cluster_size`` records become their own HIT;
    smaller components are packed together using the chosen solver.  When
    two packed components share a record (possible because LCC partitioning
    may duplicate cut vertices), the union is used, which can only shrink
    the HIT.
    """
    if method not in _PACKING_METHODS:
        raise ValueError(f"unknown packing method {method!r}; known: {sorted(_PACKING_METHODS)}")
    sizes = [len(component) for component in components]
    for size in sizes:
        if size > cluster_size:
            raise ValueError(
                f"component of size {size} exceeds the cluster-size threshold {cluster_size}"
            )
    solver = _PACKING_METHODS[method]
    solution = solver(sizes, cluster_size)
    hit_groups: List[List[str]] = []
    for bin_items in solution.bins:
        group: List[str] = []
        seen = set()
        for item_index in bin_items:
            for record_id in components[item_index]:
                if record_id not in seen:
                    seen.add(record_id)
                    group.append(record_id)
        if group:
            hit_groups.append(group)
    return hit_groups
