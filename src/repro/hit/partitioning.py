"""Top tier of the two-tiered approach: LCC partitioning (Algorithm 2).

A large connected component (more vertices than the cluster-size threshold
``k``) is partitioned into small connected components (SCCs) that together
cover all of its edges.  The greedy procedure grows one SCC at a time:

1. Seed the SCC with the vertex of maximum degree in the remaining LCC.
2. Repeatedly add the candidate vertex with the maximum *indegree* w.r.t.
   the SCC (number of edges into the SCC); ties are broken by minimum
   *outdegree* (number of edges to vertices outside the SCC), then by
   vertex id for determinism.
3. Stop when the SCC has ``k`` vertices or no candidate remains; output the
   SCC, remove the edges it covers, and repeat while the LCC still has edges.

The implementation keeps the indegree/outdegree of every frontier vertex
incrementally (updated when a vertex joins the SCC) so that partitioning the
pair graphs of the full-size datasets (tens of thousands of edges) stays
tractable in pure Python.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.graph import Graph

_TIE_BREAK_RULES = ("min-outdegree", "max-outdegree", "lexical")


def _select_candidate(
    conn: Dict[str, List[int]], tie_break: str
) -> str:
    """Pick the next vertex to add to the SCC from the frontier map.

    ``conn`` maps each frontier vertex to ``[indegree, outdegree]`` w.r.t.
    the current SCC.  The paper's rule is maximum indegree, ties broken by
    minimum outdegree; alternative rules exist for the ablation study.
    """
    best_vertex = None
    best_key: Tuple[int, int, str] = (0, 0, "")
    for vertex, (indegree, outdegree) in conn.items():
        if tie_break == "min-outdegree":
            key = (-indegree, outdegree, vertex)
        elif tie_break == "max-outdegree":
            key = (-indegree, -outdegree, vertex)
        else:  # "lexical": ignore outdegree entirely
            key = (-indegree, 0, vertex)
        if best_vertex is None or key < best_key:
            best_vertex = vertex
            best_key = key
    assert best_vertex is not None  # caller guarantees conn is non-empty
    return best_vertex


def partition_large_component(
    graph: Graph,
    component: Sequence[str],
    cluster_size: int,
    tie_break: str = "min-outdegree",
) -> List[List[str]]:
    """Partition one large connected component into edge-covering SCCs.

    Parameters
    ----------
    graph:
        The pair graph (only the induced subgraph on ``component`` is used;
        ``graph`` itself is not modified).
    component:
        Vertex ids of the large connected component.
    cluster_size:
        The cluster-size threshold ``k``.
    tie_break:
        Tie-breaking rule when several candidates share the maximum
        indegree: ``"min-outdegree"`` is the paper's rule; ``"max-outdegree"``
        and ``"lexical"`` exist for the ablation benchmark.

    Returns
    -------
    list of list of record ids
        SCCs of at most ``cluster_size`` vertices covering every edge of the
        component.
    """
    if cluster_size < 2:
        raise ValueError("cluster_size must be at least 2")
    if tie_break not in _TIE_BREAK_RULES:
        raise ValueError(f"unknown tie_break rule {tie_break!r}; known: {_TIE_BREAK_RULES}")

    lcc = graph.subgraph(component)
    sccs: List[List[str]] = []

    while lcc.edge_count > 0:
        # Seed: the maximum-degree vertex of the remaining component.
        seed = lcc.max_degree_vertex()
        assert seed is not None  # edge_count > 0 implies a non-isolated vertex

        scc: List[str] = [seed]
        scc_set = {seed}
        # Frontier map: vertex -> [indegree w.r.t. scc, outdegree].
        conn: Dict[str, List[int]] = {
            neighbour: [1, lcc.degree(neighbour) - 1] for neighbour in lcc.neighbors(seed)
        }

        while len(scc) < cluster_size and conn:
            chosen = _select_candidate(conn, tie_break)
            del conn[chosen]
            scc.append(chosen)
            scc_set.add(chosen)
            for neighbour in lcc.neighbors(chosen):
                if neighbour in scc_set:
                    continue
                entry = conn.get(neighbour)
                if entry is None:
                    conn[neighbour] = [1, lcc.degree(neighbour) - 1]
                else:
                    entry[0] += 1
                    entry[1] -= 1

        sccs.append(scc)
        lcc.remove_edges_within(scc)
        # Drop vertices that lost all their edges so the seed scan and the
        # degree bookkeeping stay on the shrinking remainder.
        for vertex in scc:
            if lcc.has_vertex(vertex) and lcc.degree(vertex) == 0:
                lcc.remove_vertex(vertex)
    return sccs


def partition_all(
    graph: Graph,
    large_components: Iterable[Sequence[str]],
    cluster_size: int,
    tie_break: str = "min-outdegree",
) -> List[List[str]]:
    """Partition every large connected component (Algorithm 2 over the LCC set)."""
    sccs: List[List[str]] = []
    for component in large_components:
        sccs.extend(
            partition_large_component(graph, component, cluster_size, tie_break=tie_break)
        )
    return sccs


def coverage_report(
    graph: Graph, component: Sequence[str], sccs: Sequence[Sequence[str]]
) -> Dict[str, int]:
    """Summarise how well a partition covers a component's edges.

    Returns a dict with ``edges`` (total edges of the component), ``covered``
    (edges inside at least one SCC) and ``uncovered``.  Used by tests and by
    the ablation benchmark.
    """
    component_edges = set(graph.edges_within(component))
    covered = set()
    for scc in sccs:
        covered.update(graph.edges_within(scc))
    covered &= component_edges
    return {
        "edges": len(component_edges),
        "covered": len(covered),
        "uncovered": len(component_edges - covered),
    }
