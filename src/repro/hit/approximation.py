"""The k-clique edge-cover approximation algorithm (Section 4).

The cluster-based HIT generation problem is reduced to the k-clique covering
problem; Goldschmidt et al.'s (k/2 + k/(k-1))-approximation algorithm then
works in two phases:

* **Phase 1** builds a sequence ``SEQ`` of all vertices and edges: it
  repeatedly selects a vertex, appends the vertex and all of its still-present
  incident edges to ``SEQ``, and removes them from the graph, until the graph
  is empty.
* **Phase 2** splits ``SEQ`` into consecutive subsequences of ``k - 1``
  elements.  The edges inside one subsequence touch at most ``k`` distinct
  vertices, so each subsequence can be covered by one clique of size at most
  ``k`` — i.e. one cluster-based HIT.

As the paper observes (Example 2 and Section 7.2), this algorithm is usually
much worse than the two-tiered heuristic on real data; it is implemented here
because Figures 10 and 11 include it as a comparison line.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.graph.graph import Graph
from repro.hit.generator import ClusterHITGenerator, register_generator
from repro.records.pairs import PairSet

SequenceElement = Union[str, Tuple[str, str]]


def build_goldschmidt_sequence(graph: Graph) -> List[SequenceElement]:
    """Phase 1: the vertex/edge sequence SEQ.

    Vertices are selected in insertion order (the algorithm allows any
    order; the paper notes that it "simply adds a random vertex", which is
    one reason it performs poorly).  Each selected vertex is appended,
    followed by its incident edges still present in the graph, and then the
    vertex and those edges are removed.
    """
    working = graph.copy()
    sequence: List[SequenceElement] = []
    for vertex in list(working.vertices()):
        if not working.has_vertex(vertex):
            continue
        sequence.append(vertex)
        for neighbour in list(working.neighbors(vertex)):
            edge = (vertex, neighbour) if vertex < neighbour else (neighbour, vertex)
            sequence.append(edge)
            working.remove_edge(vertex, neighbour)
        working.remove_vertex(vertex)
    return sequence


def cliques_from_sequence(
    sequence: Sequence[SequenceElement], cluster_size: int
) -> List[List[str]]:
    """Phase 2: split SEQ into chunks of ``k - 1`` elements and extract cliques.

    For each chunk, the clique consists of the distinct vertices appearing in
    the chunk's edges (chunks containing no edge produce no HIT — there is
    nothing to cover).  By the SEQ property each such clique has at most
    ``k`` vertices.
    """
    chunk_length = cluster_size - 1
    cliques: List[List[str]] = []
    for start in range(0, len(sequence), chunk_length):
        chunk = sequence[start : start + chunk_length]
        vertices: List[str] = []
        has_edge = False
        for element in chunk:
            if isinstance(element, tuple):
                has_edge = True
                for vertex in element:
                    if vertex not in vertices:
                        vertices.append(vertex)
        if has_edge:
            cliques.append(vertices)
    return cliques


@register_generator("approximation")
class ApproximationClusterGenerator(ClusterHITGenerator):
    """Goldschmidt et al.'s k-clique-cover approximation as a HIT generator."""

    name = "approximation"

    def _clusters(self, pairs: PairSet) -> List[Sequence[str]]:
        graph = Graph.from_pair_set(pairs)
        sequence = build_goldschmidt_sequence(graph)
        cliques = cliques_from_sequence(sequence, self.cluster_size)
        # Sanity: every clique must respect the size bound guaranteed by the
        # SEQ property; violating it would indicate an implementation bug.
        for clique in cliques:
            if len(clique) > self.cluster_size:
                raise AssertionError(
                    "SEQ chunk produced a clique larger than the cluster size: "
                    f"{clique}"
                )
        return cliques
