"""HIT generation: the core algorithmic contribution of CrowdER.

Given a set of candidate pairs (the output of the machine pass) this package
creates the crowd micro-tasks:

* **Pair-based HITs** (Section 3.1): simple chunking of the pair list.
* **Cluster-based HITs** (Sections 3.2-5): groups of records of size at most
  ``k`` such that every candidate pair is contained in at least one group.
  Generating the minimum number of such groups is NP-Hard; implemented here
  are the Goldschmidt k-clique-cover approximation (Section 4), the Random /
  BFS / DFS baselines (Section 7.2) and the paper's two-tiered heuristic
  (Section 5) with its LCC-partitioning top tier and cutting-stock packing
  bottom tier.
* The **comparison-count model** of Section 6 used by the latency analysis.
"""

from repro.hit.base import PairBasedHIT, ClusterBasedHIT, HITBatch, validate_cluster_cover
from repro.hit.pair_generation import PairHITGenerator
from repro.hit.cluster_baselines import (
    RandomClusterGenerator,
    BFSClusterGenerator,
    DFSClusterGenerator,
)
from repro.hit.approximation import ApproximationClusterGenerator
from repro.hit.partitioning import partition_large_component, partition_all
from repro.hit.packing import (
    PackingSolution,
    first_fit_decreasing,
    branch_and_bound_packing,
    column_generation_packing,
    pack_components,
)
from repro.hit.two_tiered import TwoTieredClusterGenerator
from repro.hit.comparisons import (
    pair_hit_comparisons,
    cluster_hit_comparisons,
    cluster_hit_comparisons_bounds,
)
from repro.hit.generator import ClusterHITGenerator, get_cluster_generator

__all__ = [
    "PairBasedHIT",
    "ClusterBasedHIT",
    "HITBatch",
    "validate_cluster_cover",
    "PairHITGenerator",
    "RandomClusterGenerator",
    "BFSClusterGenerator",
    "DFSClusterGenerator",
    "ApproximationClusterGenerator",
    "TwoTieredClusterGenerator",
    "ClusterHITGenerator",
    "get_cluster_generator",
    "partition_large_component",
    "partition_all",
    "PackingSolution",
    "first_fit_decreasing",
    "branch_and_bound_packing",
    "column_generation_packing",
    "pack_components",
    "pair_hit_comparisons",
    "cluster_hit_comparisons",
    "cluster_hit_comparisons_bounds",
]
