"""Command-line interface for the CrowdER reproduction.

Three subcommands expose the most common workflows without writing Python:

* ``threshold-table`` — print the Table-2 likelihood/recall table for a
  dataset.
* ``generate-hits`` — run a cluster-based HIT generation algorithm and
  report how many HITs it needs (the Figure-10/11 quantity).
* ``resolve`` — run the full hybrid workflow against the simulated crowd
  and print cost, latency and result quality.
* ``resolve-stream`` — replay the dataset through the streaming incremental
  resolver in arrival batches and print, per batch, how little work the
  dirty-component machinery had to redo.  With ``--checkpoint-dir`` the
  session is durable (write-ahead journal + snapshots); ``--resume``
  restores it and continues with the records it has not seen yet, and
  ``--max-batches`` stops early (so a later ``--resume`` picks up the
  rest — the round trip the persistence tests exercise).
  ``--storage-backend sqlite`` keeps the session state in a WAL-mode
  SQLite file (``--storage-path``, defaulting to ``store.sqlite`` inside
  the checkpoint directory) so restores page committed state back in
  instead of replaying the journal.  After the replay,
  ``--retract ID`` withdraws records (repeatable) and ``--update-file``
  applies revised records from a JSON file, printing the provenance-bounded
  blast radius of each.
* ``stats`` — render a per-session cost report (HITs, votes, machine vs.
  crowd time split) from a SQLite session store or a JSONL trace file.
* ``serve`` — run the resolution service: an asyncio HTTP server hosting
  many concurrent streaming sessions, each owned by one shard (ordered
  per-shard work queues; independent sessions run concurrently) with the
  machine pass on the reused process pool.  ``--metrics`` enables the
  in-process registry and the ``/metrics`` Prometheus scrape endpoint.
  See ``docs/service.md``.

``resolve`` and ``resolve-stream`` accept ``--metrics`` (enable the
in-process metrics registry), ``--trace PATH`` (JSONL span/counter trace)
and ``--metrics-out PATH`` (Prometheus text export at exit).  ``-v``
surfaces library debug logging; ``-q`` quiets everything below WARNING.

Examples::

    python -m repro.cli threshold-table --dataset restaurant
    python -m repro.cli generate-hits --dataset product --scale 0.2 \
        --threshold 0.2 --algorithm two-tiered --cluster-size 10
    python -m repro.cli resolve --dataset restaurant --threshold 0.35
    python -m repro.cli resolve-stream --dataset restaurant --threshold 0.35 \
        --batch-size 64 --recrowd-policy never
    python -m repro.cli resolve-stream --dataset paper-example --batch-size 3 \
        --checkpoint-dir /tmp/er-session --max-batches 2
    python -m repro.cli resolve-stream --dataset paper-example --batch-size 3 \
        --checkpoint-dir /tmp/er-session --resume
    python -m repro.cli resolve-stream --dataset paper-example --batch-size 3 \
        --storage-backend sqlite --checkpoint-dir /tmp/er-session
    python -m repro.cli resolve-stream --dataset paper-example --batch-size 3 \
        --retract r3 --update-file revised.json
    python -m repro.cli resolve-stream --dataset restaurant --batch-size 64 \
        --storage-backend sqlite --checkpoint-dir /tmp/er-session \
        --metrics --trace /tmp/er-session/trace.jsonl \
        --metrics-out /tmp/er-session/metrics.prom
    python -m repro.cli resolve-stream --dataset restaurant --batch-size 64 \
        --crowd-mode async --vote-timeout 8 --max-inflight-hits 32 \
        --fault-plan faults.json --metrics
    python -m repro.cli stats --checkpoint-dir /tmp/er-session
    python -m repro.cli stats --trace /tmp/er-session/trace.jsonl --json
    python -m repro.cli serve --port 8722 --shards 4 --metrics
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.crowd.faults import FaultPlan
from repro.datasets.base import Dataset
from repro.records.record import Record, RecordError
from repro.datasets.paper_example import paper_example_matches, paper_example_store
from repro.datasets.product import load_product
from repro.datasets.product_dup import load_product_dup
from repro.datasets.restaurant import load_restaurant
from repro.etl.registry import available_corpora, load_corpus
from repro.evaluation.metrics import f1_score, precision_recall
from repro.evaluation.reporting import format_table
from repro.evaluation.threshold_table import threshold_table
from repro.hit.generator import available_generators, get_cluster_generator
from repro.obs.report import CostReport
from repro.simjoin.backend import AUTO_BACKEND, available_backends
from repro.simjoin.likelihood import SimJoinLikelihood
from repro.simjoin.pool import DEFAULT_POOL_MODE, POOL_MODES
from repro.storage import STORE_FILENAME
from repro.streaming import StreamingResolver

#: Synthetic generators plus every corpus registered with the ETL layer
#: (``abt-buy``, ``amazon-google``, ...) — registry corpora load their
#: bundled offline mini variant.
_DATASETS = ("restaurant", "product", "product-dup", "paper-example") + available_corpora()

#: CLI reporting goes through this logger (configured in :func:`main`),
#: never through bare prints or the root logger.  Library modules have
#: their own ``logging.getLogger(__name__)`` loggers under the ``repro``
#: hierarchy, so ``--verbose`` surfaces their debug output too.
_LOG = logging.getLogger("repro.cli")


def _configure_logging(verbosity: int) -> None:
    """Route ``repro.*`` log records to the console by severity.

    Progress and results (<= INFO) go to stdout — at the default level
    their text is byte-identical to the old print-based reporting, which
    the CLI round-trip tests pin.  Warnings and errors go to stderr.
    ``-q`` raises the bar to WARNING, ``-v`` lowers it to DEBUG.
    Reconfigures idempotently: handlers are rebuilt on every call so
    repeated in-process invocations (tests) never double-log and always
    bind the *current* stdout/stderr.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    logger.setLevel(level)
    out = logging.StreamHandler(sys.stdout)
    out.setFormatter(logging.Formatter("%(message)s"))
    out.addFilter(lambda record: record.levelno < logging.WARNING)
    err = logging.StreamHandler(sys.stderr)
    err.setFormatter(logging.Formatter("%(message)s"))
    err.setLevel(logging.WARNING)
    logger.addHandler(out)
    logger.addHandler(err)
    logger.propagate = False


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by the workflow-running subcommands."""
    parser.add_argument("--metrics", action="store_true",
                        help="enable the in-process metrics registry "
                             "(counters, histograms, span timings)")
    parser.add_argument("--trace", type=str, default=None, metavar="PATH",
                        help="append span/counter events to this JSONL trace "
                             "file (implies --metrics)")
    parser.add_argument("--metrics-out", type=str, default=None, metavar="PATH",
                        help="write a Prometheus text-format metrics export "
                             "to this file at exit (implies --metrics)")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--join-backend",
        choices=(AUTO_BACKEND, *available_backends()),
        default=AUTO_BACKEND,
        help="similarity-join engine for the machine pass (auto picks by store size)",
    )
    parser.add_argument(
        "--join-workers",
        type=int,
        default=0,
        help="worker processes for the sharded 'parallel' join backend "
             "(0 = one per CPU core; results are identical for any value)",
    )
    parser.add_argument(
        "--join-pool",
        choices=POOL_MODES,
        default=DEFAULT_POOL_MODE,
        help="pool strategy of the 'parallel' backend: reused (long-lived "
             "shared pool + shared-memory index) or fork (fresh pool per "
             "join call; results are identical either way)",
    )


def load_dataset(name: str, scale: float, seed: int) -> Dataset:
    """Load one of the built-in datasets by name."""
    if name == "restaurant":
        return load_restaurant(seed=seed)
    if name == "product":
        return load_product(seed=seed, scale=scale)
    if name == "product-dup":
        return load_product_dup(seed=seed, product_scale=scale)
    if name == "paper-example":
        # The nine-record Table-1 example; scale and seed do not apply.
        return Dataset(
            name="paper-example",
            store=paper_example_store(),
            ground_truth=paper_example_matches(),
        )
    if name in available_corpora():
        # ETL-loaded real-style corpora are fixed files; scale and seed do
        # not apply (the bundled mini variant loads offline).
        return load_corpus(name)
    raise ValueError(f"unknown dataset {name!r}; choose from {_DATASETS}")


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=_DATASETS, default="restaurant",
                        help="which built-in dataset to use")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="scale of the Product-derived datasets (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=7, help="dataset / crowd random seed")


def _cmd_threshold_table(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    rows = [row.as_dict() for row in threshold_table(dataset, thresholds=args.thresholds)]
    _LOG.info(format_table(
        rows,
        columns=["threshold", "total_pairs", "matching_pairs", "recall"],
        title=f"Likelihood-threshold selection — {dataset.name} "
              f"({dataset.record_count} records, {dataset.match_count} matches)",
    ))
    return 0


def _cmd_generate_hits(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    pairs = SimJoinLikelihood(
        backend=args.join_backend, workers=args.join_workers or None,
        pool_mode=args.join_pool,
    ).estimate(
        dataset.store, min_likelihood=args.threshold, cross_sources=dataset.cross_sources
    )
    rows = []
    algorithms = args.algorithm or available_generators()
    for name in algorithms:
        batch = get_cluster_generator(name, cluster_size=args.cluster_size).generate(pairs)
        rows.append({
            "algorithm": name,
            "pairs": len(pairs),
            "hits": batch.hit_count,
            "valid_cover": batch.is_valid_cover(),
        })
    _LOG.info(format_table(
        rows,
        columns=["algorithm", "pairs", "hits", "valid_cover"],
        title=f"Cluster-based HIT generation — {dataset.name}, "
              f"threshold {args.threshold}, k={args.cluster_size}",
    ))
    return 0


def _write_metrics_out(path: Optional[str]) -> None:
    """Export the live registry as Prometheus text to ``path`` (if any)."""
    if not path:
        return
    snapshot = obs.snapshot()
    if snapshot is None:
        _LOG.warning("note: --metrics-out ignored (metrics are not enabled)")
        return
    Path(path).write_text(obs.to_prometheus(snapshot), encoding="utf-8")
    _LOG.info(f"metrics exported to {path}")


def _cmd_resolve(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    config = WorkflowConfig(
        likelihood_threshold=args.threshold,
        hit_type=args.hit_type,
        cluster_size=args.cluster_size,
        pairs_per_hit=args.pairs_per_hit,
        use_qualification_test=args.qualification_test,
        join_backend=args.join_backend,
        join_workers=args.join_workers,
        join_pool=args.join_pool,
        metrics_enabled=args.metrics or bool(args.metrics_out),
        trace_path=args.trace,
        seed=args.seed,
    )
    result = HybridWorkflow(config).resolve(dataset)
    precision, recall = precision_recall(result.matches, dataset.ground_truth)
    _LOG.info(f"dataset            : {dataset.name} "
              f"({dataset.record_count} records, {dataset.match_count} true matches)")
    _LOG.info(f"candidates         : {result.candidate_count}")
    _LOG.info(f"HITs / assignments : {result.hit_count} / {result.assignment_count} "
              f"({result.generator_name})")
    _LOG.info(f"crowd cost         : ${result.cost:.2f}")
    _LOG.info(f"est. completion    : {result.latency.total_minutes:.0f} minutes")
    _LOG.info(f"matches found      : {len(result.matches)}")
    _LOG.info(f"precision / recall : {precision:.1%} / {recall:.1%} "
              f"(F1 {f1_score(result.matches, dataset.ground_truth):.3f})")
    _LOG.info(f"recall ceiling     : {result.recall_ceiling:.1%}")
    _write_metrics_out(args.metrics_out)
    obs.deactivate()
    return 0


def _load_update_records(path: str) -> List[Record]:
    """Parse revised records from a JSON file (array or one object per line).

    Each object needs a ``record_id``; attributes come from an
    ``attributes`` mapping when present, otherwise from the remaining
    top-level keys (the :meth:`repro.records.record.Record.as_dict` shape).
    ``source`` is optional in both forms.
    """
    import json

    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text.startswith("["):
        payloads = json.loads(text)
    else:
        payloads = [json.loads(line) for line in text.splitlines() if line.strip()]
    records = []
    for payload in payloads:
        record_id = payload.get("record_id")
        if not record_id:
            raise RecordError(f"update entry without a record_id: {payload!r}")
        if "attributes" in payload:
            attributes = payload["attributes"]
            source = payload.get("source")
        else:
            attributes = {
                key: value
                for key, value in payload.items()
                if key not in ("record_id", "source")
            }
            source = payload.get("source")
        records.append(
            Record(record_id=record_id, attributes=attributes, source=source)
        )
    return records


def _cmd_resolve_stream(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, args.scale, args.seed)
    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.from_file(args.fault_plan).to_dict()
        except (OSError, ValueError) as error:
            _LOG.error(f"error: cannot read --fault-plan: {error}")
            return 2
    # Observability is per process, not per stored session: enable it
    # before restore so page-in timings and counter continuity are covered.
    if args.metrics or args.metrics_out or args.trace:
        obs.activate(trace_path=args.trace)
    if args.resume:
        if not args.checkpoint_dir:
            _LOG.error("error: --resume requires --checkpoint-dir")
            return 2
        resolver = StreamingResolver.restore(args.checkpoint_dir)
        config = resolver.config
        _LOG.info(f"resumed session from {args.checkpoint_dir}: "
                  f"{resolver.record_count} records, {resolver.candidate_count} pairs, "
                  f"{resolver.events_applied} journal events")
        # The stored configuration governs a resumed session; flags that
        # would change the workflow are ignored, and we say so when they
        # conflict instead of silently pretending they applied.
        conflicts = [
            f"--{name.replace('_', '-')}={given} (session: {stored})"
            for name, given, stored in [
                ("threshold", args.threshold, config.likelihood_threshold),
                ("batch-size", args.batch_size, config.stream_batch_size),
                ("recrowd-policy", args.recrowd_policy, config.recrowd_policy),
                ("aggregation-scope", args.aggregation_scope,
                 config.streaming_aggregation_scope),
                ("staleness-epsilon", args.staleness_epsilon, config.staleness_epsilon),
                ("crowd-mode", args.crowd_mode, config.crowd_mode),
                ("vote-timeout", args.vote_timeout, config.vote_timeout),
                ("max-inflight-hits", args.max_inflight_hits, config.max_inflight_hits),
                ("seed", args.seed, config.seed),
            ]
            if given != stored
        ]
        if conflicts:
            _LOG.warning("note: --resume keeps the session's stored configuration; "
                         "ignoring " + ", ".join(conflicts))
        # Re-register the dataset's ground truth: a no-op when resuming the
        # same dataset (truth is a set), and the difference between wrong
        # answers and correct ones if the dataset grew since the session
        # was created.
        resolver.add_truth(dataset.ground_truth)
    else:
        config = WorkflowConfig(
            likelihood_threshold=args.threshold,
            hit_type=args.hit_type,
            cluster_size=args.cluster_size,
            pairs_per_hit=args.pairs_per_hit,
            join_backend=args.join_backend,
            join_workers=args.join_workers,
            join_pool=args.join_pool,
            vote_mode="per-pair",
            stream_batch_size=args.batch_size,
            recrowd_policy=args.recrowd_policy,
            streaming_aggregation_scope=args.aggregation_scope,
            staleness_epsilon=args.staleness_epsilon,
            crowd_mode=args.crowd_mode,
            vote_timeout=args.vote_timeout,
            max_inflight_hits=args.max_inflight_hits,
            backpressure_policy=args.backpressure_policy,
            fault_plan=fault_plan,
            checkpoint_dir=args.checkpoint_dir,
            storage_backend=args.storage_backend,
            storage_path=args.storage_path,
            metrics_enabled=args.metrics or bool(args.metrics_out),
            trace_path=args.trace,
            **(
                {"checkpoint_every_batches": args.checkpoint_every}
                if args.checkpoint_every is not None
                else {}
            ),
            seed=args.seed,
        )
        resolver = StreamingResolver(config=config, cross_sources=dataset.cross_sources)
        resolver.add_truth(dataset.ground_truth)
    # A resumed session already holds a prefix of the dataset; only the
    # records it has not seen yet arrive now.
    records = [record for record in dataset.store if record.record_id not in resolver.store]
    result = resolver.snapshot()
    _LOG.info(f"streaming {dataset.name}: {len(records)} records in batches of "
              f"{config.stream_batch_size} (re-crowd policy: {config.recrowd_policy})")
    # Per-invocation delta totals for the summary line (tracked CLI-side so
    # the line works with or without --metrics).
    stale_total = invalidated_total = retracted_total = 0
    batches_done = 0
    for start in range(0, len(records), config.stream_batch_size):
        if args.max_batches and batches_done >= args.max_batches:
            break
        result = resolver.add_batch(records[start : start + config.stream_batch_size])
        batches_done += 1
        delta = result.delta
        stale_total += delta.stale_skipped_components
        _LOG.info(f"  batch {delta.batch_index:>3}: +{delta.new_records} records, "
                  f"+{delta.new_candidate_pairs} pairs | "
                  f"{delta.dirty_components} dirty / {delta.clean_components} clean components | "
                  f"{delta.regenerated_hits} HITs regenerated, "
                  f"{delta.crowdsourced_pairs} pairs crowdsourced, "
                  f"{delta.reused_vote_pairs} vote sets reused | "
                  f"matches so far: {len(result.matches)}")
    if args.max_batches and len(records) > batches_done * config.stream_batch_size:
        remaining = len(records) - batches_done * config.stream_batch_size
        if config.checkpoint_dir:
            resolver.save()
            _LOG.info(f"stopped after {batches_done} batches; {remaining} records "
                      f"pending — resume with --checkpoint-dir {config.checkpoint_dir} --resume")
        else:
            _LOG.info(f"stopped after {batches_done} batches; {remaining} records pending "
                      f"(no --checkpoint-dir, progress is not durable)")
        _write_metrics_out(args.metrics_out)
        obs.deactivate()
        return 0
    # Post-ingest mutations: retractions and record revisions, each
    # re-resolving only its provenance-bounded blast radius.
    for record_id in args.retract or []:
        try:
            result = resolver.retract(record_id)
        except RecordError as error:
            _LOG.error(f"error: {error}")
            return 2
        delta = result.delta
        stale_total += delta.stale_skipped_components
        invalidated_total += delta.invalidated_pairs
        retracted_total += delta.retracted_records
        _LOG.info(f"  retract {record_id}: -{delta.invalidated_pairs} pairs invalidated | "
                  f"{delta.dirty_components} dirty / {delta.clean_components} clean components | "
                  f"matches now: {len(result.matches)}")
    if args.update_file:
        try:
            revised = _load_update_records(args.update_file)
        except (OSError, ValueError) as error:
            _LOG.error(f"error: cannot read --update-file: {error}")
            return 2
        for record in revised:
            try:
                result = resolver.update(record)
            except RecordError as error:
                _LOG.error(f"error: {error}")
                return 2
            delta = result.delta
            stale_total += delta.stale_skipped_components
            invalidated_total += delta.invalidated_pairs
            retracted_total += delta.retracted_records
            _LOG.info(f"  update {record.record_id}: -{delta.invalidated_pairs} pairs invalidated, "
                      f"+{delta.new_candidate_pairs} rejoined | "
                      f"{delta.regenerated_hits} HITs regenerated, "
                      f"{delta.crowdsourced_pairs} pairs crowdsourced | "
                      f"matches now: {len(result.matches)}")
    # Settle any components deferred by bounded-staleness aggregation
    # (no-op at the default epsilon of 0).
    result = resolver.flush()
    precision, recall = precision_recall(result.matches, dataset.ground_truth)
    # The delta-totals line stays ABOVE the six-line summary block: resumed
    # and uninterrupted runs must keep identical final summaries (the CLI
    # round-trip test compares the last six stdout lines).
    _LOG.info(f"delta totals       : {stale_total} stale-skipped components, "
              f"{invalidated_total} pairs invalidated, "
              f"{retracted_total} records retracted")
    _LOG.info(f"candidates         : {result.candidate_count}")
    _LOG.info(f"HITs / assignments : {result.hit_count} / {result.assignment_count} "
              f"({result.generator_name})")
    _LOG.info(f"crowd cost         : ${result.cost:.2f}")
    _LOG.info(f"matches found      : {len(result.matches)}")
    _LOG.info(f"precision / recall : {precision:.1%} / {recall:.1%} "
              f"(F1 {f1_score(result.matches, dataset.ground_truth):.3f})")
    _LOG.info(f"recall ceiling     : {result.recall_ceiling:.1%}")
    _write_metrics_out(args.metrics_out)
    obs.deactivate()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render a per-session cost report from a store or a trace file."""
    try:
        if args.trace:
            report = CostReport.from_trace(args.trace)
        elif args.store:
            report = CostReport.from_store(args.store)
        elif args.checkpoint_dir:
            report = CostReport.from_store(
                str(Path(args.checkpoint_dir) / STORE_FILENAME)
            )
        else:
            _LOG.error("error: stats needs --store, --checkpoint-dir or --trace")
            return 2
    except (OSError, ValueError) as error:
        _LOG.error(f"error: {error}")
        return 2
    if args.json:
        _LOG.info(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        _LOG.info(report.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resolution service until SIGINT/SIGTERM."""
    from repro.service.app import run_service

    if args.metrics or args.metrics_out or args.trace:
        obs.activate(trace_path=args.trace)
    try:
        run_service(
            host=args.host,
            port=args.port,
            shard_count=args.shards,
            queue_depth=args.queue_depth,
            port_file=args.port_file,
        )
    finally:
        _write_metrics_out(args.metrics_out)
        obs.deactivate()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CrowdER hybrid human-machine entity resolution"
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="also show library debug logging (repro.* loggers)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only show warnings and errors")
    subparsers = parser.add_subparsers(dest="command", required=True)

    table = subparsers.add_parser("threshold-table", help="print the Table-2 threshold/recall table")
    _add_dataset_arguments(table)
    table.add_argument("--thresholds", type=float, nargs="+", default=[0.5, 0.4, 0.3, 0.2, 0.1])
    table.set_defaults(handler=_cmd_threshold_table)

    hits = subparsers.add_parser("generate-hits", help="compare cluster-based HIT generators")
    _add_dataset_arguments(hits)
    hits.add_argument("--threshold", type=float, default=0.2, help="likelihood threshold")
    hits.add_argument("--cluster-size", type=int, default=10, help="cluster-size threshold k")
    hits.add_argument("--algorithm", action="append", choices=available_generators(),
                      help="algorithm(s) to run (default: all)")
    _add_backend_argument(hits)
    hits.set_defaults(handler=_cmd_generate_hits)

    resolve = subparsers.add_parser("resolve", help="run the full hybrid workflow")
    _add_dataset_arguments(resolve)
    resolve.add_argument("--threshold", type=float, default=0.35, help="likelihood threshold")
    resolve.add_argument("--hit-type", choices=("cluster", "pair"), default="cluster")
    resolve.add_argument("--cluster-size", type=int, default=10)
    resolve.add_argument("--pairs-per-hit", type=int, default=16)
    resolve.add_argument("--qualification-test", action="store_true",
                         help="require workers to pass a qualification test")
    _add_backend_argument(resolve)
    _add_obs_arguments(resolve)
    resolve.set_defaults(handler=_cmd_resolve)

    stream = subparsers.add_parser(
        "resolve-stream",
        help="replay the dataset through the streaming incremental resolver",
    )
    _add_dataset_arguments(stream)
    stream.add_argument("--threshold", type=float, default=0.35, help="likelihood threshold")
    stream.add_argument("--hit-type", choices=("cluster", "pair"), default="cluster")
    stream.add_argument("--cluster-size", type=int, default=10)
    stream.add_argument("--pairs-per-hit", type=int, default=16)
    stream.add_argument("--batch-size", type=int, default=64,
                        help="records per arrival batch")
    stream.add_argument("--recrowd-policy", choices=("never", "dirty"), default="never",
                        help="re-ask already-voted pairs in dirty components?")
    stream.add_argument("--aggregation-scope", choices=("component", "global"),
                        default="component",
                        help="re-aggregate only dirty components or all votes")
    stream.add_argument("--staleness-epsilon", type=int, default=0,
                        help="skip re-aggregating a dirty component that gained "
                             "fewer than this many new votes (0 = always re-run)")
    stream.add_argument("--crowd-mode", choices=("sync", "async"), default="sync",
                        help="sync: votes return with the publish call; async: "
                             "HITs are published and votes arrive later "
                             "(out of order, with retries and timeouts)")
    stream.add_argument("--vote-timeout", type=int, default=8,
                        help="async mode: ticks before an outstanding "
                             "assignment times out and is retried")
    stream.add_argument("--max-inflight-hits", type=int, default=64,
                        help="async mode: backpressure window — HITs with "
                             "undelivered votes allowed at once (0 = unbounded)")
    stream.add_argument("--backpressure-policy", choices=("block", "shed"),
                        default="block",
                        help="async mode: when the in-flight window is full, "
                             "block (advance the clock until it drains) or "
                             "shed (defer publishing to the next batch)")
    stream.add_argument("--fault-plan", type=str, default=None, metavar="FILE",
                        help="async mode: JSON fault-injection plan (seeded "
                             "delays, drops, duplicates, reordering, worker "
                             "churn) applied to vote delivery")
    stream.add_argument("--checkpoint-dir", type=str, default=None,
                        help="make the session durable: write-ahead journal + "
                             "periodic snapshots in this directory")
    stream.add_argument("--storage-backend", choices=("memory", "sqlite"),
                        default="memory",
                        help="where session state lives: in process memory or "
                             "in a WAL-mode SQLite store (restore becomes a "
                             "page-in; results are bit-identical)")
    stream.add_argument("--storage-path", type=str, default=None,
                        help="SQLite store file for --storage-backend sqlite "
                             "(default: store.sqlite inside --checkpoint-dir)")
    stream.add_argument("--retract", action="append", metavar="ID", default=None,
                        help="after the replay, withdraw this record id and "
                             "re-resolve only its blast radius (repeatable)")
    stream.add_argument("--update-file", type=str, default=None,
                        help="after the replay, apply revised records from "
                             "this JSON file (array or one object per line, "
                             "each with a record_id)")
    stream.add_argument("--checkpoint-every", type=int, default=None,
                        help="snapshot cadence in applied events (0 = journal "
                             "only; default: the config default of 16)")
    stream.add_argument("--resume", action="store_true",
                        help="restore the session from --checkpoint-dir and "
                             "continue with the records it has not seen yet")
    stream.add_argument("--max-batches", type=int, default=0,
                        help="stop after this many batches this invocation "
                             "(0 = run to completion); with --checkpoint-dir "
                             "the rest can be resumed later")
    _add_backend_argument(stream)
    _add_obs_arguments(stream)
    stream.set_defaults(handler=_cmd_resolve_stream)

    stats = subparsers.add_parser(
        "stats",
        help="render a per-session cost report (HITs, votes, machine vs. "
             "crowd time split) from a store or trace file",
    )
    stats.add_argument("--store", type=str, default=None, metavar="PATH",
                       help="SQLite session store file to report on")
    stats.add_argument("--checkpoint-dir", type=str, default=None,
                       help="checkpoint directory holding a SQLite store "
                            f"({STORE_FILENAME})")
    stats.add_argument("--trace", type=str, default=None, metavar="PATH",
                       help="JSONL trace file to report on instead of a store")
    stats.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    stats.set_defaults(handler=_cmd_stats)

    serve = subparsers.add_parser(
        "serve",
        help="run the resolution service (asyncio HTTP server hosting "
             "concurrent streaming sessions on sharded workers)",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="interface to bind")
    serve.add_argument("--port", type=int, default=8722,
                       help="TCP port (0 = pick an ephemeral port)")
    serve.add_argument("--shards", type=int, default=4,
                       help="session shards; each shard serializes its "
                            "sessions' requests on one dedicated thread")
    serve.add_argument("--port-file", type=str, default=None,
                       help="write the bound port to this file once listening "
                            "(pairs with --port 0 for scripted clients)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="per-shard request queue depth; a full queue "
                            "answers 429 with Retry-After")
    _add_obs_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(-1 if args.quiet else args.verbose)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
