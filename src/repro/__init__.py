"""CrowdER reproduction: hybrid human-machine entity resolution.

A from-scratch Python implementation of *CrowdER: Crowdsourcing Entity
Resolution* (Wang, Kraska, Franklin, Feng — PVLDB 5(11), 2012), including
the machine-based similarity substrate (pluggable serial, vectorized and
sharded-parallel join backends), pair-based and cluster-based HIT
generation (with the paper's two-tiered heuristic and all evaluated
baselines), a simulated crowdsourcing platform, answer aggregation, a
streaming incremental resolution engine with durable checkpoint/restore
and provenance-scoped record retraction, and the full evaluation harness.

Typical use::

    from repro import HybridWorkflow, WorkflowConfig, load_restaurant

    dataset = load_restaurant()
    workflow = HybridWorkflow(WorkflowConfig(likelihood_threshold=0.35))
    result = workflow.resolve(dataset)
    print(result.summary())

For long-lived sessions (arriving batches, retractions, crash recovery)
see :mod:`repro.streaming` and the ``docs/`` site.
"""

from repro.core import (
    HybridWorkflow,
    ResolutionResult,
    SimJoinRanker,
    StreamingDelta,
    SVMRanker,
    WorkflowConfig,
    crowd_equijoin,
    human_only_hit_count,
)
from repro.datasets import (
    Dataset,
    load_product,
    load_product_dup,
    load_restaurant,
    paper_example_matches,
    paper_example_store,
)
from repro.hit import (
    ClusterBasedHIT,
    HITBatch,
    PairBasedHIT,
    PairHITGenerator,
    TwoTieredClusterGenerator,
    get_cluster_generator,
)
from repro.records import PairSet, Record, RecordPair, RecordStore
from repro.streaming import IncrementalSimJoin, StreamingResolver, resolve_stream

__version__ = "1.2.0"

__all__ = [
    "HybridWorkflow",
    "WorkflowConfig",
    "ResolutionResult",
    "StreamingDelta",
    "StreamingResolver",
    "IncrementalSimJoin",
    "resolve_stream",
    "SimJoinRanker",
    "SVMRanker",
    "crowd_equijoin",
    "human_only_hit_count",
    "Dataset",
    "load_restaurant",
    "load_product",
    "load_product_dup",
    "paper_example_store",
    "paper_example_matches",
    "Record",
    "RecordStore",
    "RecordPair",
    "PairSet",
    "PairBasedHIT",
    "ClusterBasedHIT",
    "HITBatch",
    "PairHITGenerator",
    "TwoTieredClusterGenerator",
    "get_cluster_generator",
    "__version__",
]
