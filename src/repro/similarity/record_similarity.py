"""Record-level similarity functions.

A :class:`RecordSimilarity` maps a pair of :class:`~repro.records.Record`
objects to a value in [0, 1].  The paper's machine pass ("simjoin") is the
Jaccard similarity over the pooled token sets of the two records, which is
implemented by :class:`JaccardRecordSimilarity`.  :class:`AttributeSimilarity`
applies a string similarity to a single attribute, which is how the SVM
feature vectors are built.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.records.record import Record
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.similarity.edit_distance import levenshtein_similarity
from repro.similarity.set_similarity import (
    cosine_token_similarity,
    dice_similarity,
    jaccard_similarity,
    overlap_coefficient,
)


class RecordSimilarity:
    """Base class: a callable similarity between two records."""

    name = "record_similarity"

    def similarity(self, record_a: Record, record_b: Record) -> float:
        """Return the similarity of the two records in [0, 1]."""
        raise NotImplementedError

    def __call__(self, record_a: Record, record_b: Record) -> float:
        return self.similarity(record_a, record_b)


class JaccardRecordSimilarity(RecordSimilarity):
    """Jaccard similarity over pooled record token sets (the paper's simjoin).

    Parameters
    ----------
    attributes:
        Attributes whose values are tokenised and pooled.  ``None`` pools all
        attributes, which is what Section 7.1 describes ("a token set for
        each record, which consisted of the tokens from all attribute
        values").
    """

    name = "jaccard"

    def __init__(self, attributes: Optional[Sequence[str]] = None) -> None:
        self.attributes = list(attributes) if attributes is not None else None
        self._tokenizer = WhitespaceTokenizer()

    def similarity(self, record_a: Record, record_b: Record) -> float:
        tokens_a = record_token_set(record_a, self.attributes, self._tokenizer)
        tokens_b = record_token_set(record_b, self.attributes, self._tokenizer)
        return jaccard_similarity(tokens_a, tokens_b)


_SET_FUNCTIONS = {
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "dice": dice_similarity,
    "cosine": cosine_token_similarity,
}


class AttributeSimilarity(RecordSimilarity):
    """A string similarity applied to one attribute of both records.

    Supported functions:

    * ``"edit"`` — normalised Levenshtein similarity on the raw values,
    * ``"cosine"`` — token-frequency cosine on whitespace tokens,
    * ``"jaccard"``, ``"overlap"``, ``"dice"`` — set similarities on tokens.
    """

    def __init__(self, attribute: str, function: str = "jaccard") -> None:
        if function != "edit" and function not in _SET_FUNCTIONS:
            raise ValueError(
                f"unknown similarity function {function!r}; "
                f"expected 'edit' or one of {sorted(_SET_FUNCTIONS)}"
            )
        self.attribute = attribute
        self.function = function
        self.name = f"{function}({attribute})"
        self._tokenizer = WhitespaceTokenizer()

    def similarity(self, record_a: Record, record_b: Record) -> float:
        value_a = record_a.get(self.attribute, "")
        value_b = record_b.get(self.attribute, "")
        if self.function == "edit":
            return levenshtein_similarity(value_a.lower(), value_b.lower())
        if self.function == "cosine":
            return cosine_token_similarity(
                self._tokenizer.tokenize(value_a), self._tokenizer.tokenize(value_b)
            )
        set_function = _SET_FUNCTIONS[self.function]
        return set_function(
            self._tokenizer.token_set(value_a), self._tokenizer.token_set(value_b)
        )


class CallableRecordSimilarity(RecordSimilarity):
    """Adapter wrapping an arbitrary ``(Record, Record) -> float`` callable."""

    def __init__(self, function: Callable[[Record, Record], float], name: str = "custom") -> None:
        self._function = function
        self.name = name

    def similarity(self, record_a: Record, record_b: Record) -> float:
        value = self._function(record_a, record_b)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"similarity callable returned {value}, expected a value in [0, 1]")
        return value


def average_similarity(
    similarities: Iterable[RecordSimilarity],
) -> CallableRecordSimilarity:
    """Combine several record similarities by unweighted averaging."""
    functions = list(similarities)
    if not functions:
        raise ValueError("at least one similarity is required")

    def combined(record_a: Record, record_b: Record) -> float:
        return sum(f.similarity(record_a, record_b) for f in functions) / len(functions)

    name = "avg(" + ",".join(f.name for f in functions) + ")"
    return CallableRecordSimilarity(combined, name=name)
