"""TF-IDF vectorisation and cosine similarity over a record corpus.

The token-frequency cosine in :mod:`repro.similarity.set_similarity` needs
no corpus statistics; this module adds the corpus-weighted (TF-IDF) variant,
which the blocking layer and some ablations use to down-weight very common
tokens such as "apple" in the Product dataset.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Sequence


class TfidfVectorizer:
    """Minimal TF-IDF vectoriser over token lists.

    The vectoriser is fitted on a corpus of token lists; ``transform``
    returns sparse vectors as ``{token: weight}`` dictionaries, already
    L2-normalised so that cosine similarity is a plain dot product.
    """

    def __init__(self, smooth_idf: bool = True) -> None:
        self.smooth_idf = smooth_idf
        self._idf: Dict[str, float] = {}
        self._n_documents = 0

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called on a non-empty corpus."""
        return self._n_documents > 0

    def fit(self, corpus: Iterable[Sequence[str]]) -> "TfidfVectorizer":
        """Compute inverse document frequencies from the corpus."""
        document_frequency: Counter = Counter()
        n_documents = 0
        for tokens in corpus:
            n_documents += 1
            for token in set(tokens):
                document_frequency[token] += 1
        self._n_documents = n_documents
        self._idf = {}
        for token, frequency in document_frequency.items():
            if self.smooth_idf:
                idf = math.log((1 + n_documents) / (1 + frequency)) + 1.0
            else:
                idf = math.log(n_documents / frequency) + 1.0
            self._idf[token] = idf
        return self

    def idf(self, token: str) -> float:
        """Return the IDF weight of a token (unseen tokens get the max IDF)."""
        if not self.is_fitted:
            raise RuntimeError("TfidfVectorizer must be fitted before use")
        if token in self._idf:
            return self._idf[token]
        if self.smooth_idf:
            return math.log(1 + self._n_documents) + 1.0
        return math.log(max(self._n_documents, 1)) + 1.0

    def transform(self, tokens: Sequence[str]) -> Dict[str, float]:
        """Return the L2-normalised TF-IDF vector of a token list."""
        counts = Counter(tokens)
        vector = {token: count * self.idf(token) for token, count in counts.items()}
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm == 0.0:
            return {}
        return {token: weight / norm for token, weight in vector.items()}

    def fit_transform(self, corpus: Sequence[Sequence[str]]) -> List[Dict[str, float]]:
        """Fit on the corpus and return the vector of every document."""
        self.fit(corpus)
        return [self.transform(tokens) for tokens in corpus]


def sparse_dot(vector_a: Mapping[str, float], vector_b: Mapping[str, float]) -> float:
    """Dot product of two sparse ``{token: weight}`` vectors."""
    if len(vector_a) > len(vector_b):
        vector_a, vector_b = vector_b, vector_a
    return sum(weight * vector_b.get(token, 0.0) for token, weight in vector_a.items())


def cosine_tfidf_similarity(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    vectorizer: TfidfVectorizer,
) -> float:
    """Cosine similarity of two token lists under a fitted TF-IDF vectoriser."""
    vector_a = vectorizer.transform(tokens_a)
    vector_b = vectorizer.transform(tokens_b)
    if not vector_a and not vector_b:
        return 1.0
    return sparse_dot(vector_a, vector_b)
