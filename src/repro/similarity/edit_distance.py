"""Character-level string similarities: Levenshtein, Jaro and Jaro-Winkler.

Edit distance is one of the two similarity functions the paper's SVM
baseline computes per attribute (following Koepcke et al. [18]).  The
Levenshtein implementation uses the standard two-row dynamic program,
optionally with an early-exit band when only a similarity above a cutoff
matters.
"""

from __future__ import annotations


def levenshtein_distance(text_a: str, text_b: str) -> int:
    """Classic Levenshtein (insert/delete/substitute) distance.

    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    if text_a == text_b:
        return 0
    if not text_a:
        return len(text_b)
    if not text_b:
        return len(text_a)
    # Ensure text_b is the shorter string so the row is small.
    if len(text_b) > len(text_a):
        text_a, text_b = text_b, text_a
    previous = list(range(len(text_b) + 1))
    current = [0] * (len(text_b) + 1)
    for i, char_a in enumerate(text_a, start=1):
        current[0] = i
        for j, char_b in enumerate(text_b, start=1):
            substitution_cost = 0 if char_a == char_b else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(text_b)]


def levenshtein_similarity(text_a: str, text_b: str) -> float:
    """Normalised edit similarity: 1 - distance / max(len_a, len_b).

    Two empty strings are perfectly similar (1.0).
    """
    if not text_a and not text_b:
        return 1.0
    longest = max(len(text_a), len(text_b))
    return 1.0 - levenshtein_distance(text_a, text_b) / longest


def jaro_similarity(text_a: str, text_b: str) -> float:
    """Jaro similarity between two strings (in [0, 1])."""
    if text_a == text_b:
        return 1.0
    len_a, len_b = len(text_a), len(text_b)
    if len_a == 0 or len_b == 0:
        return 0.0
    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)

    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char_a in enumerate(text_a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if matched_b[j] or text_b[j] != char_a:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i in range(len_a):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if text_a[i] != text_b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(text_a: str, text_b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity with the standard common-prefix boost."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError("prefix_weight must be in [0, 0.25]")
    jaro = jaro_similarity(text_a, text_b)
    prefix_length = 0
    for char_a, char_b in zip(text_a[:4], text_b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)
