"""Set-based similarity functions (Jaccard, overlap, Dice, token cosine).

These operate on token sets (or token multisets for the cosine variant) and
return a value in [0, 1].  Jaccard over record token sets is the likelihood
function used by the paper's hybrid workflow (Section 7.1).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence, Set


def _as_set(tokens: Iterable[str]) -> Set[str]:
    return set(tokens)


def jaccard_similarity(tokens_a: Iterable[str], tokens_b: Iterable[str]) -> float:
    """Jaccard similarity |A ∩ B| / |A ∪ B| between two token sets.

    Both sets empty is defined as similarity 1.0 (two empty records are
    textually identical); exactly one empty set gives 0.0.

    >>> jaccard_similarity({"ipad", "16gb", "wifi", "white", "two"},
    ...                    {"ipad", "16gb", "wifi", "white", "2nd", "generation"})
    0.5714285714285714
    """
    set_a = _as_set(tokens_a)
    set_b = _as_set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union


def overlap_coefficient(tokens_a: Iterable[str], tokens_b: Iterable[str]) -> float:
    """Overlap coefficient |A ∩ B| / min(|A|, |B|)."""
    set_a = _as_set(tokens_a)
    set_b = _as_set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def dice_similarity(tokens_a: Iterable[str], tokens_b: Iterable[str]) -> float:
    """Sørensen–Dice coefficient 2|A ∩ B| / (|A| + |B|)."""
    set_a = _as_set(tokens_a)
    set_b = _as_set(tokens_b)
    if not set_a and not set_b:
        return 1.0
    total = len(set_a) + len(set_b)
    if total == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / total


def cosine_token_similarity(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Cosine similarity between token frequency vectors.

    This is the unweighted (term-frequency) cosine similarity used as one of
    the SVM features in the paper's learning-based baseline.
    """
    counts_a = Counter(tokens_a)
    counts_b = Counter(tokens_b)
    if not counts_a and not counts_b:
        return 1.0
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(counts_a[token] * counts_b.get(token, 0) for token in counts_a)
    norm_a = math.sqrt(sum(count * count for count in counts_a.values()))
    norm_b = math.sqrt(sum(count * count for count in counts_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def jaccard_bag_similarity(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Multiset (bag) Jaccard similarity using minimum / maximum counts."""
    counts_a = Counter(tokens_a)
    counts_b = Counter(tokens_b)
    if not counts_a and not counts_b:
        return 1.0
    all_tokens = set(counts_a) | set(counts_b)
    intersection = sum(min(counts_a.get(t, 0), counts_b.get(t, 0)) for t in all_tokens)
    union = sum(max(counts_a.get(t, 0), counts_b.get(t, 0)) for t in all_tokens)
    if union == 0:
        return 1.0
    return intersection / union
