"""Similarity functions used by the machine-based ER techniques.

The paper's similarity-based technique ("simjoin") uses Jaccard similarity
over token sets; the learning-based baseline (SVM) uses edit distance and
cosine similarity computed per attribute.  This package implements those
plus several standard set/string similarities used by the blocking layer
and by the ablation benchmarks.
"""

from repro.similarity.set_similarity import (
    jaccard_similarity,
    overlap_coefficient,
    dice_similarity,
    cosine_token_similarity,
)
from repro.similarity.edit_distance import (
    levenshtein_distance,
    levenshtein_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
)
from repro.similarity.cosine import TfidfVectorizer, cosine_tfidf_similarity
from repro.similarity.record_similarity import (
    RecordSimilarity,
    JaccardRecordSimilarity,
    AttributeSimilarity,
)
from repro.similarity.feature_vectors import FeatureExtractor, FeatureSpec

__all__ = [
    "jaccard_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "cosine_token_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "TfidfVectorizer",
    "cosine_tfidf_similarity",
    "RecordSimilarity",
    "JaccardRecordSimilarity",
    "AttributeSimilarity",
    "FeatureExtractor",
    "FeatureSpec",
]
