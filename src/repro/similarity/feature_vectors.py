"""Feature-vector extraction for the learning-based ER baseline.

Section 2.1.2 of the paper describes learning-based ER: each record pair is
represented as a feature vector in which every dimension is the value of
some similarity function on some attribute.  The paper's SVM uses edit
distance and cosine similarity on the four Restaurant attributes (an
8-dimensional vector) and on the Product name attribute (2-dimensional).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.records.record import Record, RecordStore
from repro.similarity.record_similarity import AttributeSimilarity


@dataclass(frozen=True)
class FeatureSpec:
    """One feature dimension: a similarity function applied to an attribute."""

    attribute: str
    function: str

    @property
    def name(self) -> str:
        """Human-readable feature name, e.g. ``edit(name)``."""
        return f"{self.function}({self.attribute})"


class FeatureExtractor:
    """Turns record pairs into numpy feature vectors.

    Parameters
    ----------
    specs:
        The feature dimensions.  The default constructor helpers
        :meth:`for_attributes` builds the cross product of attributes and
        similarity functions, matching the construction in the paper.
    """

    def __init__(self, specs: Sequence[FeatureSpec]) -> None:
        if not specs:
            raise ValueError("at least one feature specification is required")
        self.specs = list(specs)
        self._similarities = [
            AttributeSimilarity(spec.attribute, spec.function) for spec in self.specs
        ]

    @classmethod
    def for_attributes(
        cls,
        attributes: Sequence[str],
        functions: Sequence[str] = ("edit", "cosine"),
    ) -> "FeatureExtractor":
        """Build the |attributes| x |functions| feature space of the paper."""
        specs = [
            FeatureSpec(attribute=attribute, function=function)
            for attribute in attributes
            for function in functions
        ]
        return cls(specs)

    @property
    def dimension(self) -> int:
        """Number of feature dimensions."""
        return len(self.specs)

    @property
    def feature_names(self) -> List[str]:
        """Names of the feature dimensions in order."""
        return [spec.name for spec in self.specs]

    def extract(self, record_a: Record, record_b: Record) -> np.ndarray:
        """Return the feature vector of one record pair."""
        return np.array(
            [similarity.similarity(record_a, record_b) for similarity in self._similarities],
            dtype=float,
        )

    def extract_pairs(
        self,
        store: RecordStore,
        pair_keys: Sequence[Tuple[str, str]],
    ) -> np.ndarray:
        """Return the feature matrix (len(pairs) x dimension) for pair keys."""
        if not pair_keys:
            return np.zeros((0, self.dimension), dtype=float)
        rows = [
            self.extract(store.get(id_a), store.get(id_b)) for id_a, id_b in pair_keys
        ]
        return np.vstack(rows)
