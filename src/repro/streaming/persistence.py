"""Durable streaming sessions: write-ahead journal plus compacted snapshots.

A crowdsourced resolution session is long-lived — votes arrive over hours
and cost real money — so :class:`repro.streaming.StreamingResolver` can be
made *durable*: point ``WorkflowConfig.checkpoint_dir`` at a directory and
every session event is journaled before it is applied, with periodic
compacted snapshots so recovery does not replay the whole history.

Directory layout::

    checkpoint_dir/
        journal.jsonl            the *active* journal segment (one JSON object per line)
        journal-<a>-<b>.jsonl    closed segments holding events <a>..<b>
        archive/                 closed segments already covered by a snapshot
        snapshot-<seq>.pkl       compacted state after the first <seq> events
        store.sqlite             (sqlite backend only) the paged-in session store

**Segment rotation.**  The active file is rotated — atomically renamed to
``journal-<first>-<last>.jsonl`` — once it holds
``WorkflowConfig.journal_segment_events`` events, so no single file grows
without bound.  :meth:`SessionJournal.compact_covered` then *archives*
every closed segment whose events are fully covered by a snapshot (or by
the SQLite store's committed state): the segment moves into ``archive/``
and stops being scanned on restore.  Rotation is a single ``os.replace``
and archival never touches the active file, so a crash at any point in
the lifecycle leaves a readable journal.

**Journal.**  Each line carries a monotonically increasing ``seq``, an
event ``type``, a ``payload`` and a CRC over all three.  *Intent* events
(``session``, ``truth``, ``batch``, ``retract``, ``update``, ``flush``)
are written **before** the state change they describe is applied (the
write-ahead rule); *outcome* events (``commit``) are written after, and
record the fresh crowd votes, the delta and a digest of the aggregated
state — so the journal is simultaneously a redo log and an audit trail of
every vote the session paid for.  A line truncated by a crash mid-write is
detected (bad JSON or CRC on the final line) and dropped; corruption
anywhere earlier raises :class:`JournalCorruptionError`.

**Snapshots.**  A snapshot is a pickle of the session's complete state
dict (token vocabulary, flat CSR arrays, union-find forest, vote ledger,
posterior cache, provenance ledger, crowd-cost counters) written to a
temporary file and atomically renamed, tagged with the number of journal
events it reflects.  Restoring loads the newest readable snapshot and
replays only the journal tail — events the snapshot has not seen —
re-deriving votes through the deterministic per-pair oracle and verifying
them against the journaled ``commit`` events.

**Recovery guarantee.**  Because intent events are journaled before they
are applied and every apply is deterministic (per-pair vote mode), a crash
after *any* prefix of events loses nothing: ``restore`` rebuilds exactly
the state of a session that processed that prefix, and replaying the
remaining events yields results bit-identical to a session that never
stopped.  ``tests/test_persistence.py`` property-tests this for random
event schedules and crash points.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import time
import zlib
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.records.record import Record

JOURNAL_FILENAME = "journal.jsonl"
SEGMENT_PATTERN = re.compile(r"^journal-(\d+)-(\d+)\.jsonl$")
ARCHIVE_DIRNAME = "archive"
SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d+)\.pkl$")
FORMAT_VERSION = 1

#: Journal event types that mutate session state (written before applying).
INTENT_EVENT_TYPES = ("session", "truth", "batch", "retract", "update", "flush")
#: Journal event types that record an applied event's outcome.
OUTCOME_EVENT_TYPES = ("commit",)


class PersistenceError(RuntimeError):
    """Raised for invalid checkpoint directories or replay failures."""


class JournalCorruptionError(PersistenceError):
    """Raised when the journal is corrupt beyond a crash-truncated tail."""


# ---------------------------------------------------------------- encoding
def encode_record(record: Record) -> Dict[str, object]:
    """JSON-safe encoding of a :class:`~repro.records.record.Record`."""
    return {
        "record_id": record.record_id,
        "attributes": dict(record.attributes),
        "source": record.source,
    }


def decode_record(payload: Dict[str, object]) -> Record:
    """Inverse of :func:`encode_record`."""
    return Record(
        record_id=payload["record_id"],  # type: ignore[arg-type]
        attributes=payload["attributes"],  # type: ignore[arg-type]
        source=payload["source"],  # type: ignore[arg-type]
    )


def encode_votes(votes: Sequence[Tuple[str, Tuple[str, str], bool]]) -> List[list]:
    """JSON-safe encoding of ``(worker_id, pair_key, answer)`` votes."""
    return [[worker, [key[0], key[1]], bool(answer)] for worker, key, answer in votes]


def decode_votes(payload: Sequence[list]) -> List[Tuple[str, Tuple[str, str], bool]]:
    """Inverse of :func:`encode_votes`."""
    return [(worker, (key[0], key[1]), bool(answer)) for worker, key, answer in payload]


def encode_slot_votes(
    slot_votes: Dict[Tuple[str, str], Dict[int, Tuple[str, Tuple[str, str], bool]]],
) -> List[list]:
    """JSON-safe encoding of the async layer's partial per-pair vote slots.

    One entry per in-flight pair: ``[id_a, id_b, [[slot, worker, answer],
    ...]]`` — the pair key is not repeated inside each vote, it is
    reconstructed on decode.
    """
    return [
        [
            key[0],
            key[1],
            [[slot, vote[0], bool(vote[2])] for slot, vote in sorted(slots.items())],
        ]
        for key, slots in sorted(slot_votes.items())
    ]


def decode_slot_votes(
    payload: Sequence[list],
) -> Dict[Tuple[str, str], Dict[int, Tuple[str, Tuple[str, str], bool]]]:
    """Inverse of :func:`encode_slot_votes`."""
    return {
        (id_a, id_b): {
            slot: (worker, (id_a, id_b), bool(answer))
            for slot, worker, answer in slots
        }
        for id_a, id_b, slots in payload
    }


def encode_pair_map(mapping: Dict[Tuple[str, str], int]) -> List[list]:
    """JSON-safe encoding of a ``pair key -> int`` map (e.g. in-flight rounds)."""
    return [[key[0], key[1], value] for key, value in sorted(mapping.items())]


def decode_pair_map(payload: Sequence[list]) -> Dict[Tuple[str, str], int]:
    """Inverse of :func:`encode_pair_map`."""
    return {(id_a, id_b): value for id_a, id_b, value in payload}


def _line_crc(seq: int, event_type: str, payload: Dict[str, object]) -> int:
    canonical = json.dumps(
        {"seq": seq, "type": event_type, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(canonical.encode("utf-8"))


def state_digest(posteriors: Dict[Tuple[str, str], float], cost: float, hit_count: int) -> str:
    """Cheap, exact digest of a session's aggregated state.

    Floats are hashed through ``float.hex`` so the digest is sensitive to
    the last bit — the recovery property is *bit*-identity, not closeness.
    """
    hasher = sha256()
    for key in sorted(posteriors):
        hasher.update(f"{key[0]}|{key[1]}|{posteriors[key].hex()};".encode("utf-8"))
    hasher.update(f"cost={cost.hex()};hits={hit_count}".encode("utf-8"))
    return hasher.hexdigest()


# ----------------------------------------------------------------- journal
@dataclass
class JournalEvent:
    """One parsed journal line."""

    seq: int
    type: str
    payload: Dict[str, object]


def journal_present(directory: os.PathLike) -> bool:
    """True when the directory holds an active or closed journal segment."""
    directory = Path(directory)
    if (directory / JOURNAL_FILENAME).exists():
        return True
    if not directory.is_dir():
        return False
    return any(SEGMENT_PATTERN.match(name) for name in os.listdir(directory))


class SessionJournal:
    """Append-only, CRC-checked, crash-tolerant, *segmented* event log.

    Appends go to the active file (``journal.jsonl``) and are flushed and
    fsynced by default (``sync=False`` trades the durability of the last
    few events for speed — useful in benchmarks).  With a positive
    ``segment_events`` the active file is rotated — atomically renamed to
    ``journal-<first>-<last>.jsonl`` — once it holds that many events;
    :meth:`compact_covered` then archives closed segments whose events a
    snapshot (or the SQLite store) already covers.  ``segment_events=0``
    (the constructor default) never rotates, which is the pre-segmentation
    behavior.
    """

    def __init__(
        self,
        directory: os.PathLike,
        sync: bool = True,
        start_seq: int = 1,
        segment_events: int = 0,
    ) -> None:
        if segment_events < 0:
            raise ValueError("segment_events must be non-negative (0 = no rotation)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILENAME
        self.sync = sync
        self.segment_events = segment_events
        # Parse (and, if a crash left a torn tail line in the active file,
        # repair) every segment once; the journal is single-writer, so the
        # caches stay accurate.
        self._segments: List[Tuple[int, int, Path]] = []
        self._events = self._scan_and_repair()
        self._next_seq = max(
            self._events[-1].seq + 1 if self._events else 1, start_seq
        )
        # A crash may have interrupted the session between filling the
        # active file and rotating it; finish the rotation now.
        self._maybe_rotate()

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended event (0 if none)."""
        return self._next_seq - 1

    @property
    def event_count(self) -> int:
        """Number of valid, non-archived events across all segments."""
        return len(self._events)

    def segments(self) -> List[Tuple[int, int, Path]]:
        """Closed (rotated, not yet archived) segments as ``(first, last, path)``."""
        return list(self._segments)

    def append(self, event_type: str, payload: Dict[str, object]) -> int:
        """Append one event; returns its sequence number.

        The line is written, flushed and (by default) fsynced before the
        call returns — the write-ahead rule callers rely on.  May rotate
        the active file afterwards (see ``segment_events``).
        """
        seq = self._next_seq
        line = json.dumps(
            {
                "seq": seq,
                "type": event_type,
                "payload": payload,
                "crc": _line_crc(seq, event_type, payload),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        started = time.perf_counter()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            if self.sync:
                os.fsync(handle.fileno())
        if obs.enabled():
            obs.inc("journal_appends_total", 1, type=event_type,
                    help="Events appended to the write-ahead journal.")
            obs.inc("journal_bytes_written_total", len(line.encode("utf-8")) + 1,
                    help="Bytes appended to the write-ahead journal.")
            if self.sync:
                obs.inc("journal_fsyncs_total", 1,
                        help="fsync calls issued by journal appends.")
            obs.observe("journal_append_seconds", time.perf_counter() - started,
                        help="Wall time of one journal append (write+flush+fsync).")
        self._events.append(JournalEvent(seq=seq, type=event_type, payload=payload))
        self._next_seq += 1
        if self._active_first_seq is None:
            self._active_first_seq = seq
        self._active_last_seq = seq
        self._active_count += 1
        self._maybe_rotate()
        return seq

    def events(self) -> List[JournalEvent]:
        """All valid non-archived events, in order (a copy of the cache).

        A final line of the *active* file that failed to parse or checksum
        was treated as a crash artifact and truncated away when the
        journal was opened; the same failure anywhere else — mid-stream in
        the active file or anywhere in a closed segment — raises
        :class:`JournalCorruptionError`, and so do sequence-number gaps.
        """
        return list(self._events)

    # ------------------------------------------------------------ lifecycle
    def release_applied(self, covered_seq: int) -> None:
        """Drop events at or below ``covered_seq`` from the in-memory cache.

        The on-disk files are untouched — this is the live session telling
        the journal it will never re-read events it has already applied
        (restore always re-scans the files in a fresh instance), so their
        decoded payloads need not stay resident.  Without this a long
        session would hold every record batch and vote payload it ever
        journaled in RAM.  After a release, :meth:`events` and
        :attr:`event_count` reflect only the retained tail; reopen the
        directory to see everything.
        """
        if self._events and self._events[0].seq <= covered_seq:
            self._events = [
                event for event in self._events if event.seq > covered_seq
            ]

    def set_segment_events(self, segment_events: int) -> None:
        """Change the rotation threshold (rotating now if already over it).

        Restore opens the journal before the session config is known (the
        config may live in the journal's own first event), so the
        configured threshold is applied after the fact.
        """
        if segment_events < 0:
            raise ValueError("segment_events must be non-negative (0 = no rotation)")
        self.segment_events = segment_events
        self._maybe_rotate()

    def _maybe_rotate(self) -> None:
        if self.segment_events <= 0 or self._active_count < self.segment_events:
            return
        target = self.directory / (
            f"journal-{self._active_first_seq:012d}-{self._active_last_seq:012d}.jsonl"
        )
        os.replace(self.path, target)
        self._segments.append(
            (self._active_first_seq, self._active_last_seq, target)
        )
        self._active_first_seq = None
        self._active_last_seq = None
        self._active_count = 0
        if obs.enabled():
            obs.inc("journal_rotations_total", 1,
                    help="Active-journal rotations into closed segments.")

    def compact_covered(self, covered_seq: int) -> List[Path]:
        """Archive every closed segment fully covered by ``covered_seq``.

        A segment whose last event is at or below the covered sequence
        (the position a snapshot or the SQLite store has durably applied)
        is moved into ``archive/`` and dropped from the scan set — restore
        never needs it again, but the audit trail survives on disk.
        Segments with newer events, and the active file, are untouched.
        Returns the archived paths.
        """
        archived: List[Path] = []
        keep: List[Tuple[int, int, Path]] = []
        for first, last, path in self._segments:
            if last <= covered_seq:
                archive_dir = self.directory / ARCHIVE_DIRNAME
                archive_dir.mkdir(exist_ok=True)
                target = archive_dir / path.name
                os.replace(path, target)
                archived.append(target)
            else:
                keep.append((first, last, path))
        if archived:
            self._segments = keep
            first_kept = (
                self._segments[0][0]
                if self._segments
                else (self._active_first_seq or self._next_seq)
            )
            self._events = [
                event for event in self._events if event.seq >= first_kept
            ]
            if obs.enabled():
                obs.inc("journal_segments_archived_total", len(archived),
                        help="Closed journal segments moved into archive/.")
        return archived

    # -------------------------------------------------------------- parsing
    def _scan_and_repair(self) -> List[JournalEvent]:
        """Parse all segments plus the active file, repairing a torn tail.

        Closed segments were rotated whole, so they are parsed strictly —
        any bad line is corruption.  Only the active file can carry a
        crash-torn final line, which is physically removed, not merely
        skipped: appending after a skipped partial line would merge the
        new event into the garbage bytes and silently lose it, breaking
        the write-ahead guarantee.
        """
        events: List[JournalEvent] = []
        segment_names = sorted(
            (int(match.group(1)), int(match.group(2)), name)
            for name in os.listdir(self.directory)
            if (match := SEGMENT_PATTERN.match(name))
        )
        for _, _, name in segment_names:
            path = self.directory / name
            parsed = self._parse_file(path, events, repair_tail=False)
            if not parsed:
                raise JournalCorruptionError(f"journal segment {name} is empty")
            self._segments.append((parsed[0].seq, parsed[-1].seq, path))
            events.extend(parsed)
        active = self._parse_file(self.path, events, repair_tail=True)
        self._active_count = len(active)
        self._active_first_seq = active[0].seq if active else None
        self._active_last_seq = active[-1].seq if active else None
        events.extend(active)
        return events

    def _parse_file(
        self, path: Path, prior: List[JournalEvent], repair_tail: bool
    ) -> List[JournalEvent]:
        if not path.exists():
            return []
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.splitlines()
        events: List[JournalEvent] = []
        valid_bytes = 0
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if not line.strip():
                valid_bytes += len(line.encode("utf-8")) + 1
                continue
            try:
                entry = json.loads(line)
                seq, event_type = entry["seq"], entry["type"]
                payload, crc = entry["payload"], entry["crc"]
                if crc != _line_crc(seq, event_type, payload):
                    raise ValueError("checksum mismatch")
            except (ValueError, KeyError, TypeError) as error:
                if repair_tail and is_last:
                    break  # crash-truncated tail line: repaired below
                raise JournalCorruptionError(
                    f"{path.name} line {index + 1} is corrupt mid-stream: {error}"
                ) from error
            # The first event overall may start above 1 (a journal created
            # after a snapshot-only restore, or whose oldest segments were
            # archived, fast-forwards past the covered events); after that,
            # sequence numbers must be gapless — including across the
            # segment/active boundary.
            previous = events[-1] if events else (prior[-1] if prior else None)
            if previous is not None and seq != previous.seq + 1:
                raise JournalCorruptionError(
                    f"{path.name} line {index + 1} has sequence {seq}, "
                    f"expected {previous.seq + 1}"
                )
            events.append(JournalEvent(seq=seq, type=event_type, payload=payload))
            valid_bytes += len(line.encode("utf-8")) + 1
        # Repair the tail so future appends start on a clean line: torn
        # garbage is truncated away; a valid final line that lost only its
        # newline (valid_bytes overcounts by the assumed "\n") gets one.
        raw_byte_count = len(raw.encode("utf-8"))
        if valid_bytes < raw_byte_count:
            with open(path, "a+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        elif valid_bytes > raw_byte_count:
            with open(path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
        return events


# ---------------------------------------------------------------- snapshots
def snapshot_path(directory: os.PathLike, events_applied: int) -> Path:
    """Path of the snapshot reflecting the first ``events_applied`` events."""
    return Path(directory) / f"snapshot-{events_applied:012d}.pkl"


def write_snapshot(
    directory: os.PathLike,
    state: Dict[str, object],
    events_applied: int,
    keep_old: bool = False,
) -> Path:
    """Atomically write a compacted snapshot; returns its path.

    The pickle goes to a temporary file first and is renamed into place
    (``os.replace``), so readers never observe a half-written snapshot.
    Older snapshots are deleted afterwards unless ``keep_old`` is set —
    the journal is never truncated, so they are redundant.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": FORMAT_VERSION,
        "events_applied": events_applied,
        "state": state,
    }
    target = snapshot_path(directory, events_applied)
    temporary = target.with_suffix(".tmp")
    with open(temporary, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
        snapshot_bytes = handle.tell()
    os.replace(temporary, target)
    if obs.enabled():
        obs.inc("snapshot_writes_total", 1,
                help="Compacted session snapshots written.")
        obs.inc("snapshot_bytes_written_total", snapshot_bytes,
                help="Bytes written by session snapshots.")
    if not keep_old:
        for name in os.listdir(directory):
            match = SNAPSHOT_PATTERN.match(name)
            if match and int(match.group(1)) != events_applied:
                (directory / name).unlink()
    return target


def load_latest_snapshot(
    directory: os.PathLike,
) -> Optional[Tuple[Dict[str, object], int]]:
    """Load the newest readable snapshot as ``(state, events_applied)``.

    Snapshots are tried newest-first; an unreadable one (torn write from a
    pre-``os.replace`` crash, disk corruption) is skipped in favour of an
    older one plus a longer journal replay.  Returns ``None`` when no
    snapshot can be read.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(
        (
            int(match.group(1))
            for name in os.listdir(directory)
            if (match := SNAPSHOT_PATTERN.match(name))
        ),
        reverse=True,
    )
    for events_applied in candidates:
        try:
            with open(snapshot_path(directory, events_applied), "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != FORMAT_VERSION:
                continue
            return payload["state"], payload["events_applied"]
        except (OSError, pickle.UnpicklingError, EOFError, KeyError):
            continue
    return None
