"""Incremental set-similarity join over a persistent token/CSR index.

The batch-mode engines in :mod:`repro.simjoin` recompute the whole join on
every call.  :class:`IncrementalSimJoin` instead keeps the token index of
every record seen so far and, when a batch of new records arrives, joins

* **new vs old** — against the persistent index, either through a blocked
  sparse product ``X_new @ X_old.T`` over the accumulated CSR arrays (the
  columnar substrate of :class:`repro.simjoin.vectorized.VectorizedSimJoin`)
  or, without scipy / on small stores, through an inverted-index probe with
  exact verification; and
* **new vs new** — by delegating the batch self-join to the existing
  :mod:`repro.simjoin.backend` registry (so all three engines remain
  interchangeable here too).

Because set similarity is a function of the two records alone, pairs among
*old* records are untouched by new arrivals, and the union of the per-batch
deltas is **exactly** the full-store join at the same threshold — the
equivalence the streaming property tests assert.  Likelihood values are
computed with the same integer intersection / union arithmetic as the batch
engines, so they are bit-identical, not merely close.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordError, RecordStore
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.simjoin.backend import (
    AUTO_BACKEND,
    AUTO_VECTORIZED_MIN_RECORDS,
    resolve_backend,
)
from repro.simjoin.vectorized import HAVE_SCIPY

if HAVE_SCIPY:
    from scipy import sparse
else:  # pragma: no cover - scipy is part of the image
    sparse = None


class IncrementalSimJoin:
    """Maintain a similarity self/cross join under appended record batches.

    Parameters
    ----------
    threshold:
        Minimum Jaccard similarity for a pair to become a candidate.
    attributes:
        Attributes pooled into each record's token set (``None`` = all).
    backend:
        Backend name (or ``"auto"``) used for the new-vs-new self-join of
        each arriving batch; the new-vs-old side picks the CSR product when
        scipy is available and the resident store is large enough, falling
        back to the inverted-index probe otherwise.
    cross_sources:
        When set, only pairs with one record from each source are produced
        (record linkage), mirroring the batch engines.
    block_size:
        Row-block size of the sparse new-vs-old product.

    State grows monotonically: records can only be added, never removed —
    retraction requires provenance the CrowdER pipeline doesn't track.
    """

    def __init__(
        self,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        backend: str = AUTO_BACKEND,
        cross_sources: Optional[Tuple[str, str]] = None,
        block_size: int = 1024,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.threshold = threshold
        self.attributes = list(attributes) if attributes is not None else None
        self.backend = backend
        self.cross_sources = cross_sources
        self.block_size = block_size
        self._tokenizer = WhitespaceTokenizer()
        # Persistent index over all resident records.
        self._record_ids: List[str] = []
        self._token_sets: Dict[str, FrozenSet[str]] = {}
        self._sources: Dict[str, Optional[str]] = {}
        self._empty_ids: List[str] = []
        # Flat CSR arrays (rows = records in arrival order); rebuilding a
        # scipy matrix from them is an O(nnz) copy, the matmul dominates.
        self._vocab: Dict[str, int] = {}
        self._indices: List[int] = []
        self._indptr: List[int] = [0]
        # token -> record ids, for the probe path.
        self._inverted: Dict[str, List[str]] = defaultdict(list)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._record_ids)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._token_sets

    @property
    def record_ids(self) -> List[str]:
        """Resident record ids in arrival order."""
        return list(self._record_ids)

    def token_set(self, record_id: str) -> FrozenSet[str]:
        """The indexed token set of a resident record."""
        return self._token_sets[record_id]

    # ------------------------------------------------------------------ api
    def add_batch(self, records: Sequence[Record]) -> PairSet:
        """Index a batch of new records and return the *delta* pair set.

        The delta contains every pair at or above the threshold with at
        least one record from the batch (new-vs-old and new-vs-new); pairs
        among previously resident records are unaffected by arrivals, so
        the union of all deltas equals the full-store join.
        """
        batch = list(records)
        seen_batch: Set[str] = set()
        for record in batch:
            if record.record_id in self._token_sets or record.record_id in seen_batch:
                raise RecordError(f"duplicate record id: {record.record_id!r}")
            seen_batch.add(record.record_id)

        new_tokens = {
            record.record_id: record_token_set(record, self.attributes, self._tokenizer)
            for record in batch
        }

        delta = PairSet()
        if self._record_ids and batch:
            self._join_new_vs_old(batch, new_tokens, delta)
        if len(batch) >= 2:
            self._join_new_vs_new(batch, delta)
        self._index_batch(batch, new_tokens)
        # Canonical order (the same rule as SimJoinLikelihood.estimate), so
        # downstream tie-breaking is independent of discovery order.
        return PairSet(
            sorted(delta, key=lambda pair: (-(pair.likelihood or 0.0), pair.key))
        )

    # ------------------------------------------------------------ internals
    def _cross_ok(self, source_a: Optional[str], source_b: Optional[str]) -> bool:
        if self.cross_sources is None:
            return True
        return {source_a, source_b} == set(self.cross_sources)

    def _join_new_vs_new(self, batch: Sequence[Record], delta: PairSet) -> None:
        """Self-join the batch through the pluggable backend registry."""
        store = RecordStore.from_records(batch, name="arrival-batch")
        engine = resolve_backend(
            self.backend, record_count=len(store), threshold=self.threshold
        )
        pairs = engine.join(
            store,
            self.threshold,
            attributes=self.attributes,
            cross_sources=self.cross_sources,
        )
        for pair in pairs:
            delta.add(pair)

    def _join_new_vs_old(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        use_vectorized = (
            HAVE_SCIPY
            and self.backend != "naive"
            and self.backend != "prefix"
            and (
                self.backend == "vectorized"
                or len(self._record_ids) >= AUTO_VECTORIZED_MIN_RECORDS
            )
        )
        if self.threshold <= 0.0:
            self._join_new_vs_old_exhaustive(batch, new_tokens, delta)
        elif use_vectorized:
            self._join_new_vs_old_csr(batch, new_tokens, delta)
        else:
            self._join_new_vs_old_probe(batch, new_tokens, delta)
        # Empty token sets are invisible to both the inverted index and the
        # sparse product, but two empty records are textually identical.
        if self.threshold > 0.0:
            for record in batch:
                if new_tokens[record.record_id]:
                    continue
                for old_id in self._empty_ids:
                    if self._cross_ok(record.source, self._sources[old_id]):
                        delta.add(RecordPair(record.record_id, old_id, likelihood=1.0))

    def _join_new_vs_old_exhaustive(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        """Threshold zero: every new-vs-old pair is scored (naive bipartite scan)."""
        for record in batch:
            tokens = new_tokens[record.record_id]
            for old_id in self._record_ids:
                if not self._cross_ok(record.source, self._sources[old_id]):
                    continue
                old_tokens = self._token_sets[old_id]
                if not tokens and not old_tokens:
                    similarity = 1.0
                else:
                    union = len(tokens | old_tokens)
                    similarity = len(tokens & old_tokens) / union if union else 1.0
                delta.add(RecordPair(record.record_id, old_id, likelihood=similarity))

    def _join_new_vs_old_probe(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        """Inverted-index probe: candidates share >= 1 token, verified exactly."""
        for record in batch:
            tokens = new_tokens[record.record_id]
            candidates: Set[str] = set()
            for token in tokens:
                postings = self._inverted.get(token)
                if postings:
                    candidates.update(postings)
            for old_id in candidates:
                if not self._cross_ok(record.source, self._sources[old_id]):
                    continue
                old_tokens = self._token_sets[old_id]
                union = len(tokens | old_tokens)
                similarity = len(tokens & old_tokens) / union
                if similarity >= self.threshold:
                    delta.add(RecordPair(record.record_id, old_id, likelihood=similarity))

    def _join_new_vs_old_csr(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        """Blocked sparse product of the batch rows against the resident CSR."""
        # Extend the vocabulary with the batch's tokens first so both
        # matrices share one column space (old rows never reference the new
        # columns, so padding the old matrix's width is free).
        new_indices: List[int] = []
        new_indptr: List[int] = [0]
        for record in batch:
            for token in new_tokens[record.record_id]:
                new_indices.append(self._vocab.setdefault(token, len(self._vocab)))
            new_indptr.append(len(new_indices))
        width = max(1, len(self._vocab))
        old_matrix = sparse.csr_matrix(
            (
                np.ones(len(self._indices), dtype=np.int32),
                np.asarray(self._indices, dtype=np.int64),
                np.asarray(self._indptr, dtype=np.int64),
            ),
            shape=(len(self._record_ids), width),
        )
        new_matrix = sparse.csr_matrix(
            (
                np.ones(len(new_indices), dtype=np.int32),
                np.asarray(new_indices, dtype=np.int64),
                np.asarray(new_indptr, dtype=np.int64),
            ),
            shape=(len(batch), width),
        )
        old_sizes = np.diff(old_matrix.indptr).astype(np.int64)
        new_sizes = np.diff(new_matrix.indptr).astype(np.int64)
        old_t = old_matrix.T.tocsr()
        new_ids = [record.record_id for record in batch]
        new_sources = [record.source for record in batch]
        for start in range(0, len(batch), self.block_size):
            end = min(start + self.block_size, len(batch))
            inter_block = (new_matrix[start:end] @ old_t).tocoo()
            rows = inter_block.row.astype(np.int64) + start
            cols = inter_block.col.astype(np.int64)
            inter = inter_block.data.astype(np.float64)
            sizes_a = new_sizes[rows].astype(np.float64)
            sizes_b = old_sizes[cols].astype(np.float64)
            values = inter / (sizes_a + sizes_b - inter)
            passing = values >= self.threshold
            for row, col, value in zip(
                rows[passing].tolist(), cols[passing].tolist(), values[passing].tolist()
            ):
                old_id = self._record_ids[col]
                if self._cross_ok(new_sources[row], self._sources[old_id]):
                    delta.add(RecordPair(new_ids[row], old_id, likelihood=value))

    def _index_batch(
        self, batch: Sequence[Record], new_tokens: Dict[str, FrozenSet[str]]
    ) -> None:
        """Fold the batch into the persistent token/CSR index."""
        for record in batch:
            record_id = record.record_id
            tokens = new_tokens[record_id]
            self._record_ids.append(record_id)
            self._token_sets[record_id] = tokens
            self._sources[record_id] = record.source
            if not tokens:
                self._empty_ids.append(record_id)
            for token in tokens:
                self._indices.append(self._vocab.setdefault(token, len(self._vocab)))
                self._inverted[token].append(record_id)
            self._indptr.append(len(self._indices))
