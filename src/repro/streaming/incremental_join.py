"""Incremental set-similarity join over a persistent token/CSR index.

The batch-mode engines in :mod:`repro.simjoin` recompute the whole join on
every call.  :class:`IncrementalSimJoin` instead keeps the token index of
every record seen so far and, when a batch of new records arrives, joins

* **new vs old** — against the persistent index, either through a blocked
  sparse product ``X_new @ X_old.T`` over the accumulated CSR arrays (the
  columnar substrate of :class:`repro.simjoin.vectorized.VectorizedSimJoin`,
  optionally sharded across worker processes when the batch is large and
  ``workers`` allows) or, without scipy / on small stores, through an
  inverted-index probe with exact verification; and
* **new vs new** — by delegating the batch self-join to the existing
  :mod:`repro.simjoin.backend` registry (so all engines remain
  interchangeable here too).

Index construction is *columnar* (:mod:`repro.simjoin.columnar`): each
batch's CSR rows are built in one ``np.unique`` pass over the flattened
token arrays, with one dict lookup per distinct batch token instead of one
per token occurrence — so small-batch appends are no longer dominated by
the Python indexing loop.

Because set similarity is a function of the two records alone, pairs among
*old* records are untouched by new arrivals, and the union of the per-batch
deltas is **exactly** the full-store join at the same threshold — the
equivalence the streaming property tests assert.  Likelihood values are
computed with the same integer intersection / union arithmetic as the batch
engines (serial and sharded paths share one block scorer), so they are
bit-identical, not merely close.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.base import Store

from repro import obs
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordError, RecordStore
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.simjoin.backend import (
    AUTO_BACKEND,
    AUTO_VECTORIZED_MIN_RECORDS,
    resolve_backend,
)
from repro.simjoin.columnar import (
    compact_csr_arrays,
    extend_vocabulary_csr_arrays,
    tombstone_data_array,
)
from repro.simjoin.parallel import (
    parallel_new_vs_old_blocks,
    resolve_worker_count,
    score_new_vs_old_block,
    shard_bounds,
)
from repro.simjoin.pool import resolve_pool_mode
from repro.simjoin.vectorized import HAVE_SCIPY

if HAVE_SCIPY:
    from scipy import sparse
else:  # pragma: no cover - scipy is part of the image
    sparse = None


class IncrementalSimJoin:
    """Maintain a similarity self/cross join under appended record batches.

    Parameters
    ----------
    threshold:
        Minimum Jaccard similarity for a pair to become a candidate.
    attributes:
        Attributes pooled into each record's token set (``None`` = all).
    backend:
        Backend name (or ``"auto"``) used for the new-vs-new self-join of
        each arriving batch; the new-vs-old side picks the CSR product when
        scipy is available and the resident store is large enough, falling
        back to the inverted-index probe otherwise.
    cross_sources:
        When set, only pairs with one record from each source are produced
        (record linkage), mirroring the batch engines.
    block_size:
        Row-block size of the sparse new-vs-old product.
    workers:
        Worker processes for sharding the new-vs-old product (and for the
        new-vs-new backend when it is the parallel engine).  ``None``/``0``
        = one per CPU core; sharding only engages when a batch spans more
        than one row block, so small appends never pay pool overhead.  Any
        value yields bit-identical deltas.
    pool_mode:
        How the sharded paths run: ``"reused"`` (default) executes on the
        long-lived shared process pool with the index published into
        shared memory — the mode that makes streaming batches cheap —
        while ``"fork"`` forks a fresh pool per batch (legacy baseline).
        Deltas are bit-identical either way.
    storage:
        Optional :class:`repro.storage.base.Store`.  With a *persistent*
        store the join runs in **offload mode**: per-record token sets are
        not held in memory (they are recomputed on demand from the stored
        record through the same deterministic tokenizer), and every index
        mutation — appended CSR chunks, new vocabulary columns, tombstones,
        compactions — is mirrored into the store so a later process can
        page the substrate back in with :meth:`from_store`.  A
        non-persistent (or absent) store changes nothing.  In offload mode
        :meth:`retract` must be called while the record is still resident
        in the store (i.e. before ``remove_record``).

    Records are appended in batches and can be *retracted* individually
    (:meth:`retract`): a retracted record's CSR row becomes a tombstone
    whose data entries are zero — every intersection against it is zero, so
    it can never pass a positive threshold — and the row is physically
    dropped once enough tombstones accumulate (:meth:`compact`).  A
    retracted id may be re-added by a later batch, which is how record
    *update* is implemented one level up
    (:meth:`repro.streaming.StreamingResolver.update`).
    """

    #: Auto-compaction floor: never compact for fewer tombstones than this.
    COMPACT_MIN_TOMBSTONES = 64
    #: Auto-compaction trigger: compact when dead rows exceed this fraction.
    COMPACT_DEAD_FRACTION = 0.25

    def __init__(
        self,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        backend: str = AUTO_BACKEND,
        cross_sources: Optional[Tuple[str, str]] = None,
        block_size: int = 1024,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
        storage: Optional["Store"] = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative (0/None = auto)")
        self.threshold = threshold
        self.attributes = list(attributes) if attributes is not None else None
        self.backend = backend
        self.cross_sources = cross_sources
        self.block_size = block_size
        self.workers = workers
        self.pool_mode = resolve_pool_mode(pool_mode)
        self._tokenizer = WhitespaceTokenizer()
        self._storage = storage
        self._offload = storage is not None and storage.persistent
        # Persistent index over all resident records.  ``_record_ids`` is
        # row-aligned with the CSR arrays and may contain tombstoned rows
        # (``_dead_rows``); ``_row_of`` maps each *alive* id to its row.
        self._record_ids: List[str] = []
        self._row_of: Dict[str, int] = {}
        self._dead_rows: Set[int] = set()
        # In-memory mode holds every record's token set; offload mode only
        # keeps the alive-id set and recomputes token sets from the stored
        # records on demand (tokenization is deterministic, so the results
        # are identical — the whole point of offloading is that token sets
        # are the dominant resident cost of a large stream).
        self._token_sets: Dict[str, FrozenSet[str]] = {}
        self._alive: Set[str] = set()
        self._sources: Dict[str, Optional[str]] = {}
        self._empty_ids: List[str] = []
        # Flat CSR arrays (rows = records in arrival order), one chunk per
        # batch; rebuilding a scipy matrix from them is an O(nnz)
        # concatenation, the matmul dominates.
        self._vocab: Dict[str, int] = {}
        self._index_chunks: List[np.ndarray] = []
        self._indptr: List[int] = [0]
        # token -> record ids, for the probe path.  Maintaining it is
        # pointless when the vectorized/parallel product always handles
        # new-vs-old, so it is skipped for those backends.
        self._maintain_inverted = not (
            HAVE_SCIPY and backend in ("vectorized", "parallel")
        )
        self._inverted: Dict[str, List[str]] = defaultdict(list)

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        """Number of *alive* (non-retracted) resident records."""
        return len(self._alive) if self._offload else len(self._token_sets)

    def __contains__(self, record_id: object) -> bool:
        if self._offload:
            return record_id in self._alive
        return record_id in self._token_sets

    @property
    def record_ids(self) -> List[str]:
        """Alive resident record ids in arrival order."""
        return [
            record_id
            for row, record_id in enumerate(self._record_ids)
            if row not in self._dead_rows
        ]

    @property
    def tombstone_count(self) -> int:
        """Number of retracted rows still resident as tombstones."""
        return len(self._dead_rows)

    def token_set(self, record_id: str) -> FrozenSet[str]:
        """The indexed token set of a resident record."""
        if self._offload and record_id not in self._alive:
            raise KeyError(record_id)
        return self._tokens_of(record_id)

    def _tokens_of(self, record_id: str) -> FrozenSet[str]:
        """The token set of a resident record (recomputed in offload mode)."""
        if self._offload:
            record = self._storage.get_record(record_id)
            if record is None:
                raise KeyError(record_id)
            return record_token_set(record, self.attributes, self._tokenizer)
        return self._token_sets[record_id]

    def effective_workers(self) -> int:
        """The concrete worker count (resolving the ``None``/``0`` default)."""
        return resolve_worker_count(self.workers)

    # ------------------------------------------------------------------ api
    def add_batch(self, records: Sequence[Record]) -> PairSet:
        """Index a batch of new records and return the *delta* pair set.

        The delta contains every pair at or above the threshold with at
        least one record from the batch (new-vs-old and new-vs-new); pairs
        among previously resident records are unaffected by arrivals, so
        the union of all deltas equals the full-store join.
        """
        batch = list(records)
        seen_batch: Set[str] = set()
        for record in batch:
            if record.record_id in self or record.record_id in seen_batch:
                raise RecordError(f"duplicate record id: {record.record_id!r}")
            seen_batch.add(record.record_id)

        new_tokens = {
            record.record_id: record_token_set(record, self.attributes, self._tokenizer)
            for record in batch
        }
        # One columnar pass builds the batch's CSR rows and extends the
        # persistent vocabulary; both the new-vs-old product and the index
        # append below reuse these arrays.  In offload mode the batch's
        # novel tokens are collected so exactly those columns can be
        # mirrored into the store.
        novel: Optional[List[str]] = [] if self._offload else None
        batch_indices, batch_indptr = extend_vocabulary_csr_arrays(
            [new_tokens[record.record_id] for record in batch],
            self._vocab,
            novel_out=novel,
        )

        delta = PairSet()
        if self._record_ids and batch:
            with obs.span(
                "streaming.join.new_vs_old",
                batch=len(batch), resident=len(self._record_ids),
            ):
                self._join_new_vs_old(
                    batch, new_tokens, delta, batch_indices, batch_indptr
                )
        if len(batch) >= 2:
            with obs.span("streaming.join.new_vs_new", batch=len(batch)):
                self._join_new_vs_new(batch, delta)
        with obs.span("streaming.join.index", batch=len(batch)):
            self._index_batch(batch, new_tokens, batch_indices, batch_indptr, novel)
        # Canonical order (the same rule as SimJoinLikelihood.estimate), so
        # downstream tie-breaking is independent of discovery order.
        return PairSet(
            sorted(delta, key=lambda pair: (-(pair.likelihood or 0.0), pair.key))
        )

    def retract(self, record_id: str) -> None:
        """Remove one resident record from the index.

        The record's CSR row becomes a tombstone (zeroed data, see
        :func:`repro.simjoin.columnar.tombstone_data_array`), so no future
        batch can join against it; its id becomes re-addable immediately.
        Tombstones are physically dropped by :meth:`compact`, which runs
        automatically once they exceed ``COMPACT_DEAD_FRACTION`` of the
        resident rows (with a floor of ``COMPACT_MIN_TOMBSTONES``).

        Raises :class:`~repro.records.record.RecordError` for unknown (or
        already retracted) ids.
        """
        if self._offload:
            if record_id not in self._alive:
                raise RecordError(f"unknown record id: {record_id!r}")
            # Recompute tokens only when the inverted index needs them;
            # the record must still be resident in the store (sessions
            # retract from the join before removing the record).
            tokens = self._tokens_of(record_id) if self._maintain_inverted else None
            self._alive.discard(record_id)
            was_empty = record_id in self._empty_ids
        else:
            tokens = self._token_sets.pop(record_id, None)
            if tokens is None:
                raise RecordError(f"unknown record id: {record_id!r}")
            was_empty = not tokens
        row = self._row_of.pop(record_id)
        self._dead_rows.add(row)
        del self._sources[record_id]
        if was_empty:
            self._empty_ids.remove(record_id)
        if self._maintain_inverted and tokens:
            for token in tokens:
                postings = self._inverted.get(token)
                if postings is not None:
                    postings.remove(record_id)
                    if not postings:
                        del self._inverted[token]
        if self._offload:
            self._storage.join_mark_dead(row)
        if (
            len(self._dead_rows) >= self.COMPACT_MIN_TOMBSTONES
            and len(self._dead_rows)
            >= self.COMPACT_DEAD_FRACTION * len(self._record_ids)
        ):
            self.compact()

    def compact(self) -> int:
        """Physically drop tombstoned rows from the CSR arrays.

        One vectorized mask pass over the accumulated occurrence array
        (:func:`repro.simjoin.columnar.compact_csr_arrays`); row order of
        the survivors is preserved, so join results are unaffected.  The
        vocabulary keeps columns that no longer occur — a column of zeros
        cannot change any intersection count, and dropping columns would
        force an O(nnz) re-map.  Returns the number of rows dropped.
        """
        if not self._dead_rows:
            return 0
        dropped = len(self._dead_rows)
        indices = (
            np.concatenate(self._index_chunks)
            if self._index_chunks
            else np.empty(0, dtype=np.int64)
        )
        new_indices, new_indptr = compact_csr_arrays(
            indices, self._indptr, self._dead_rows
        )
        self._index_chunks = [new_indices] if len(new_indices) else []
        self._indptr = new_indptr.tolist()
        self._record_ids = [
            record_id
            for row, record_id in enumerate(self._record_ids)
            if row not in self._dead_rows
        ]
        self._row_of = {record_id: row for row, record_id in enumerate(self._record_ids)}
        self._dead_rows = set()
        if self._offload:
            self._mirror_replace()
        if obs.enabled():
            obs.inc("streaming_join_compactions_total", 1,
                    help="CSR compaction passes over the incremental join index.")
            obs.inc("streaming_join_rows_compacted_total", dropped,
                    help="Tombstoned rows physically dropped by compaction.")
        return dropped

    def _mirror_replace(self) -> None:
        """Rewrite the store's join substrate to match the live arrays."""
        empty_set = set(self._empty_ids)
        self._storage.join_replace(
            [
                (
                    row,
                    record_id,
                    self._sources.get(record_id),
                    record_id in empty_set,
                    row in self._dead_rows,
                )
                for row, record_id in enumerate(self._record_ids)
            ],
            (
                np.concatenate(self._index_chunks)
                if self._index_chunks
                else np.empty(0, dtype=np.int64)
            ),
            np.diff(np.asarray(self._indptr, dtype=np.int64)),
        )

    # ------------------------------------------------------------ internals
    def _cross_ok(self, source_a: Optional[str], source_b: Optional[str]) -> bool:
        if self.cross_sources is None:
            return True
        return {source_a, source_b} == set(self.cross_sources)

    def _join_new_vs_new(self, batch: Sequence[Record], delta: PairSet) -> None:
        """Self-join the batch through the pluggable backend registry."""
        store = RecordStore.from_records(batch, name="arrival-batch")
        engine = resolve_backend(
            self.backend,
            record_count=len(store),
            threshold=self.threshold,
            workers=self.workers,
            pool_mode=self.pool_mode,
        )
        pairs = engine.join(
            store,
            self.threshold,
            attributes=self.attributes,
            cross_sources=self.cross_sources,
        )
        for pair in pairs:
            delta.add(pair)

    def _join_new_vs_old(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
        batch_indices: np.ndarray,
        batch_indptr: np.ndarray,
    ) -> None:
        # Once the inverted index has been dropped (it is only maintained
        # for the probe path) the CSR product is the only complete index, so
        # the choice is sticky even if compaction shrinks the store again.
        use_vectorized = (
            HAVE_SCIPY
            and self.backend != "naive"
            and self.backend != "prefix"
            and (
                self.backend in ("vectorized", "parallel")
                or not self._maintain_inverted
                or len(self._record_ids) >= AUTO_VECTORIZED_MIN_RECORDS
            )
        )
        if self.threshold <= 0.0:
            self._join_new_vs_old_exhaustive(batch, new_tokens, delta)
        elif use_vectorized:
            self._join_new_vs_old_csr(batch, delta, batch_indices, batch_indptr)
        else:
            self._join_new_vs_old_probe(batch, new_tokens, delta)
        # Empty token sets are invisible to both the inverted index and the
        # sparse product, but two empty records are textually identical.
        if self.threshold > 0.0:
            for record in batch:
                if new_tokens[record.record_id]:
                    continue
                for old_id in self._empty_ids:
                    if self._cross_ok(record.source, self._sources[old_id]):
                        delta.add(RecordPair(record.record_id, old_id, likelihood=1.0))

    def _join_new_vs_old_exhaustive(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        """Threshold zero: every new-vs-old pair is scored (naive bipartite scan)."""
        alive_ids = self.record_ids
        for record in batch:
            tokens = new_tokens[record.record_id]
            for old_id in alive_ids:
                if not self._cross_ok(record.source, self._sources[old_id]):
                    continue
                old_tokens = self._tokens_of(old_id)
                if not tokens and not old_tokens:
                    similarity = 1.0
                else:
                    union = len(tokens | old_tokens)
                    similarity = len(tokens & old_tokens) / union if union else 1.0
                delta.add(RecordPair(record.record_id, old_id, likelihood=similarity))

    def _join_new_vs_old_probe(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        delta: PairSet,
    ) -> None:
        """Inverted-index probe: candidates share >= 1 token, verified exactly."""
        for record in batch:
            tokens = new_tokens[record.record_id]
            candidates: Set[str] = set()
            for token in tokens:
                postings = self._inverted.get(token)
                if postings:
                    candidates.update(postings)
            for old_id in candidates:
                if not self._cross_ok(record.source, self._sources[old_id]):
                    continue
                old_tokens = self._tokens_of(old_id)
                union = len(tokens | old_tokens)
                similarity = len(tokens & old_tokens) / union
                if similarity >= self.threshold:
                    delta.add(RecordPair(record.record_id, old_id, likelihood=similarity))

    def _join_new_vs_old_csr(
        self,
        batch: Sequence[Record],
        delta: PairSet,
        batch_indices: np.ndarray,
        batch_indptr: np.ndarray,
    ) -> None:
        """Blocked sparse product of the batch rows against the resident CSR.

        Old rows never reference the batch's new vocabulary columns, so
        padding the old matrix to the extended width is free.  When the
        batch spans several row blocks and more than one worker is
        configured, the blocks are sharded across a process pool
        (:func:`repro.simjoin.parallel.parallel_new_vs_old_blocks`); serial
        and sharded paths share one block scorer, so the delta is
        bit-identical either way.
        """
        width = max(1, len(self._vocab))
        old_indices = (
            np.concatenate(self._index_chunks)
            if self._index_chunks
            else np.empty(0, dtype=np.int64)
        )
        # Tombstoned rows contribute zero data: intersections against them
        # are zero, so their similarity is exactly 0.0 — below any positive
        # threshold (this path is unreachable at threshold <= 0).
        old_data = (
            tombstone_data_array(self._indptr, self._dead_rows)
            if self._dead_rows
            else np.ones(len(old_indices), dtype=np.int32)
        )
        old_matrix = sparse.csr_matrix(
            (
                old_data,
                old_indices,
                np.asarray(self._indptr, dtype=np.int64),
            ),
            shape=(len(self._record_ids), width),
        )
        new_matrix = sparse.csr_matrix(
            (
                np.ones(len(batch_indices), dtype=np.int32),
                batch_indices,
                batch_indptr,
            ),
            shape=(len(batch), width),
        )
        old_sizes = np.diff(old_matrix.indptr).astype(np.int64)
        new_sizes = np.diff(new_matrix.indptr).astype(np.int64)
        new_ids = [record.record_id for record in batch]
        new_sources = [record.source for record in batch]

        workers = self.effective_workers()
        bounds = shard_bounds(len(batch), workers, self.block_size)
        if workers > 1 and len(bounds) > 1:
            blocks = parallel_new_vs_old_blocks(
                new_matrix, old_matrix, new_sizes, old_sizes,
                self.threshold, workers, self.block_size,
                pool_mode=self.pool_mode,
            )
        else:
            old_t = old_matrix.T.tocsr()
            blocks = (
                score_new_vs_old_block(
                    new_matrix, old_t, new_sizes, old_sizes,
                    start, min(start + self.block_size, len(batch)),
                    self.threshold,
                )
                for start in range(0, len(batch), self.block_size)
            )
        for rows, cols, values in blocks:
            for row, col, value in zip(rows.tolist(), cols.tolist(), values.tolist()):
                old_id = self._record_ids[col]
                if self._cross_ok(new_sources[row], self._sources[old_id]):
                    delta.add(RecordPair(new_ids[row], old_id, likelihood=value))

    def _index_batch(
        self,
        batch: Sequence[Record],
        new_tokens: Dict[str, FrozenSet[str]],
        batch_indices: np.ndarray,
        batch_indptr: np.ndarray,
        novel: Optional[List[str]] = None,
    ) -> None:
        """Fold the batch into the persistent token/CSR index.

        The CSR rows were already built columnarly in :meth:`add_batch`;
        here they are appended wholesale, and only the bookkeeping that is
        inherently per record (sources, empty ids, the probe path's
        inverted index when it is maintained at all) loops in Python.  In
        offload mode the same arrays are mirrored into the store: the new
        rows, the batch's CSR chunk, and exactly the novel vocabulary
        columns.
        """
        if self._offload and batch:
            first_row = len(self._record_ids)
            self._storage.join_append_rows(
                [
                    (
                        first_row + position,
                        record.record_id,
                        record.source,
                        not new_tokens[record.record_id],
                        False,
                    )
                    for position, record in enumerate(batch)
                ]
            )
            self._storage.append_csr_chunk(
                batch_indices, np.diff(np.asarray(batch_indptr, dtype=np.int64))
            )
            if novel:
                self._storage.extend_vocabulary(
                    [(token, self._vocab[token]) for token in novel]
                )
        offset = self._indptr[-1]
        if len(batch_indices):
            self._index_chunks.append(batch_indices)
        self._indptr.extend((batch_indptr[1:] + offset).tolist())
        for record in batch:
            record_id = record.record_id
            tokens = new_tokens[record_id]
            self._row_of[record_id] = len(self._record_ids)
            self._record_ids.append(record_id)
            if self._offload:
                self._alive.add(record_id)
            else:
                self._token_sets[record_id] = tokens
            self._sources[record_id] = record.source
            if not tokens:
                self._empty_ids.append(record_id)
            if self._maintain_inverted:
                for token in tokens:
                    self._inverted[token].append(record_id)
        # Once the store is big enough for the CSR product the probe path is
        # unreachable (and stays unreachable: the choice is sticky even
        # across compaction): stop paying the per-occurrence posting appends
        # and drop the duplicate index.
        if (
            self._maintain_inverted
            and HAVE_SCIPY
            and self.backend not in ("naive", "prefix")
            and len(self._record_ids) >= AUTO_VECTORIZED_MIN_RECORDS
        ):
            self._maintain_inverted = False
            self._inverted.clear()
            if self._offload:
                self._storage.set_meta("join_maintain_inverted", False)

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, object]:
        """Serializable (picklable) snapshot of the whole index.

        Contains the construction parameters, the persistent vocabulary,
        the flat CSR arrays (chunks concatenated — the exact arrays a
        restored instance will multiply against), the tombstone set and the
        per-record bookkeeping.  Everything a fresh process needs to
        continue the join with bit-identical results.  Containers are
        shallow copies of the live state (their elements are immutable), so
        building the snapshot is O(state) with no re-encoding.
        """
        return {
            "threshold": self.threshold,
            "attributes": self.attributes,
            "backend": self.backend,
            "cross_sources": self.cross_sources,
            "block_size": self.block_size,
            "workers": self.workers,
            "pool_mode": self.pool_mode,
            "record_ids": list(self._record_ids),
            "row_of": dict(self._row_of),
            "dead_rows": set(self._dead_rows),
            "token_sets": (
                {record_id: self._tokens_of(record_id) for record_id in self.record_ids}
                if self._offload
                else dict(self._token_sets)
            ),
            "sources": dict(self._sources),
            "empty_ids": list(self._empty_ids),
            "vocabulary": dict(self._vocab),
            "indices": (
                np.concatenate(self._index_chunks)
                if self._index_chunks
                else np.empty(0, dtype=np.int64)
            ),
            "indptr": list(self._indptr),
            "maintain_inverted": self._maintain_inverted,
            "inverted": {
                token: list(ids) for token, ids in self._inverted.items()
            },
        }

    @classmethod
    def from_state_dict(
        cls, state: Dict[str, object], storage: Optional["Store"] = None
    ) -> "IncrementalSimJoin":
        """Rebuild an index from :meth:`state_dict` output.

        With a persistent ``storage`` the rebuilt substrate is re-mirrored
        into it (the caller is expected to have reset the store first, the
        way a snapshot restore wipes and reloads the whole session).
        """
        instance = cls(
            threshold=state["threshold"],  # type: ignore[arg-type]
            attributes=state["attributes"],  # type: ignore[arg-type]
            backend=state["backend"],  # type: ignore[arg-type]
            cross_sources=(
                tuple(state["cross_sources"]) if state["cross_sources"] else None  # type: ignore[arg-type]
            ),
            block_size=state["block_size"],  # type: ignore[arg-type]
            workers=state["workers"],  # type: ignore[arg-type]
            pool_mode=state.get("pool_mode"),  # type: ignore[arg-type]
            storage=storage,
        )
        instance._record_ids = list(state["record_ids"])  # type: ignore[arg-type]
        instance._row_of = dict(state["row_of"])  # type: ignore[arg-type]
        instance._dead_rows = set(state["dead_rows"])  # type: ignore[arg-type]
        if instance._offload:
            instance._alive = set(state["token_sets"].keys())  # type: ignore[union-attr]
        else:
            instance._token_sets = {
                record_id: frozenset(tokens)
                for record_id, tokens in state["token_sets"].items()  # type: ignore[union-attr]
            }
        instance._sources = dict(state["sources"])  # type: ignore[arg-type]
        instance._empty_ids = list(state["empty_ids"])  # type: ignore[arg-type]
        instance._vocab = dict(state["vocabulary"])  # type: ignore[arg-type]
        indices = np.asarray(state["indices"], dtype=np.int64)
        instance._index_chunks = [indices] if len(indices) else []
        instance._indptr = list(state["indptr"])  # type: ignore[arg-type]
        instance._maintain_inverted = bool(state["maintain_inverted"])
        instance._inverted = defaultdict(list)
        for token, ids in state["inverted"].items():  # type: ignore[union-attr]
            instance._inverted[token] = list(ids)
        if instance._offload:
            instance._mirror_replace()
            storage.extend_vocabulary(
                sorted(instance._vocab.items(), key=lambda item: item[1])
            )
            storage.set_meta("join_maintain_inverted", instance._maintain_inverted)
        return instance

    @classmethod
    def from_store(
        cls,
        storage: "Store",
        *,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        backend: str = AUTO_BACKEND,
        cross_sources: Optional[Tuple[str, str]] = None,
        block_size: int = 1024,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
    ) -> "IncrementalSimJoin":
        """Page the join substrate back in from a persistent store.

        Construction parameters are not stored with the substrate (they
        belong to the workflow config), so the caller passes them again.
        The CSR arrays, vocabulary and row bookkeeping come back exactly
        as mirrored; the probe path's inverted index — pure derived data —
        is rebuilt from the stored records only when it is still
        maintained.  Returns an empty index when the store has no
        substrate yet.
        """
        instance = cls(
            threshold=threshold,
            attributes=attributes,
            backend=backend,
            cross_sources=cross_sources,
            block_size=block_size,
            workers=workers,
            pool_mode=pool_mode,
            storage=storage,
        )
        state = storage.load_join_state()
        if state is None:
            return instance
        rows: List[Tuple[int, str, Optional[str], bool, bool]] = state["rows"]  # type: ignore[assignment]
        instance._record_ids = [record_id for _, record_id, _, _, _ in rows]
        instance._dead_rows = {row_no for row_no, _, _, _, dead in rows if dead}
        instance._row_of = {
            record_id: row_no for row_no, record_id, _, _, dead in rows if not dead
        }
        instance._alive = set(instance._row_of)
        instance._sources = {
            record_id: source for _, record_id, source, _, dead in rows if not dead
        }
        instance._empty_ids = [
            record_id for _, record_id, _, empty, dead in rows if empty and not dead
        ]
        instance._vocab = dict(state["vocabulary"])  # type: ignore[arg-type]
        indices = np.asarray(state["indices"], dtype=np.int64)
        instance._index_chunks = [indices] if len(indices) else []
        instance._indptr = list(state["indptr"])  # type: ignore[arg-type]
        instance._maintain_inverted = bool(
            storage.get_meta("join_maintain_inverted", instance._maintain_inverted)
        )
        if instance._maintain_inverted:
            for record_id in instance.record_ids:
                for token in instance._tokens_of(record_id):
                    instance._inverted[token].append(record_id)
        return instance
