"""Per-pair provenance for the streaming resolver.

Every candidate pair a streaming session discovers is backed by exactly two
records, was first seen in one arrival batch, and accumulates crowd history
(which HITs covered it, which vote rounds were folded into the ledger).
:class:`ProvenanceLedger` records all of that, and — crucially — maintains
the inverted ``record id -> pair keys`` index that makes **retraction**
precise: when a record is retracted, the provenance-reachable state is
exactly the pairs in :meth:`ProvenanceLedger.pairs_of` and the components
those pairs connect, so :meth:`repro.streaming.StreamingResolver.retract`
can invalidate that region and nothing else (the data-skipping idea: use
provenance to bound how far an update propagates, instead of re-resolving
the world).

The ledger is part of every session checkpoint
(:meth:`state_dict` / :meth:`from_state_dict`), so a restored session can
keep retracting correctly.  With a *persistent* storage backend every
mutation is additionally mirrored into the store's provenance table —
the provenance rows double as the **skip index** a page-in restore reads
back (:meth:`from_store`) instead of replaying history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.records.pairs import canonical_pair

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.base import Store

PairKey = Tuple[str, str]


@dataclass
class PairProvenance:
    """The recorded history of one candidate pair.

    Attributes
    ----------
    key:
        Canonical pair key; the two source record ids *are* the key — pair
        provenance at the record level is structural.
    discovered_batch:
        1-based index of the arrival batch whose join delta produced the
        pair.
    hit_ids:
        Ids of the HITs that covered the pair, prefixed with the batch that
        published them (``"b3:h0"``), in publish order.
    vote_events:
        ``(batch_index, round_index, vote_count)`` per vote round folded
        into the ledger, in order.
    """

    key: PairKey
    discovered_batch: int
    hit_ids: List[str] = field(default_factory=list)
    vote_events: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def vote_count(self) -> int:
        """Total votes ever folded in for this pair (all rounds)."""
        return sum(count for _, _, count in self.vote_events)


@dataclass
class RetractionImpact:
    """What retracting one record invalidates.

    Attributes
    ----------
    record_id:
        The retracted record.
    dropped_pairs:
        Every candidate pair the record was part of — all of it becomes
        invalid (votes, posterior, coverage) because one of its two source
        records no longer exists.
    neighbor_ids:
        The *other* endpoint of each dropped pair: the records whose
        component membership must be recomputed from the surviving edges.
    """

    record_id: str
    dropped_pairs: List[PairKey] = field(default_factory=list)
    neighbor_ids: List[str] = field(default_factory=list)


class ProvenanceLedger:
    """Pair-level provenance plus the record → pairs inverted index.

    The streaming resolver calls :meth:`record_pair` when the incremental
    join discovers a pair, :meth:`record_coverage` when a published HIT
    covers it and :meth:`record_votes` when a vote round is folded into the
    ledger.  :meth:`retract_record` removes a record and returns the
    invalidated region as a :class:`RetractionImpact`.

    ``backing`` is an optional :class:`repro.storage.base.Store`; when it
    is persistent, each mutated pair's full row is mirrored into the
    store's provenance table (post-state writes, like the pair ledger), so
    the table always equals the dicts at event boundaries.
    """

    def __init__(self, backing: Optional["Store"] = None) -> None:
        self._pairs: Dict[PairKey, PairProvenance] = {}
        self._pairs_of_record: Dict[str, Set[PairKey]] = {}
        self._backing = (
            backing if backing is not None and backing.persistent else None
        )

    def _mirror(self, key: PairKey) -> None:
        if self._backing is None:
            return
        provenance = self._pairs[key]
        self._backing.prov_write(
            key,
            provenance.discovered_batch,
            provenance.hit_ids,
            provenance.vote_events,
        )

    # ------------------------------------------------------------ recording
    def add_record(self, record_id: str) -> None:
        """Register a record (so ``pairs_of`` works before any pair does)."""
        self._pairs_of_record.setdefault(record_id, set())

    def record_pair(self, id_a: str, id_b: str, batch_index: int) -> None:
        """Register a newly discovered candidate pair."""
        key = canonical_pair(id_a, id_b)
        if key not in self._pairs:
            self._pairs[key] = PairProvenance(key=key, discovered_batch=batch_index)
            self._mirror(key)
        self._pairs_of_record.setdefault(id_a, set()).add(key)
        self._pairs_of_record.setdefault(id_b, set()).add(key)

    def record_coverage(self, key: PairKey, hit_id: str) -> None:
        """Note that a published HIT covered the pair."""
        provenance = self._pairs.get(key)
        if provenance is not None and hit_id not in provenance.hit_ids:
            provenance.hit_ids.append(hit_id)
            self._mirror(key)

    def record_votes(
        self, key: PairKey, batch_index: int, round_index: int, vote_count: int
    ) -> None:
        """Note a vote round folded into the session's ledger for the pair."""
        provenance = self._pairs.get(key)
        if provenance is not None:
            provenance.vote_events.append((batch_index, round_index, vote_count))
            self._mirror(key)

    # -------------------------------------------------------------- queries
    def __contains__(self, key: object) -> bool:
        return key in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def get(self, id_a: str, id_b: str) -> Optional[PairProvenance]:
        """Provenance of one pair, or ``None`` if the pair is unknown."""
        return self._pairs.get(canonical_pair(id_a, id_b))

    def pairs_of(self, record_id: str) -> Set[PairKey]:
        """All candidate pairs the record participates in (copy)."""
        return set(self._pairs_of_record.get(record_id, ()))

    def known_records(self) -> Set[str]:
        """All record ids the ledger has seen (copy)."""
        return set(self._pairs_of_record)

    # ----------------------------------------------------------- retraction
    def retract_record(self, record_id: str) -> RetractionImpact:
        """Drop a record and every pair it participates in.

        Returns the invalidated region.  The neighbors' own pair sets are
        updated (the dropped pairs disappear from their indexes too), and
        the record itself is forgotten entirely.
        """
        dropped = sorted(self._pairs_of_record.pop(record_id, set()))
        impact = RetractionImpact(record_id=record_id, dropped_pairs=dropped)
        for key in dropped:
            self._pairs.pop(key, None)
            other = key[1] if key[0] == record_id else key[0]
            impact.neighbor_ids.append(other)
            neighbor_pairs = self._pairs_of_record.get(other)
            if neighbor_pairs is not None:
                neighbor_pairs.discard(key)
        if self._backing is not None and dropped:
            self._backing.prov_delete(dropped)
        return impact

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, object]:
        """Serializable (picklable) snapshot of the full ledger.

        Per-pair entries are stored as plain tuples (cheap to build and to
        pickle); the inverted record index is rebuilt on load from the pair
        keys plus the list of pair-less records.
        """
        return {
            "pairs": {
                key: (
                    provenance.discovered_batch,
                    list(provenance.hit_ids),
                    list(provenance.vote_events),
                )
                for key, provenance in self._pairs.items()
            },
            "records": list(self._pairs_of_record),
        }

    @classmethod
    def from_state_dict(
        cls, state: Dict[str, object], backing: Optional["Store"] = None
    ) -> "ProvenanceLedger":
        """Rebuild a ledger from :meth:`state_dict` output.

        With a persistent ``backing`` the loaded rows are re-mirrored into
        its provenance table (the caller resets the store first, as in any
        full state reload).
        """
        ledger = cls(backing=backing)
        for record_id in state["records"]:  # type: ignore[union-attr]
            ledger.add_record(record_id)
        for key, (discovered, hit_ids, vote_events) in state["pairs"].items():  # type: ignore[union-attr]
            ledger._pairs[key] = PairProvenance(
                key=key,
                discovered_batch=discovered,
                hit_ids=list(hit_ids),
                vote_events=list(vote_events),
            )
            ledger._pairs_of_record.setdefault(key[0], set()).add(key)
            ledger._pairs_of_record.setdefault(key[1], set()).add(key)
            ledger._mirror(key)
        return ledger

    @classmethod
    def from_store(cls, storage: "Store") -> "ProvenanceLedger":
        """Page the ledger back in from a persistent store.

        Resident records seed the inverted index (so ``pairs_of`` works
        for pair-less records, exactly as after live ``add_record`` calls),
        then the stored provenance rows are loaded verbatim — without
        re-mirroring what was just read.
        """
        ledger = cls(backing=storage)
        for record_id in storage.record_ids():
            ledger.add_record(record_id)
        rows = storage.load_provenance() or []
        for key, discovered, hit_ids, vote_events in rows:
            ledger._pairs[key] = PairProvenance(
                key=key,
                discovered_batch=discovered,
                hit_ids=list(hit_ids),
                vote_events=[tuple(event) for event in vote_events],
            )
            ledger._pairs_of_record.setdefault(key[0], set()).add(key)
            ledger._pairs_of_record.setdefault(key[1], set()).add(key)
        return ledger
