"""Streaming incremental entity resolution (the ``repro.streaming`` subsystem).

CrowdER resolves a table in one batch pass; this package keeps a resolution
session open while records keep arriving:

* :class:`IncrementalSimJoin` — the machine pass against a persistent
  token/CSR index; each batch joins new-vs-old plus new-vs-new only, and
  the union of deltas is exactly the full-store join.
* :class:`StreamingResolver` — the session: incremental union-find with
  dirty-component tracking, HIT regeneration restricted to dirty
  components, a per-pair vote ledger with a configurable re-crowd policy,
  cached posteriors for clean components, and delta-aware
  :class:`~repro.core.results.ResolutionResult` snapshots.
* :func:`resolve_stream` — replay a dataset through a session in arrival
  batches (what the ``resolve-stream`` CLI command runs).

Session lifecycle::

    from repro.streaming import StreamingResolver

    session = StreamingResolver(WorkflowConfig(likelihood_threshold=0.35))
    session.add_truth(known_matches)          # feeds the simulated crowd
    snap = session.add_batch(first_records)   # join + crowd + aggregate
    snap = session.add_batch(more_records)    # only dirty components redo work
    print(snap.delta.as_dict(), len(snap.matches))

Dirty-component semantics: a component is dirty for a batch if it gained a
record or a candidate pair (including via merges); only dirty components
have HITs regenerated and (depending on ``recrowd_policy``) votes
re-collected, and with component-scoped aggregation every clean component's
posteriors are preserved bit-for-bit across the batch.
"""

from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.session import StreamingResolver, resolve_stream

__all__ = [
    "IncrementalSimJoin",
    "StreamingResolver",
    "resolve_stream",
]
