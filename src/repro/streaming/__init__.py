"""Streaming incremental entity resolution (the ``repro.streaming`` subsystem).

CrowdER resolves a table in one batch pass; this package keeps a resolution
session open while records keep arriving — and makes that session durable
and revisable:

* :class:`IncrementalSimJoin` — the machine pass against a persistent
  token/CSR index; each batch joins new-vs-old plus new-vs-new only, and
  the union of deltas is exactly the full-store join.  Retracted records
  become tombstoned rows, physically dropped by periodic compaction.
* :class:`StreamingResolver` — the session: incremental union-find with
  dirty-component tracking, HIT regeneration restricted to dirty
  components, a per-pair vote ledger with a configurable re-crowd policy,
  cached posteriors for clean components, and delta-aware
  :class:`~repro.core.results.ResolutionResult` snapshots.
* :class:`ProvenanceLedger` — per-pair provenance (source records,
  covering HITs, vote rounds) that makes ``retract(record_id)`` and
  ``update(record)`` precise: exactly the provenance-reachable pairs and
  components are invalidated and re-resolved, nothing else.
* :mod:`repro.streaming.persistence` — durability: a write-ahead journal
  of every session event plus compacted snapshots, giving
  ``StreamingResolver.save()`` / ``StreamingResolver.restore()`` with a
  bit-identical crash-recovery guarantee (crash after any prefix of
  events, restore, replay the tail — same matches, posteriors and ranked
  pairs as a session that never stopped).
* :func:`resolve_stream` — replay a dataset through a session in arrival
  batches (what the ``resolve-stream`` CLI command runs).

Session lifecycle::

    from repro.streaming import StreamingResolver

    config = WorkflowConfig(likelihood_threshold=0.35,
                            checkpoint_dir="/var/lib/er-session")
    session = StreamingResolver(config)
    session.add_truth(known_matches)          # feeds the simulated crowd
    snap = session.add_batch(first_records)   # join + crowd + aggregate
    snap = session.add_batch(more_records)    # only dirty components redo work
    snap = session.retract("r42")             # invalidate r42's provenance
    # ... process dies; later, in a fresh process:
    session = StreamingResolver.restore("/var/lib/er-session")
    snap = session.add_batch(next_records)    # continues bit-identically

Dirty-component semantics: a component is dirty for a batch if it gained a
record or a candidate pair (including via merges); only dirty components
have HITs regenerated and (depending on ``recrowd_policy``) votes
re-collected, and with component-scoped aggregation every clean component's
posteriors are preserved bit-for-bit across the batch.
"""

from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.persistence import (
    JournalCorruptionError,
    PersistenceError,
    SessionJournal,
)
from repro.streaming.provenance import (
    PairProvenance,
    ProvenanceLedger,
    RetractionImpact,
)
from repro.streaming.session import StreamingResolver, resolve_stream

__all__ = [
    "IncrementalSimJoin",
    "JournalCorruptionError",
    "PairProvenance",
    "PersistenceError",
    "ProvenanceLedger",
    "RetractionImpact",
    "SessionJournal",
    "StreamingResolver",
    "resolve_stream",
]
