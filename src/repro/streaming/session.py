"""The streaming incremental entity-resolution session.

:class:`StreamingResolver` keeps a resolution *session* open while record
batches arrive, maintaining every stage of the CrowdER pipeline
incrementally instead of recomputing it from scratch:

1. **Machine pass** — an :class:`~repro.streaming.incremental_join.IncrementalSimJoin`
   joins each batch against the persistent token/CSR index (new-vs-old plus
   new-vs-new only); resident pairs are never re-scored.
2. **Component maintenance** — every new candidate pair is a union in an
   :class:`~repro.graph.union_find.IncrementalUnionFind`; components touched
   by a new record or pair become *dirty*, all others stay *clean*.
3. **HIT regeneration** — only dirty components get new HITs, batched
   through the configured pair/cluster generator over exactly the pairs
   that need votes under the re-crowd policy; clean components (and, under
   ``"never"``, already-voted dirty pairs) keep the HITs and votes they
   already paid for.
4. **Crowdsourcing** — the platform runs in deterministic per-pair vote
   mode.  Under the default ``recrowd_policy="never"`` each pair is asked
   exactly once, the first time a HIT covers it; ``"dirty"`` re-asks every
   pair of a dirty component with a fresh vote round.
5. **Aggregation** — with ``streaming_aggregation_scope="component"`` only
   dirty components are re-aggregated and clean components keep their cached
   posteriors bit-for-bit; ``"global"`` re-runs the aggregator over all
   accumulated votes (the mode that reproduces one-shot Dawid-Skene
   exactly, since EM shares worker confusion estimates globally).

On top of arrivals the session supports **retraction and update**
(:meth:`StreamingResolver.retract` / :meth:`StreamingResolver.update`):
every pair's provenance is tracked in a
:class:`~repro.streaming.provenance.ProvenanceLedger`, so removing a record
invalidates exactly the provenance-reachable pairs and components — their
votes, posteriors and HIT coverage are discarded, the surviving members are
re-connected from their surviving edges, and only that dirty region is
re-aggregated; every clean component is untouched.

Sessions can also be made **durable**: with
``WorkflowConfig.checkpoint_dir`` set, every event (batch, truth,
retraction, update, flush) is written to an fsynced write-ahead journal
*before* it is applied, fresh crowd votes and a state digest are journaled
after, and a compacted snapshot is written every
``checkpoint_every_batches`` events.  :meth:`StreamingResolver.save` forces
a snapshot; :meth:`StreamingResolver.restore` rebuilds a session from the
newest snapshot plus the journal tail, with results **bit-identical** to a
session that never stopped (see :mod:`repro.streaming.persistence`).

**Equivalence.**  Because set similarity is pairwise, the union of join
deltas equals the full-store join; because per-pair votes are a pure
function of the pair key, vote sets agree with a one-shot
:class:`~repro.core.workflow.HybridWorkflow` run in ``vote_mode="per-pair"``;
and because ranking is shared (:mod:`repro.core.ranking`), the final match
set is *identical* to batch resolution for any arrival order under
``recrowd_policy="never"`` (with majority aggregation in any scope, or
Dawid-Skene in ``"global"`` scope).  The property tests in
``tests/test_streaming.py`` assert this across randomized arrival orders,
and ``tests/test_persistence.py`` asserts the crash-recovery property
across randomized event schedules and crash points.
"""

from __future__ import annotations

import logging
from dataclasses import asdict, replace
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.aggregation.majority import Vote
from repro.core.config import WorkflowConfig
from repro.core.ranking import rank_candidates
from repro.core.results import ResolutionResult, StreamingDelta
from repro.core.workflow import build_aggregator, build_hit_generator
from repro.crowd.async_platform import (
    AsyncCrowdPlatform,
    BackpressureError,
    VoteDelivery,
)
from repro.crowd.faults import FaultPlan
from repro.crowd.latency import LatencyModel
from repro.crowd.platform import SimulatedCrowdPlatform
from repro.crowd.pricing import PricingModel
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import WorkerPool
from repro.datasets.base import Dataset
from repro.graph.union_find import IncrementalUnionFind
from repro.records.pairs import PairSet, RecordPair, canonical_pair
from repro.records.record import Record, RecordError, RecordStore
from repro.storage import STORE_FILENAME, SqliteStore, open_store
from repro.streaming import persistence
from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.provenance import ProvenanceLedger

logger = logging.getLogger(__name__)

PairKey = Tuple[str, str]

#: StreamingDelta fields whose per-event values are meaningful to *sum*
#: across events — surfaced as ``streaming_<field>_total`` counters.
#: (``batch_index`` and the point-in-time gauges like ``clean_components``
#: are deliberately absent: summing them means nothing.)
DELTA_COUNTER_FIELDS = (
    "new_records",
    "new_candidate_pairs",
    "dirty_components",
    "dirty_pairs",
    "regenerated_hits",
    "crowdsourced_pairs",
    "reused_vote_pairs",
    "stale_skipped_components",
    "invalidated_pairs",
    "retracted_records",
)

#: Config fields that change *what a session computes* (as opposed to how
#: fast or how durably).  Restoring a checkpoint under a config that
#: differs on any of these cannot be bit-identical, so restore() re-joins:
#: it harvests the records and truth from the old session, archives the
#: old artifacts and re-ingests everything under the new config.
RESULT_CONFIG_FIELDS = (
    "likelihood_threshold",
    "similarity_attributes",
    "hit_type",
    "cluster_size",
    "pairs_per_hit",
    "cluster_generator",
    "packing_method",
    "assignments_per_hit",
    "use_qualification_test",
    "aggregation",
    "decision_threshold",
    "recrowd_policy",
    "streaming_aggregation_scope",
    "staleness_epsilon",
    # The async crowd knobs are result-bearing because retry reissues cost
    # real (simulated) money: a different timeout/backoff/fault schedule
    # yields a different accumulated cost, and cost is part of the digest.
    "crowd_mode",
    "vote_timeout",
    "max_inflight_hits",
    "backpressure_policy",
    "crowd_max_retries",
    "crowd_backoff_ticks",
    "fault_plan",
    "seed",
)


class StreamingResolver:
    """An open entity-resolution session over arriving record batches.

    Parameters
    ----------
    config:
        Workflow configuration.  The streaming-specific knobs are
        ``recrowd_policy``, ``streaming_aggregation_scope``,
        ``staleness_epsilon`` and ``stream_batch_size``; ``join_workers``
        shards the incremental machine pass across processes and
        ``join_pool`` picks the reused shared pool (default) or the
        legacy fork-per-batch pool for those shards;
        ``checkpoint_dir`` / ``checkpoint_every_batches`` make the session
        durable (write-ahead journal plus periodic snapshots);
        ``vote_mode`` is forced to ``"per-pair"``
        (the sequential mode cannot preserve votes across batches).
    cross_sources:
        Restrict candidates to cross-source pairs (record linkage).
    platform:
        Optional pre-built crowd platform; must be in per-pair vote mode.

    Lifecycle: call :meth:`add_batch` for every arrival (it returns a
    delta-aware :class:`~repro.core.results.ResolutionResult` snapshot),
    :meth:`retract` / :meth:`update` when a record is withdrawn or revised,
    :meth:`snapshot` at any point for the current state without new data,
    :meth:`save` to checkpoint and :meth:`restore` to resume a durable
    session after a crash or restart.
    """

    def __init__(
        self,
        config: Optional[WorkflowConfig] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        worker_pool: Optional[WorkerPool] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
        _resume_storage: bool = False,
    ) -> None:
        self.config = config or WorkflowConfig()
        self.cross_sources = cross_sources
        obs.activate_if_configured(self.config)
        if platform is not None:
            if platform.vote_mode != "per-pair":
                raise ValueError(
                    "StreamingResolver requires a platform in 'per-pair' vote "
                    "mode; sequential votes cannot be preserved across batches"
                )
            self.platform = platform
        else:
            qualification = QualificationTest() if self.config.use_qualification_test else None
            self.platform = SimulatedCrowdPlatform(
                pool=worker_pool or WorkerPool.build(seed=self.config.seed),
                assignments_per_hit=self.config.assignments_per_hit,
                qualification=qualification,
                pricing=pricing,
                latency=latency,
                seed=self.config.seed,
                vote_mode="per-pair",
            )
        # Async crowd mode: the same deterministic per-pair platform, but
        # publishes enqueue HITs on a virtual clock and votes arrive through
        # per-event polls (with timeouts, retries, reissues, backpressure).
        self.crowd: Optional[AsyncCrowdPlatform] = None
        if self.config.crowd_mode == "async":
            self.crowd = AsyncCrowdPlatform(
                self.platform,
                vote_timeout=self.config.vote_timeout,
                max_inflight_hits=self.config.max_inflight_hits,
                backpressure_policy=self.config.backpressure_policy,
                max_retries=self.config.crowd_max_retries,
                backoff_ticks=self.config.crowd_backoff_ticks,
                fault_plan=(
                    FaultPlan.from_dict(self.config.fault_plan)
                    if self.config.fault_plan is not None
                    else None
                ),
            )
        # Degraded-progress bookkeeping (async mode): partially delivered
        # vote slots per in-flight pair, the vote round each pair was
        # published under, and pairs whose publish was shed by backpressure
        # (retried on the next crowd event and force-published at flush).
        # A pair enters the ledger only when all of its slots have arrived,
        # so sync-mode ledger/digest semantics are untouched.
        self._slot_votes: Dict[PairKey, Dict[int, Vote]] = {}
        self._inflight_rounds: Dict[PairKey, int] = {}
        self._starved_pairs: Set[PairKey] = set()
        # Storage backend: every piece of accumulated state lives behind
        # it.  The memory backend is the pre-existing in-process state;
        # the sqlite backend mirrors each event into one WAL-mode file
        # (committed per event), which makes restore a page-in.
        storage_path = self.config.storage_path
        if (
            self.config.storage_backend == "sqlite"
            and storage_path is None
            and self.config.checkpoint_dir
        ):
            storage_path = str(Path(self.config.checkpoint_dir) / STORE_FILENAME)
        self.storage = open_store(self.config.storage_backend, storage_path)
        if (
            self.storage.persistent
            and not _resume_storage
            and self.storage.get_meta("version") is not None
        ):
            raise persistence.PersistenceError(
                f"store {storage_path} already holds a session; "
                "use StreamingResolver.restore() to resume it"
            )
        self.join = IncrementalSimJoin(
            threshold=self.config.likelihood_threshold,
            attributes=self.config.similarity_attributes,
            backend=self.config.join_backend,
            cross_sources=cross_sources,
            workers=self.config.join_workers or None,
            pool_mode=self.config.join_pool,
            storage=self.storage,
        )
        self.store = RecordStore(name="stream", backing=self.storage)
        self.components = IncrementalUnionFind()
        self.candidates = PairSet()
        self.provenance = ProvenanceLedger(backing=self.storage)
        self._truth: Set[PairKey] = set()
        # Accumulated crowd workload across all batches.
        self._hit_count = 0
        self._cost = 0.0
        self._assignment_seconds: List[float] = []
        self._pairs_per_hit_seen: Optional[int] = None
        self._generator_name = ""
        self._batch_index = 0
        self._last_delta = StreamingDelta()
        # Fresh votes folded in by the most recent applied event (journaled
        # by the commit outcome record and verified during replay).  ``None``
        # is the page-in sentinel: a session rebuilt from a persistent store
        # cannot know which votes its last event folded in, so the first
        # replayed commit record is verified by digest only.
        self._last_fresh_votes: Optional[Dict[PairKey, List[Vote]]] = {}
        # Durability: write-ahead journal + snapshot cadence.
        self._journal: Optional[persistence.SessionJournal] = None
        self._events_applied = 0
        self._mutations_since_snapshot = 0
        self._replaying = False
        if self.config.checkpoint_dir:
            directory = Path(self.config.checkpoint_dir)
            journal = persistence.SessionJournal(
                directory, segment_events=self.config.journal_segment_events
            )
            if persistence.load_latest_snapshot(directory) is not None or journal.event_count:
                raise persistence.PersistenceError(
                    f"checkpoint directory {directory} already holds a session; "
                    "use StreamingResolver.restore() to resume it"
                )
            self._journal = journal
            self._journal_intent(
                "session",
                {
                    "version": persistence.FORMAT_VERSION,
                    "config": self._config_payload(),
                    "cross_sources": list(cross_sources) if cross_sources else None,
                },
            )
        if self.storage.persistent and not _resume_storage:
            self._mirror_config_meta()
            self._mirror_session_meta()
            self.storage.commit()

    # ----------------------------------------------------------- hot ledger
    # The vote/posterior/coverage state lives in the storage backend's
    # PairLedger.  Reads stay plain dict access through these views (the
    # session's inner loops touch them constantly); every mutation goes
    # through a ledger *method*, which the SQLite backend overrides to
    # mirror the post-state into its tables.
    @property
    def _ledger(self):
        return self.storage.ledger

    @property
    def _votes(self) -> Dict[PairKey, List[Vote]]:
        """Per-pair votes in oracle order (ledger view)."""
        return self.storage.ledger.votes

    @property
    def _vote_rounds(self) -> Dict[PairKey, int]:
        """Completed crowd rounds per pair, 0 = never asked (ledger view)."""
        return self.storage.ledger.vote_rounds

    @property
    def _pending_votes(self) -> Dict[PairKey, int]:
        """Votes gained per pair since its last aggregation (ledger view).

        Drives the bounded-staleness check (``config.staleness_epsilon``);
        zeroed per pair on aggregation, so a cached posterior is never more
        than epsilon votes behind the ledger of its component.
        """
        return self.storage.ledger.pending_votes

    @property
    def _posteriors(self) -> Dict[PairKey, float]:
        """The aggregated posterior cache (ledger view)."""
        return self.storage.ledger.posteriors

    @property
    def _covered(self) -> Set[PairKey]:
        """Pairs covered by at least one published HIT (ledger view)."""
        return self.storage.ledger.covered

    # -------------------------------------------------------------- queries
    @property
    def record_count(self) -> int:
        """Number of resident records."""
        return len(self.store)

    @property
    def candidate_count(self) -> int:
        """Number of candidate pairs discovered so far."""
        return len(self.candidates)

    @property
    def events_applied(self) -> int:
        """Journal events reflected in the current state (0 if not durable)."""
        return self._events_applied

    def votes_for(self, id_a: str, id_b: str) -> List[Vote]:
        """The current vote ledger entry of one pair (empty if never asked)."""
        return list(self._votes.get(canonical_pair(id_a, id_b), ()))

    def covered_pairs(self) -> FrozenSet[PairKey]:
        """Candidate pairs covered by at least one published HIT so far."""
        return frozenset(self._covered)

    def state_digest(self) -> str:
        """Exact digest of the aggregated state (posteriors, cost, HITs).

        Journaled by every commit record and re-checked during replay, so a
        restore that diverged from the original session by even one float
        bit is detected instead of silently trusted.
        """
        return persistence.state_digest(self._posteriors, self._cost, self._hit_count)

    # ------------------------------------------------------------------ api
    def add_truth(self, true_matches: Iterable[PairKey]) -> None:
        """Register ground-truth matching pairs for the simulated crowd.

        The simulated workers look answers up in this set; pairs may
        reference records that have not arrived yet.
        """
        pairs = sorted({canonical_pair(a, b) for a, b in true_matches})
        self._journal_intent("truth", {"pairs": [list(pair) for pair in pairs]})
        self._apply_truth(pairs)
        self._finish_event()
        if self._journal is not None and not self._replaying:
            self._journal.release_applied(self._events_applied)

    def add_batch(
        self,
        records: Sequence[Record],
        true_matches: Optional[Iterable[PairKey]] = None,
    ) -> ResolutionResult:
        """Ingest a batch of new records and return the updated snapshot.

        Runs the incremental machine pass, dirties the touched components,
        regenerates and publishes HITs for them, folds fresh votes into the
        ledger, re-aggregates what changed and snapshots the session.  For
        durable sessions the batch is journaled before any state changes.
        """
        batch = list(records)
        seen_batch: Set[str] = set()
        for record in batch:
            if record.record_id in self.join or record.record_id in seen_batch:
                raise RecordError(f"duplicate record id: {record.record_id!r}")
            seen_batch.add(record.record_id)
        truth_pairs = (
            sorted({canonical_pair(a, b) for a, b in true_matches})
            if true_matches is not None
            else None
        )
        payload: Dict[str, object] = {
            "records": [persistence.encode_record(record) for record in batch]
        }
        if truth_pairs is not None:
            payload["truth"] = [list(pair) for pair in truth_pairs]
        self._journal_intent("batch", payload)
        result = self._apply_batch(batch, truth_pairs)
        self._finish_event()
        self._journal_commit()
        self._maybe_autosave()
        return result

    def retract(self, record_id: str) -> ResolutionResult:
        """Withdraw a resident record and re-resolve only what it touched.

        Provenance makes the blast radius exact: the record's pairs (and
        nothing else) are invalidated — dropped from the candidate set, the
        vote ledger, the posterior cache and the HIT coverage — its rows
        are tombstoned out of the columnar index, and the component it
        lived in is re-formed from the surviving edges.  Only the resulting
        dirty components are re-aggregated (bypassing the staleness filter:
        after a retraction the cached posteriors of the touched region are
        wrong, not merely stale); every clean component is untouched, which
        the returned ``delta`` reports (``retracted_records``,
        ``invalidated_pairs``, ``dirty_components`` vs
        ``clean_components``).

        Retraction never publishes HITs — surviving pairs keep the votes
        they already paid for.  Raises
        :class:`~repro.records.record.RecordError` for unknown ids.
        """
        if record_id not in self.store:
            raise RecordError(f"unknown record id: {record_id!r}")
        self._journal_intent("retract", {"record_id": record_id})
        result = self._apply_retract(record_id)
        self._finish_event()
        self._journal_commit()
        self._maybe_autosave()
        return result

    def update(self, record: Record) -> ResolutionResult:
        """Replace a resident record with a revised version.

        Equivalent to :meth:`retract` followed by ingesting the new version
        as a one-record batch (journaled as a single ``update`` event): the
        old version's provenance-reachable pairs are invalidated, the new
        version is joined against the resident store, and the touched
        components are re-crowdsourced/re-aggregated under the configured
        re-crowd policy.  The returned delta carries both sides —
        ``retracted_records`` / ``invalidated_pairs`` from the retraction
        and the regular arrival counters from the re-ingest.
        """
        if record.record_id not in self.store:
            raise RecordError(f"unknown record id: {record.record_id!r}")
        self._journal_intent("update", {"record": persistence.encode_record(record)})
        result = self._apply_update(record)
        self._finish_event()
        self._journal_commit()
        self._maybe_autosave()
        return result

    def flush(self) -> ResolutionResult:
        """Fold every staleness-deferred component into the posterior cache.

        Bounded-staleness aggregation (``config.staleness_epsilon``) can
        leave components whose pending vote gain never crossed the bound;
        ``flush`` re-aggregates each such component in full (the same unit
        ``_aggregate`` uses) and returns the settled snapshot.  A no-op
        when nothing is pending — e.g. with the default epsilon of 0.
        """
        self._journal_intent("flush", {})
        result = self._apply_flush()
        self._finish_event()
        self._journal_commit()
        self._maybe_autosave()
        return result

    # ------------------------------------------------------- event appliers
    def _apply_truth(self, pairs: Iterable[Sequence[str]]) -> None:
        self._truth.update((pair[0], pair[1]) for pair in pairs)
        if self.storage.persistent:
            self.storage.set_meta(
                "truth", sorted(list(pair) for pair in self._truth)
            )

    def _apply_batch(
        self,
        batch: List[Record],
        truth_pairs: Optional[Iterable[Sequence[str]]],
    ) -> ResolutionResult:
        if truth_pairs is not None:
            self._apply_truth(truth_pairs)
        self._batch_index += 1
        delta = StreamingDelta(batch_index=self._batch_index, new_records=len(batch))
        self._last_fresh_votes = {}
        logger.debug("batch %d: %d records arriving", self._batch_index, len(batch))

        with obs.span("streaming.batch", batch=len(batch), index=self._batch_index):
            # Stage 1: incremental machine pass.
            with obs.span("streaming.batch.join", batch=len(batch)):
                new_pairs = self.join.add_batch(batch)
                for record in batch:
                    self.store.add(record)
                    self.components.add(record.record_id)
                    self.provenance.add_record(record.record_id)
            delta.new_candidate_pairs = len(new_pairs)

            # Stage 2: component maintenance (and pair provenance).
            with obs.span("streaming.batch.components", pairs=len(new_pairs)):
                for pair in new_pairs:
                    self.candidates.add(pair)
                    self._ledger.add_pair(pair.key, pair.likelihood)
                    self.components.union(pair.id_a, pair.id_b)
                    self.provenance.record_pair(pair.id_a, pair.id_b, self._batch_index)

                # Only dirty components are enumerated (their member lists
                # are maintained by the union-find); clean components cost
                # nothing here.
                dirty_roots = self.components.dirty_roots()
                dirty_pairs: Set[PairKey] = set()
                for root in dirty_roots:
                    for member in self.components.members(root):
                        dirty_pairs.update(self.provenance.pairs_of(member))
            delta.dirty_components = len(dirty_roots)
            delta.clean_components = self.components.component_count - len(dirty_roots)
            delta.dirty_pairs = len(dirty_pairs)

            # Stages 3 + 4: regenerate HITs for dirty components and crowdsource.
            if dirty_pairs or (self.crowd is not None and self._starved_pairs):
                with obs.span("streaming.batch.crowd", pairs=len(dirty_pairs)):
                    self._crowdsource_dirty(dirty_pairs, delta)

            # Stage 4b (async mode): poll the platform — one virtual tick per
            # event — and fold completed pairs into the ledger; their whole
            # components re-aggregate alongside the batch's own dirty region.
            completed_pairs: Set[PairKey] = set()
            if self.crowd is not None:
                completed_pairs = self._ingest_async(delta)

            # Stage 5: re-aggregate what changed.
            aggregate_pairs = dirty_pairs | self._expand_components(completed_pairs)
            with obs.span("streaming.batch.aggregate", pairs=len(aggregate_pairs)):
                self._aggregate(aggregate_pairs, delta)

            self.components.clear_dirty()
        self._last_delta = delta
        self._emit_delta_metrics(delta)
        return self.snapshot()

    def _apply_retract(self, record_id: str) -> ResolutionResult:
        self._batch_index += 1
        delta = StreamingDelta(batch_index=self._batch_index, retracted_records=1)
        self._last_fresh_votes = {}
        logger.debug("event %d: retracting record %s", self._batch_index, record_id)

        with obs.span("streaming.retract", index=self._batch_index):
            # Provenance bounds the blast radius: exactly the record's pairs.
            impact = self.provenance.retract_record(record_id)
            self.join.retract(record_id)
            self.store.remove(record_id)
            for key in impact.dropped_pairs:
                self.candidates.discard(*key)
                self._ledger.drop_pair(key)
                # Async bookkeeping: a retracted pair's in-flight votes are
                # abandoned (late deliveries for it will be ignored on
                # ingest) and its shed publishes are cancelled.
                self._inflight_rounds.pop(key, None)
                self._slot_votes.pop(key, None)
                self._starved_pairs.discard(key)
            delta.invalidated_pairs = len(impact.dropped_pairs)

            # Re-form the dissolved component from the surviving edges; the
            # survivors come back dirty, everything else stays clean.
            survivors = self.components.detach([record_id])
            for survivor in survivors:
                for key in self.provenance.pairs_of(survivor):
                    self.components.union(key[0], key[1])

            dirty_roots = self.components.dirty_roots()
            dirty_pairs: Set[PairKey] = set()
            for root in dirty_roots:
                for member in self.components.members(root):
                    dirty_pairs.update(self.provenance.pairs_of(member))
            delta.dirty_components = len(dirty_roots)
            delta.clean_components = self.components.component_count - len(dirty_roots)
            delta.dirty_pairs = len(dirty_pairs)

            # No crowdsourcing: retraction only removes evidence.  Re-aggregate
            # the dirty region unconditionally — its cached posteriors are
            # invalid, not merely stale, so the epsilon filter must not apply.
            self._aggregate(dirty_pairs, delta, force=True)

            self.components.clear_dirty()
        self._last_delta = delta
        self._emit_delta_metrics(delta)
        return self.snapshot()

    def _apply_update(self, record: Record) -> ResolutionResult:
        # Both halves emit their own spans and delta counters (so an update
        # accounts as one retraction plus one arrival); only the event count
        # is recorded here.
        if obs.enabled():
            obs.inc("streaming_updates_total", 1,
                    help="Record update events (retract + re-ingest).")
        self._apply_retract(record.record_id)
        invalidated = self._last_delta.invalidated_pairs
        self._apply_batch([record], None)
        # Merge both halves into the event's delta: the ingest counters plus
        # the retraction's invalidation stats.
        self._last_delta.retracted_records = 1
        self._last_delta.invalidated_pairs = invalidated
        return self.snapshot()

    def _apply_flush(self) -> ResolutionResult:
        self._last_fresh_votes = {}
        with obs.span("streaming.flush"):
            if self.crowd is not None:
                # Settle the async crowd first: force-publish shed pairs,
                # drain every outstanding delivery (retries included) and
                # fold the completions into the ledger.  The completed
                # pairs gain pending votes, so the staleness flush below
                # re-aggregates their components.
                self._flush_async()
            pending = [
                key
                for key, gained in self._pending_votes.items()
                if gained > 0 and key in self._votes
            ]
            if pending:
                roots = {self.components.find(key[0]) for key in pending}
                keys: Set[PairKey] = set()
                for root in roots:
                    for member in self.components.members(root):
                        keys.update(self.provenance.pairs_of(member))
                voted = [key for key in sorted(keys) if key in self._votes]
                aggregator = build_aggregator(self.config)
                for key, posterior in aggregator.aggregate(
                    self._ledger_votes(voted)
                ).items():
                    self._ledger.set_posterior(key, posterior)
                self._ledger.clear_pending(voted)
        return self.snapshot()

    def _emit_delta_metrics(self, delta: StreamingDelta) -> None:
        """Fold one event's delta counters into the metrics registry.

        Only the accumulable fields (``DELTA_COUNTER_FIELDS``) become
        counters; update events rely on their two halves emitting here, so
        this must be called exactly once per applied retract/batch half.
        """
        if not obs.enabled():
            return
        values = delta.as_dict()
        for name in DELTA_COUNTER_FIELDS:
            value = values.get(name, 0)
            if value:
                obs.inc(f"streaming_{name}_total", value,
                        help=f"Sum of StreamingDelta.{name} across events.")

    # ----------------------------------------------------------- durability
    def _config_payload(self) -> Dict[str, object]:
        payload = asdict(self.config)
        if payload.get("similarity_attributes") is not None:
            payload["similarity_attributes"] = list(payload["similarity_attributes"])
        return payload

    def _mirror_config_meta(self) -> None:
        """Write the session-identifying metadata into a persistent store."""
        self.storage.set_meta("version", persistence.FORMAT_VERSION)
        self.storage.set_meta("config", self._config_payload())
        self.storage.set_meta(
            "cross_sources", list(self.cross_sources) if self.cross_sources else None
        )
        self.storage.set_meta("truth", sorted(list(pair) for pair in self._truth))

    def _mirror_session_meta(self) -> None:
        """Mirror the crowd-workload counters and the journal position."""
        self.storage.set_meta(
            "session",
            {
                "hit_count": self._hit_count,
                "cost": self._cost,
                "batch_index": self._batch_index,
                "pairs_per_hit_seen": self._pairs_per_hit_seen,
                "generator_name": self._generator_name,
                "last_delta": self._last_delta.as_dict(),
            },
        )
        self.storage.set_meta("async", self._async_state_dict())
        self.storage.set_meta("events_applied", self._events_applied)

    def _finish_event(self) -> None:
        """Event boundary of a persistent store: counters plus one commit.

        All mirrored writes since the last boundary form one transaction;
        committing here means a crash mid-event rolls the store back to the
        previous event and the journal replays the interrupted one.
        """
        if not self.storage.persistent:
            return
        self._mirror_session_meta()
        if obs.enabled():
            # Mirror the live metrics snapshot so `repro stats --store` can
            # build a cost report from the store alone.  Purely additive
            # meta — restore and the state digest never read it.
            snapshot = obs.snapshot()
            if snapshot is not None:
                self.storage.set_meta("metrics", snapshot.to_dict())
        self.storage.commit()

    def _journal_intent(self, event_type: str, payload: Dict[str, object]) -> None:
        """Write-ahead rule: record the intent before touching state."""
        if self._journal is None or self._replaying:
            return
        self._events_applied = self._journal.append(event_type, payload)

    def _journal_commit(self) -> None:
        """Record an applied event's outcome: fresh votes, delta, digest."""
        if self._journal is None or self._replaying:
            return
        payload = {
            "delta": self._last_delta.as_dict(),
            "votes": [
                [key[0], key[1], persistence.encode_votes(votes)]
                for key, votes in sorted(self._last_fresh_votes.items())
            ],
            "digest": self.state_digest(),
        }
        self._events_applied = self._journal.append("commit", payload)
        # Applied events are never re-read from this live instance (restore
        # re-scans the files), so their payloads need not stay resident.
        self._journal.release_applied(self._events_applied)

    def _maybe_autosave(self) -> None:
        if self._journal is None or self._replaying:
            return
        every = self.config.checkpoint_every_batches
        self._mutations_since_snapshot += 1
        if every > 0 and self._mutations_since_snapshot >= every:
            self.save()

    def save(self, path: Optional[str] = None) -> Path:
        """Checkpoint the session and retire the journal it covers.

        With the in-memory backend this writes a compacted snapshot of the
        full session state: self-contained (it embeds the config), written
        atomically, tagged with the journal position it reflects — restoring
        loads it and replays only the journal tail.  ``path`` defaults to
        ``config.checkpoint_dir``.

        With a persistent storage backend there is nothing to snapshot —
        the store already holds every committed event — so ``save()``
        commits the store and returns its path instead.

        Either way, closed journal segments fully covered by the checkpoint
        are archived (:meth:`~repro.streaming.persistence.SessionJournal.compact_covered`),
        so the journal directory stops growing without bound.  Returns the
        snapshot (or store) path.
        """
        directory = Path(path) if path is not None else (
            Path(self.config.checkpoint_dir) if self.config.checkpoint_dir else None
        )
        if self.storage.persistent:
            self.storage.commit()
            if (
                directory is not None
                and self._journal is not None
                and directory == self._journal.directory
            ):
                self._mutations_since_snapshot = 0
                self._journal.compact_covered(
                    int(self.storage.get_meta("events_applied", 0))
                )
            return Path(self.storage.path)
        if directory is None:
            raise persistence.PersistenceError(
                "save() needs a path (or config.checkpoint_dir to be set)"
            )
        target = persistence.write_snapshot(
            directory, self.state_dict(), self._events_applied
        )
        if self._journal is not None and directory == self._journal.directory:
            self._mutations_since_snapshot = 0
            self._journal.compact_covered(self._events_applied)
        return target

    @classmethod
    def restore(
        cls,
        path: str,
        config: Optional[WorkflowConfig] = None,
        verify: bool = True,
        resume_journal: bool = True,
        platform: Optional[SimulatedCrowdPlatform] = None,
        worker_pool: Optional[WorkerPool] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
    ) -> "StreamingResolver":
        """Resume a durable session from its checkpoint directory.

        Loads the newest readable snapshot (if any) and replays the journal
        events it has not seen, re-deriving crowd votes through the
        deterministic per-pair oracle.  With ``verify`` (default) every
        replayed event is checked against its journaled ``commit`` record —
        vote-for-vote and digest-for-digest — so silent divergence raises
        :class:`~repro.streaming.persistence.JournalCorruptionError`
        instead of propagating.  The restored session is bit-identical to
        one that processed the same events without stopping, and (with
        ``resume_journal``) keeps journaling to the same directory.

        ``config`` overrides the stored configuration.  When the override
        differs on a field that changes *what the session computes* (see
        ``RESULT_CONFIG_FIELDS``), a bit-identical resume is impossible —
        instead of refusing, restore archives the old artifacts and
        **re-joins**: the stored records and truth are re-ingested from
        scratch under the new configuration (a fresh durable session in the
        same directory).
        """
        directory = Path(path)
        snapshot = persistence.load_latest_snapshot(directory)
        journal = (
            persistence.SessionJournal(directory)
            if persistence.journal_present(directory)
            else None
        )
        events = journal.events() if journal is not None else []
        store_path = directory / STORE_FILENAME
        store_config: Optional[Dict[str, object]] = None
        store_cross: Optional[Sequence[str]] = None
        if store_path.exists():
            probe = SqliteStore(store_path)
            try:
                store_config = probe.get_meta("config")  # type: ignore[assignment]
                store_cross = probe.get_meta("cross_sources")  # type: ignore[assignment]
            finally:
                probe.close()
        if snapshot is None and not events and store_config is None:
            raise persistence.PersistenceError(
                f"{directory} contains neither a snapshot, a journal nor a store"
            )

        state: Optional[Dict[str, object]] = None
        applied = 0
        stored_config: Optional[Dict[str, object]] = None
        cross_sources: Optional[Sequence[str]] = None
        if snapshot is not None:
            state, applied = snapshot
            stored_config = state["config"]  # type: ignore[assignment]
            cross_sources = state["cross_sources"]  # type: ignore[assignment]
        elif events and events[0].type == "session":
            stored_config = events[0].payload["config"]  # type: ignore[assignment]
            cross_sources = events[0].payload["cross_sources"]  # type: ignore[assignment]
        elif store_config is not None:
            stored_config = store_config
            cross_sources = store_cross
        if config is None:
            if stored_config is None:
                raise persistence.PersistenceError(
                    "no stored configuration found; pass config= explicitly"
                )
            config = WorkflowConfig(**stored_config)
        elif stored_config is not None and cls._result_config_changed(
            config, stored_config
        ):
            return cls._restore_rejoin(
                directory,
                config,
                platform=platform,
                worker_pool=worker_pool,
                pricing=pricing,
                latency=latency,
            )

        resolver_config = replace(config, checkpoint_dir=None)
        if config.storage_backend == "sqlite" and config.storage_path is None:
            resolver_config = replace(resolver_config, storage_path=str(store_path))
        resolver = cls(
            config=resolver_config,
            cross_sources=tuple(cross_sources) if cross_sources else None,  # type: ignore[arg-type]
            platform=platform,
            worker_pool=worker_pool,
            pricing=pricing,
            latency=latency,
            _resume_storage=True,
        )
        # A persistent store that already holds the session wins over any
        # snapshot: it is committed per event, so it is always at least as
        # recent, and paging it in skips unpickling the whole state.
        if resolver.storage.persistent and resolver.storage.get_meta("version") is not None:
            resolver._page_in()
            applied = resolver._events_applied
        elif state is not None:
            resolver.load_state_dict(state)
            resolver._events_applied = applied

        resolver._replaying = True
        try:
            with obs.span("streaming.restore", events=len(events), applied=applied):
                for event in events:
                    if event.seq <= applied:
                        continue
                    resolver._apply_journal_event(event, verify=verify)
                    resolver._events_applied = event.seq
        finally:
            resolver._replaying = False
        logger.info(
            "restored session from %s at event %d", directory, resolver._events_applied
        )
        if resolver._last_fresh_votes is None:
            resolver._last_fresh_votes = {}

        if resume_journal:
            resolver.config = replace(resolver_config, checkpoint_dir=str(directory))
        else:
            resolver.config = replace(resolver_config, checkpoint_dir=None)
        if resolver.storage.persistent:
            resolver._mirror_config_meta()
        resolver._finish_event()
        if resume_journal:
            if journal is None:
                journal = persistence.SessionJournal(
                    directory,
                    start_seq=resolver._events_applied + 1,
                    segment_events=config.journal_segment_events,
                )
            else:
                journal.set_segment_events(config.journal_segment_events)
            resolver._journal = journal
        return resolver

    @staticmethod
    def _result_config_changed(
        new: WorkflowConfig, stored: Dict[str, object]
    ) -> bool:
        """True when ``new`` differs from ``stored`` on a result-bearing field."""
        payload = asdict(new)

        def norm(value: object) -> object:
            return list(value) if isinstance(value, (list, tuple)) else value

        return any(
            norm(payload.get(name)) != norm(stored.get(name))
            for name in RESULT_CONFIG_FIELDS
        )

    @classmethod
    def _restore_rejoin(
        cls,
        directory: Path,
        config: WorkflowConfig,
        platform: Optional[SimulatedCrowdPlatform] = None,
        worker_pool: Optional[WorkerPool] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
    ) -> "StreamingResolver":
        """Restore under a *changed* result config: harvest, archive, re-join.

        The old session is restored under its own stored configuration
        (digest verification still applies) just long enough to harvest its
        records, ground truth and source restriction; its artifacts —
        journal, segments, snapshots, store — move to
        ``archive/rejoin-<events>/``; then a fresh durable session in the
        same directory re-ingests everything under the new configuration in
        ``stream_batch_size`` chunks.
        """
        old = cls.restore(str(directory), verify=True, resume_journal=False)
        records = list(old.store)
        truth = sorted(old._truth)
        cross_sources = old.cross_sources
        applied = old._events_applied
        old.storage.close()

        bucket = directory / persistence.ARCHIVE_DIRNAME / f"rejoin-{applied:012d}"
        bucket.mkdir(parents=True, exist_ok=True)
        for item in sorted(directory.iterdir()):
            name = item.name
            if (
                name == persistence.JOURNAL_FILENAME
                or persistence.SEGMENT_PATTERN.match(name)
                or persistence.SNAPSHOT_PATTERN.match(name)
                or name == STORE_FILENAME
                or name.startswith(STORE_FILENAME + "-")
            ):
                item.replace(bucket / name)

        resolver = cls(
            config=replace(config, checkpoint_dir=str(directory)),
            cross_sources=cross_sources,
            platform=platform,
            worker_pool=worker_pool,
            pricing=pricing,
            latency=latency,
        )
        if truth:
            resolver.add_truth(truth)
        size = max(1, config.stream_batch_size)
        for start in range(0, len(records), size):
            resolver.add_batch(records[start : start + size])
        return resolver

    def _page_in(self) -> None:
        """Rebuild the session from a persistent store's committed state.

        The inverse of the per-event mirror writes: records and the ledger
        are already resident (the store loads its ledger dicts on open),
        so this re-derives only the in-process structures — the join
        substrate from its stored rows/vocabulary/CSR chunks, provenance
        from its table, candidates from the pair ledger, and the union-find
        forest from record arrival order plus the pair edges (roots only
        serve as grouping keys, so the rebuilt forest is behaviorally
        equivalent to the original).
        """
        storage = self.storage
        with obs.span("storage.page_in"):
            truth = storage.get_meta("truth") or []
            self._truth = {(pair[0], pair[1]) for pair in truth}
            self.join = IncrementalSimJoin.from_store(
                storage,
                threshold=self.config.likelihood_threshold,
                attributes=self.config.similarity_attributes,
                backend=self.config.join_backend,
                cross_sources=self.cross_sources,
                workers=self.config.join_workers or None,
                pool_mode=self.config.join_pool,
            )
            self.provenance = ProvenanceLedger.from_store(storage)
            self.candidates = PairSet(
                RecordPair(key[0], key[1], likelihood=likelihood)
                for key, likelihood in storage.ledger.pairs.items()
            )
            self.components = IncrementalUnionFind()
            for record_id in storage.record_ids():
                self.components.add(record_id)
            for key in sorted(storage.ledger.pairs):
                self.components.union(key[0], key[1])
            self.components.clear_dirty()
        session_meta = storage.get_meta("session") or {}
        self._hit_count = int(session_meta.get("hit_count", 0))
        self._cost = session_meta.get("cost", 0.0)
        self._assignment_seconds = storage.load_assignment_seconds()
        self._pairs_per_hit_seen = session_meta.get("pairs_per_hit_seen")
        self._generator_name = session_meta.get("generator_name", "")
        self._batch_index = int(session_meta.get("batch_index", 0))
        self._last_delta = StreamingDelta(**session_meta.get("last_delta", {}))
        self._load_async_state(storage.get_meta("async"))
        self._events_applied = int(storage.get_meta("events_applied", 0))
        self._last_fresh_votes = None
        if obs.enabled():
            # Resume cumulative counters from the mirrored snapshot so a
            # restart doesn't reset `repro stats` to zero.
            obs.merge_snapshot(storage.get_meta("metrics"))

    def _apply_journal_event(self, event: "persistence.JournalEvent", verify: bool) -> None:
        """Replay one journal event against the current state."""
        payload = event.payload
        if event.type == "session":
            return
        if event.type == "truth":
            self._apply_truth([tuple(pair) for pair in payload["pairs"]])
            return
        if event.type == "batch":
            records = [persistence.decode_record(entry) for entry in payload["records"]]
            truth = payload.get("truth")
            self._apply_batch(
                records, [tuple(pair) for pair in truth] if truth is not None else None
            )
            return
        if event.type == "retract":
            self._apply_retract(payload["record_id"])
            return
        if event.type == "update":
            self._apply_update(persistence.decode_record(payload["record"]))
            return
        if event.type == "flush":
            self._apply_flush()
            return
        if event.type == "commit":
            if verify:
                # After a page-in the fresh votes of the last committed
                # event are unknowable (sentinel None) — the digest check
                # below still pins the full aggregated state.
                if self._last_fresh_votes is not None:
                    recorded = {
                        (entry[0], entry[1]): persistence.decode_votes(entry[2])
                        for entry in payload["votes"]
                    }
                    if recorded != self._last_fresh_votes:
                        raise persistence.JournalCorruptionError(
                            f"votes replayed for event {event.seq} differ from the journal"
                        )
                if payload["digest"] != self.state_digest():
                    raise persistence.JournalCorruptionError(
                        f"state digest after event {event.seq} differs from the journal"
                    )
            self._last_fresh_votes = {}
            return
        raise persistence.JournalCorruptionError(
            f"unknown journal event type {event.type!r} at sequence {event.seq}"
        )

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, object]:
        """Complete serializable session state.

        Everything a fresh process needs to continue bit-identically: the
        records and ground truth, the join index (vocabulary + CSR arrays),
        the union-find forest, the provenance ledger, the candidate pairs
        with their likelihoods, the vote ledger and posterior cache, and
        the accumulated crowd workload counters.
        """
        # Containers are shallow copies of the live state (elements are
        # immutable tuples/records), so snapshot construction is O(state)
        # with no per-element re-encoding — the save+restore round trip is
        # what the checkpoint benchmark gates against a cold re-resolve.
        return {
            "version": persistence.FORMAT_VERSION,
            "config": self._config_payload(),
            "cross_sources": list(self.cross_sources) if self.cross_sources else None,
            "records": list(self.store),
            "truth": set(self._truth),
            "join": self.join.state_dict(),
            "components": self.components.state_dict(),
            "provenance": self.provenance.state_dict(),
            "candidates": [
                (pair.id_a, pair.id_b, pair.likelihood) for pair in self.candidates
            ],
            "votes": {key: list(votes) for key, votes in self._votes.items()},
            "vote_rounds": dict(self._vote_rounds),
            "pending_votes": dict(self._pending_votes),
            "posteriors": dict(self._posteriors),
            "covered": set(self._covered),
            "hit_count": self._hit_count,
            "cost": self._cost,
            "assignment_seconds": list(self._assignment_seconds),
            "pairs_per_hit_seen": self._pairs_per_hit_seen,
            "generator_name": self._generator_name,
            "batch_index": self._batch_index,
            "last_delta": self._last_delta.as_dict(),
            # Async crowd queue + degraded-progress bookkeeping (None in
            # sync mode and absent in pre-async snapshots).
            "async": self._async_state_dict(),
            # Purely observational; absent/None in snapshots written while
            # metrics were off, and ignored by the state digest.
            "metrics": (
                obs.snapshot().to_dict() if obs.enabled() else None
            ),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Replace the session state with :meth:`state_dict` output.

        A persistent storage backend is wiped and fully re-mirrored: after
        the load its tables equal the loaded state exactly, as if the
        session had been stored there all along.
        """
        if state.get("version") != persistence.FORMAT_VERSION:
            raise persistence.PersistenceError(
                f"unsupported session state version {state.get('version')!r}"
            )
        self.storage.reset()
        self.store = RecordStore(name="stream", backing=self.storage)
        for record in state["records"]:  # type: ignore[union-attr]
            self.store.add(record)
        self._truth = set(state["truth"])  # type: ignore[arg-type]
        self.join = IncrementalSimJoin.from_state_dict(
            state["join"], storage=self.storage  # type: ignore[arg-type]
        )
        self.components = IncrementalUnionFind.from_state_dict(state["components"])  # type: ignore[arg-type]
        self.provenance = ProvenanceLedger.from_state_dict(
            state["provenance"], backing=self.storage  # type: ignore[arg-type]
        )
        self.candidates = PairSet(
            RecordPair(id_a, id_b, likelihood=likelihood)
            for id_a, id_b, likelihood in state["candidates"]  # type: ignore[union-attr]
        )
        self.storage.ledger.load_bulk(
            pairs={
                (id_a, id_b): likelihood
                for id_a, id_b, likelihood in state["candidates"]  # type: ignore[union-attr]
            },
            votes={key: list(votes) for key, votes in state["votes"].items()},  # type: ignore[union-attr]
            vote_rounds=dict(state["vote_rounds"]),  # type: ignore[arg-type]
            pending_votes=dict(state["pending_votes"]),  # type: ignore[arg-type]
            posteriors=dict(state["posteriors"]),  # type: ignore[arg-type]
            covered=set(state["covered"]),  # type: ignore[arg-type]
        )
        self._hit_count = state["hit_count"]  # type: ignore[assignment]
        self._cost = state["cost"]  # type: ignore[assignment]
        self._assignment_seconds = list(state["assignment_seconds"])  # type: ignore[arg-type]
        self.storage.append_assignment_seconds(self._assignment_seconds)
        self._pairs_per_hit_seen = state["pairs_per_hit_seen"]  # type: ignore[assignment]
        self._generator_name = state["generator_name"]  # type: ignore[assignment]
        self._batch_index = state["batch_index"]  # type: ignore[assignment]
        self._last_delta = StreamingDelta(**state["last_delta"])  # type: ignore[arg-type]
        self._load_async_state(state.get("async"))  # type: ignore[arg-type]
        self._last_fresh_votes = {}
        if obs.enabled():
            obs.merge_snapshot(state.get("metrics"))  # type: ignore[arg-type]
        if self.storage.persistent:
            self._mirror_config_meta()
            self._mirror_session_meta()
            self.storage.commit()

    # ------------------------------------------------------------ internals
    def _crowdsource_dirty(self, dirty_pairs: Set[PairKey], delta: StreamingDelta) -> None:
        """Regenerate HITs for the dirty pairs that need votes; collect them.

        Under ``recrowd_policy="never"`` only the never-voted pairs of the
        dirty components are re-batched — already-voted pairs keep their
        ledger entry and cost nothing more; ``"dirty"`` re-batches (and
        re-asks) every dirty pair with a fresh vote round.

        In async mode pairs whose votes are already in flight are excluded
        (a pair has exactly one outstanding crowd round at a time) and
        pairs shed by backpressure on an earlier event are retried.
        """
        if self.config.recrowd_policy == "dirty":
            to_vote = set(dirty_pairs)
        else:  # "never": only pairs that have no votes yet
            to_vote = {key for key in dirty_pairs if self._vote_rounds.get(key, 0) == 0}
        delta.reused_vote_pairs = sum(
            1 for key in dirty_pairs - to_vote if key in self._votes
        )
        if self.crowd is not None:
            to_vote |= self._starved_pairs
            to_vote -= set(self._inflight_rounds)
        if not to_vote:
            return
        self._publish_hits(to_vote, delta)

    def _publish_hits(
        self,
        to_vote: Set[PairKey],
        delta: Optional[StreamingDelta],
        force: bool = False,
    ) -> bool:
        """Batch ``to_vote`` into HITs and publish them to the crowd.

        Sync mode folds the returned votes into the ledger immediately;
        async mode registers the covered pairs as in-flight (their votes
        arrive through later polls) and returns ``False`` when the publish
        was shed by backpressure — the pairs are then parked in the starved
        backlog instead.
        """
        # Sorted-key order makes HIT grouping independent of arrival order.
        vote_set = PairSet(
            self.candidates.get(id_a, id_b) for id_a, id_b in sorted(to_vote)
        )
        batch_hits = build_hit_generator(self.config).generate(vote_set)
        rounds = {key: self._vote_rounds.get(key, 0) for key in to_vote}

        if self.crowd is not None:
            try:
                crowd_run = self.crowd.publish(
                    batch_hits,
                    true_matches=self._truth,
                    candidate_pairs=to_vote,
                    vote_rounds=rounds,
                    force=force,
                )
            except BackpressureError:
                self._starved_pairs |= to_vote
                logger.debug(
                    "event %d: backpressure shed %d pairs (%d HITs)",
                    self._batch_index, len(to_vote), batch_hits.hit_count,
                )
                return False
        else:
            crowd_run = self.platform.publish(
                batch_hits,
                true_matches=self._truth,
                candidate_pairs=to_vote,
                vote_rounds=rounds,
            )
        self._generator_name = batch_hits.generator_name
        self._ledger.mark_covered(batch_hits.covered_pairs())
        # Pair provenance: which HITs of which batch covered each pair.
        claimed: Set[PairKey] = set()
        for hit in batch_hits.hits:
            hit_id = f"b{self._batch_index}:{hit.hit_id}"
            if batch_hits.hit_type == "pair":
                covered_here = hit.checkable_pairs() & to_vote
            else:
                covered_here = hit.checkable_pairs(to_vote)
            claimed |= covered_here
            for key in sorted(covered_here):
                self.provenance.record_coverage(key, hit_id)

        if self.crowd is not None:
            # Votes arrive later; only pairs actually carried by a HIT go
            # in flight (a pair no HIT covered stays unvoted, like sync).
            self._starved_pairs -= to_vote
            for key in claimed:
                self._inflight_rounds[key] = rounds[key]
                self._slot_votes.setdefault(key, {})
        else:
            fresh: Dict[PairKey, List[Vote]] = {}
            for vote in crowd_run.votes:
                fresh.setdefault(vote[1], []).append(vote)
            for key, votes in fresh.items():
                self._ledger.record_fresh_votes(key, votes)
                self.provenance.record_votes(
                    key, self._batch_index, rounds.get(key, 0), len(votes)
                )
            self._last_fresh_votes = fresh
            self._assignment_seconds.extend(crowd_run.assignment_seconds)
            self.storage.append_assignment_seconds(crowd_run.assignment_seconds)
            if delta is not None:
                delta.crowdsourced_pairs = len(fresh)

        self._hit_count += crowd_run.hit_count
        self._cost += crowd_run.cost
        if self.config.hit_type == "pair" and batch_hits.hits:
            largest = batch_hits.max_hit_size()
            if self._pairs_per_hit_seen is None or largest > self._pairs_per_hit_seen:
                self._pairs_per_hit_seen = largest
        if delta is not None:
            delta.regenerated_hits += crowd_run.hit_count
        return True

    # ------------------------------------------------------- async ingestion
    def _ingest_async(self, delta: StreamingDelta) -> Set[PairKey]:
        """One async crowd step: advance the virtual clock, ingest arrivals.

        Every applied batch event is one tick of the virtual clock; the
        deliveries that came due are folded into the per-pair vote slots,
        and pairs whose last slot arrived are committed to the ledger.
        Returns the completed pairs (the batch re-aggregates their
        components).
        """
        assert self.crowd is not None
        with obs.span(
            "crowd.await_votes",
            inflight=len(self._inflight_rounds),
            starved=len(self._starved_pairs),
        ):
            deliveries = self.crowd.poll(1)
        completed = self._ingest_deliveries(deliveries)
        self._cost += self.crowd.take_extra_cost()
        delta.crowdsourced_pairs = len(completed)
        return completed

    def _ingest_deliveries(self, deliveries: List[VoteDelivery]) -> Set[PairKey]:
        """Fold accepted deliveries into the vote slots; commit completions.

        A delivery's votes only count toward pairs still in flight at the
        round they were published under — late deliveries for retracted or
        superseded pairs are ignored (their content is content-addressed by
        (pair, round), so ignoring them loses nothing).  When a pair's
        every slot has arrived, its votes enter the ledger in slot order,
        which is exactly the per-pair oracle order a synchronous publish
        records — the source of the async == sync equivalence.
        """
        completed: Set[PairKey] = set()
        replication = self.platform.assignments_per_hit
        for delivery in deliveries:
            self._assignment_seconds.append(delivery.seconds)
            self.storage.append_assignment_seconds([delivery.seconds])
            for vote in delivery.votes:
                key = vote[1]
                round_index = delivery.pair_rounds.get(key, 0)
                if self._inflight_rounds.get(key) != round_index:
                    continue
                slots = self._slot_votes.setdefault(key, {})
                if delivery.slot in slots:
                    continue
                slots[delivery.slot] = vote
                if len(slots) == replication:
                    votes = [slots[slot] for slot in range(replication)]
                    self._ledger.record_fresh_votes(key, votes)
                    self.provenance.record_votes(
                        key, self._batch_index, round_index, len(votes)
                    )
                    if self._last_fresh_votes is not None:
                        self._last_fresh_votes[key] = votes
                    del self._slot_votes[key]
                    del self._inflight_rounds[key]
                    completed.add(key)
        return completed

    def _expand_components(self, completed: Set[PairKey]) -> Set[PairKey]:
        """All provenance pairs of the components the completed pairs touch.

        Late votes re-aggregate only the affected components: each
        completion dirties exactly its component, mirroring how a batch
        arrival dirties the components it touches.
        """
        if not completed:
            return set()
        expanded: Set[PairKey] = set()
        roots = {self.components.find(key[0]) for key in completed}
        for root in roots:
            for member in self.components.members(root):
                expanded.update(self.provenance.pairs_of(member))
        return expanded

    def _flush_async(self) -> Set[PairKey]:
        """Settle the async crowd completely: nothing in flight afterwards.

        Force-publishes the starved backlog past the backpressure window,
        then advances the virtual clock until every outstanding assignment
        (retries and reissues included) has delivered, ingesting as it
        goes.  Terminates for any fault plan because the plan's
        ``max_faulty_attempts`` bounds how long a slot can stay undelivered.
        """
        assert self.crowd is not None
        completed: Set[PairKey] = set()
        guard = 0
        while True:
            if self._starved_pairs:
                self._publish_hits(set(self._starved_pairs), None, force=True)
            deliveries = self.crowd.settle()
            completed |= self._ingest_deliveries(deliveries)
            self._cost += self.crowd.take_extra_cost()
            if not self._starved_pairs and not self._inflight_rounds:
                break
            guard += 1
            if guard > 1000:  # pragma: no cover - defensive
                raise persistence.PersistenceError(
                    "async crowd flush failed to settle"
                )
        return completed

    def _async_state_dict(self) -> Optional[Dict[str, object]]:
        """JSON-friendly async crowd state (None in sync mode)."""
        if self.crowd is None:
            return None
        return {
            "platform": self.crowd.state_dict(),
            "slot_votes": persistence.encode_slot_votes(self._slot_votes),
            "inflight_rounds": persistence.encode_pair_map(self._inflight_rounds),
            "starved": [[key[0], key[1]] for key in sorted(self._starved_pairs)],
        }

    def _load_async_state(self, payload: Optional[Dict[str, object]]) -> None:
        """Inverse of :meth:`_async_state_dict` (tolerates pre-async state)."""
        self._slot_votes = {}
        self._inflight_rounds = {}
        self._starved_pairs = set()
        if self.crowd is None or not payload:
            return
        self.crowd.load_state_dict(payload["platform"])  # type: ignore[arg-type]
        self._slot_votes = persistence.decode_slot_votes(payload.get("slot_votes", []))  # type: ignore[arg-type]
        self._inflight_rounds = persistence.decode_pair_map(
            payload.get("inflight_rounds", [])  # type: ignore[arg-type]
        )
        self._starved_pairs = {
            (id_a, id_b) for id_a, id_b in payload.get("starved", [])  # type: ignore[union-attr]
        }

    def _aggregate(
        self,
        dirty_pairs: Set[PairKey],
        delta: StreamingDelta,
        force: bool = False,
    ) -> None:
        """Fold fresh votes into the posterior cache.

        ``force`` bypasses the bounded-staleness filter — used by
        retraction, where the dirty region's cached posteriors are invalid
        rather than merely stale.
        """
        aggregator = build_aggregator(self.config)
        if self.config.streaming_aggregation_scope == "global":
            votes = self._ledger_votes(self._votes.keys())
            self._ledger.replace_posteriors(
                dict(aggregator.aggregate(votes)) if votes else {}
            )
            self._ledger.clear_all_pending()
            return
        # Component scope: only the dirty region is re-aggregated; posteriors
        # of clean components are carried over untouched.
        voted_dirty = [key for key in sorted(dirty_pairs) if key in self._votes]
        delta.preserved_posterior_pairs = sum(
            1 for key in self._posteriors if key not in dirty_pairs
        )
        if not force:
            voted_dirty = self._drop_stale_components(voted_dirty, delta)
        if not voted_dirty:
            return
        votes = self._ledger_votes(voted_dirty)
        for key, posterior in aggregator.aggregate(votes).items():
            self._ledger.set_posterior(key, posterior)
        self._ledger.clear_pending(voted_dirty)

    def _drop_stale_components(
        self, voted_dirty: List[PairKey], delta: StreamingDelta
    ) -> List[PairKey]:
        """Bounded-staleness filter (``config.staleness_epsilon``).

        A dirty component whose vote ledger gained fewer than
        ``staleness_epsilon`` new votes *since its last aggregation* keeps
        its cached posteriors instead of paying another aggregator run.
        The pending counts accumulate across batches and are zeroed when a
        component is aggregated, so a cached posterior is never more than
        epsilon votes behind the ledger — the staleness really is bounded.
        The default epsilon of 0 disables the filter (every dirty component
        is re-aggregated, the exact pre-existing behavior).
        """
        epsilon = self.config.staleness_epsilon
        if epsilon <= 0 or not voted_dirty:
            return voted_dirty
        by_root: Dict[str, int] = {}
        for key in voted_dirty:
            root = self.components.find(key[0])
            by_root[root] = by_root.get(root, 0) + self._pending_votes.get(key, 0)
        stale_roots = {root for root, gained in by_root.items() if gained < epsilon}
        delta.stale_skipped_components = len(stale_roots)
        if not stale_roots:
            return voted_dirty
        return [
            key
            for key in voted_dirty
            if self.components.find(key[0]) not in stale_roots
        ]

    def _ledger_votes(self, keys: Iterable[PairKey]) -> List[Vote]:
        """Ledger votes for the given pairs, sorted by pair key.

        Sorted-key order with per-pair oracle order inside reproduces the
        exact vote sequence a one-shot per-pair publish emits, which keeps
        Dawid-Skene EM bit-identical between streaming and batch runs.
        """
        votes: List[Vote] = []
        for key in sorted(set(keys)):
            votes.extend(self._votes.get(key, ()))
        return votes

    def snapshot(self) -> ResolutionResult:
        """The current resolution state as a delta-aware result object."""
        likelihoods: Dict[PairKey, float] = {
            pair.key: pair.likelihood or 0.0 for pair in self.candidates
        }
        ranked, matches = rank_candidates(
            likelihoods, self._posteriors, self.config.decision_threshold
        )
        recall_ceiling = None
        if self._truth:
            arrived = {
                key
                for key in self._truth
                if key[0] in self.store and key[1] in self.store
            }
            if arrived:
                surviving = self.candidates.intersection_keys(arrived)
                recall_ceiling = len(surviving) / len(arrived)
        latency = self.platform.latency.estimate(
            self._assignment_seconds,
            hit_type=self.config.hit_type,
            pairs_per_hit=self._pairs_per_hit_seen,
            qualification=self.platform.qualification is not None,
        )
        return ResolutionResult(
            ranked_pairs=ranked,
            matches=matches,
            posteriors=dict(self._posteriors),
            likelihoods=likelihoods,
            candidate_count=len(self.candidates),
            hit_count=self._hit_count,
            assignment_count=len(self._assignment_seconds),
            cost=self._cost,
            latency=latency,
            recall_ceiling=recall_ceiling,
            generator_name=self._generator_name,
            delta=self._last_delta,
        )


def resolve_stream(
    dataset: Dataset,
    config: Optional[WorkflowConfig] = None,
    batch_size: Optional[int] = None,
    arrival_order: Optional[Sequence[str]] = None,
    **resolver_kwargs,
) -> ResolutionResult:
    """Replay a dataset through a streaming session batch by batch.

    Records arrive in store order (or ``arrival_order``, a permutation of
    record ids) in chunks of ``batch_size`` (default:
    ``config.stream_batch_size``); the full ground truth is registered up
    front so the simulated crowd can answer.  Returns the final snapshot —
    under ``recrowd_policy="never"`` its match set equals a one-shot
    ``HybridWorkflow(config).resolve(dataset)`` with per-pair votes.
    """
    config = config or WorkflowConfig()
    size = batch_size or config.stream_batch_size
    resolver = StreamingResolver(
        config=config, cross_sources=dataset.cross_sources, **resolver_kwargs
    )
    resolver.add_truth(dataset.ground_truth)
    if arrival_order is None:
        records = list(dataset.store)
    else:
        records = [dataset.store.get(record_id) for record_id in arrival_order]
        if len(records) != len(dataset.store):
            raise ValueError("arrival_order must cover every record exactly once")
    result = resolver.snapshot()
    for start in range(0, len(records), size):
        result = resolver.add_batch(records[start : start + size])
    return result
