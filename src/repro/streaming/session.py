"""The streaming incremental entity-resolution session.

:class:`StreamingResolver` keeps a resolution *session* open while record
batches arrive, maintaining every stage of the CrowdER pipeline
incrementally instead of recomputing it from scratch:

1. **Machine pass** — an :class:`~repro.streaming.incremental_join.IncrementalSimJoin`
   joins each batch against the persistent token/CSR index (new-vs-old plus
   new-vs-new only); resident pairs are never re-scored.
2. **Component maintenance** — every new candidate pair is a union in an
   :class:`~repro.graph.union_find.IncrementalUnionFind`; components touched
   by a new record or pair become *dirty*, all others stay *clean*.
3. **HIT regeneration** — only dirty components get new HITs, batched
   through the configured pair/cluster generator over exactly the pairs
   that need votes under the re-crowd policy; clean components (and, under
   ``"never"``, already-voted dirty pairs) keep the HITs and votes they
   already paid for.
4. **Crowdsourcing** — the platform runs in deterministic per-pair vote
   mode.  Under the default ``recrowd_policy="never"`` each pair is asked
   exactly once, the first time a HIT covers it; ``"dirty"`` re-asks every
   pair of a dirty component with a fresh vote round.
5. **Aggregation** — with ``streaming_aggregation_scope="component"`` only
   dirty components are re-aggregated and clean components keep their cached
   posteriors bit-for-bit; ``"global"`` re-runs the aggregator over all
   accumulated votes (the mode that reproduces one-shot Dawid-Skene
   exactly, since EM shares worker confusion estimates globally).

**Equivalence.**  Because set similarity is pairwise, the union of join
deltas equals the full-store join; because per-pair votes are a pure
function of the pair key, vote sets agree with a one-shot
:class:`~repro.core.workflow.HybridWorkflow` run in ``vote_mode="per-pair"``;
and because ranking is shared (:mod:`repro.core.ranking`), the final match
set is *identical* to batch resolution for any arrival order under
``recrowd_policy="never"`` (with majority aggregation in any scope, or
Dawid-Skene in ``"global"`` scope).  The property tests in
``tests/test_streaming.py`` assert this across randomized arrival orders.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.aggregation.majority import Vote
from repro.core.config import WorkflowConfig
from repro.core.ranking import rank_candidates
from repro.core.results import ResolutionResult, StreamingDelta
from repro.core.workflow import build_aggregator, build_hit_generator
from repro.crowd.latency import LatencyModel
from repro.crowd.platform import SimulatedCrowdPlatform
from repro.crowd.pricing import PricingModel
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import WorkerPool
from repro.datasets.base import Dataset
from repro.graph.union_find import IncrementalUnionFind
from repro.records.pairs import PairSet, canonical_pair
from repro.records.record import Record, RecordStore
from repro.streaming.incremental_join import IncrementalSimJoin

PairKey = Tuple[str, str]


class StreamingResolver:
    """An open entity-resolution session over arriving record batches.

    Parameters
    ----------
    config:
        Workflow configuration.  The streaming-specific knobs are
        ``recrowd_policy``, ``streaming_aggregation_scope``,
        ``staleness_epsilon`` and ``stream_batch_size``; ``join_workers``
        shards the incremental machine pass across processes;
        ``vote_mode`` is forced to ``"per-pair"``
        (the sequential mode cannot preserve votes across batches).
    cross_sources:
        Restrict candidates to cross-source pairs (record linkage).
    platform:
        Optional pre-built crowd platform; must be in per-pair vote mode.

    Lifecycle: call :meth:`add_batch` for every arrival (it returns a
    delta-aware :class:`~repro.core.results.ResolutionResult` snapshot) and
    :meth:`snapshot` at any point for the current state without new data.
    """

    def __init__(
        self,
        config: Optional[WorkflowConfig] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
        platform: Optional[SimulatedCrowdPlatform] = None,
        worker_pool: Optional[WorkerPool] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self.config = config or WorkflowConfig()
        self.cross_sources = cross_sources
        if platform is not None:
            if platform.vote_mode != "per-pair":
                raise ValueError(
                    "StreamingResolver requires a platform in 'per-pair' vote "
                    "mode; sequential votes cannot be preserved across batches"
                )
            self.platform = platform
        else:
            qualification = QualificationTest() if self.config.use_qualification_test else None
            self.platform = SimulatedCrowdPlatform(
                pool=worker_pool or WorkerPool.build(seed=self.config.seed),
                assignments_per_hit=self.config.assignments_per_hit,
                qualification=qualification,
                pricing=pricing,
                latency=latency,
                seed=self.config.seed,
                vote_mode="per-pair",
            )
        self.join = IncrementalSimJoin(
            threshold=self.config.likelihood_threshold,
            attributes=self.config.similarity_attributes,
            backend=self.config.join_backend,
            cross_sources=cross_sources,
            workers=self.config.join_workers or None,
        )
        self.store = RecordStore(name="stream")
        self.components = IncrementalUnionFind()
        self.candidates = PairSet()
        self._truth: Set[PairKey] = set()
        self._pairs_of_record: Dict[str, Set[PairKey]] = {}
        # Vote ledger: per-pair votes in oracle order, plus the number of
        # completed crowd rounds (0 = never asked).
        self._votes: Dict[PairKey, List[Vote]] = {}
        self._vote_rounds: Dict[PairKey, int] = {}
        # Votes gained per pair since that pair was last folded into the
        # posterior cache, for the bounded-staleness aggregation check
        # (config.staleness_epsilon).  Zeroed per pair on aggregation, so a
        # cached posterior is never more than epsilon votes behind the
        # ledger of its component.
        self._pending_votes: Dict[PairKey, int] = {}
        self._posteriors: Dict[PairKey, float] = {}
        self._covered: Set[PairKey] = set()
        # Accumulated crowd workload across all batches.
        self._hit_count = 0
        self._cost = 0.0
        self._assignment_seconds: List[float] = []
        self._pairs_per_hit_seen: Optional[int] = None
        self._generator_name = ""
        self._batch_index = 0
        self._last_delta = StreamingDelta()

    # -------------------------------------------------------------- queries
    @property
    def record_count(self) -> int:
        """Number of resident records."""
        return len(self.store)

    @property
    def candidate_count(self) -> int:
        """Number of candidate pairs discovered so far."""
        return len(self.candidates)

    def votes_for(self, id_a: str, id_b: str) -> List[Vote]:
        """The current vote ledger entry of one pair (empty if never asked)."""
        return list(self._votes.get(canonical_pair(id_a, id_b), ()))

    def covered_pairs(self) -> FrozenSet[PairKey]:
        """Candidate pairs covered by at least one published HIT so far."""
        return frozenset(self._covered)

    # ------------------------------------------------------------------ api
    def add_truth(self, true_matches: Iterable[PairKey]) -> None:
        """Register ground-truth matching pairs for the simulated crowd.

        The simulated workers look answers up in this set; pairs may
        reference records that have not arrived yet.
        """
        self._truth.update(canonical_pair(a, b) for a, b in true_matches)

    def add_batch(
        self,
        records: Sequence[Record],
        true_matches: Optional[Iterable[PairKey]] = None,
    ) -> ResolutionResult:
        """Ingest a batch of new records and return the updated snapshot.

        Runs the incremental machine pass, dirties the touched components,
        regenerates and publishes HITs for them, folds fresh votes into the
        ledger, re-aggregates what changed and snapshots the session.
        """
        if true_matches is not None:
            self.add_truth(true_matches)
        batch = list(records)
        self._batch_index += 1
        delta = StreamingDelta(batch_index=self._batch_index, new_records=len(batch))

        # Stage 1: incremental machine pass.
        new_pairs = self.join.add_batch(batch)
        for record in batch:
            self.store.add(record)
            self.components.add(record.record_id)
            self._pairs_of_record.setdefault(record.record_id, set())
        delta.new_candidate_pairs = len(new_pairs)

        # Stage 2: component maintenance.
        for pair in new_pairs:
            self.candidates.add(pair)
            self.components.union(pair.id_a, pair.id_b)
            self._pairs_of_record[pair.id_a].add(pair.key)
            self._pairs_of_record[pair.id_b].add(pair.key)

        # Only dirty components are enumerated (their member lists are
        # maintained by the union-find); clean components cost nothing here.
        dirty_roots = self.components.dirty_roots()
        dirty_pairs: Set[PairKey] = set()
        for root in dirty_roots:
            for member in self.components.members(root):
                dirty_pairs.update(self._pairs_of_record.get(member, ()))
        delta.dirty_components = len(dirty_roots)
        delta.clean_components = self.components.component_count - len(dirty_roots)
        delta.dirty_pairs = len(dirty_pairs)

        # Stages 3 + 4: regenerate HITs for dirty components and crowdsource.
        if dirty_pairs:
            self._crowdsource_dirty(dirty_pairs, delta)

        # Stage 5: re-aggregate what changed.
        self._aggregate(dirty_pairs, delta)

        self.components.clear_dirty()
        self._last_delta = delta
        return self.snapshot()

    def _crowdsource_dirty(self, dirty_pairs: Set[PairKey], delta: StreamingDelta) -> None:
        """Regenerate HITs for the dirty pairs that need votes; collect them.

        Under ``recrowd_policy="never"`` only the never-voted pairs of the
        dirty components are re-batched — already-voted pairs keep their
        ledger entry and cost nothing more; ``"dirty"`` re-batches (and
        re-asks) every dirty pair with a fresh vote round.
        """
        if self.config.recrowd_policy == "dirty":
            to_vote = set(dirty_pairs)
        else:  # "never": only pairs that have no votes yet
            to_vote = {key for key in dirty_pairs if self._vote_rounds.get(key, 0) == 0}
        delta.reused_vote_pairs = sum(
            1 for key in dirty_pairs - to_vote if key in self._votes
        )
        if not to_vote:
            return
        # Sorted-key order makes HIT grouping independent of arrival order.
        vote_set = PairSet(
            self.candidates.get(id_a, id_b) for id_a, id_b in sorted(to_vote)
        )
        batch_hits = build_hit_generator(self.config).generate(vote_set)
        self._generator_name = batch_hits.generator_name
        rounds = {key: self._vote_rounds.get(key, 0) for key in to_vote}

        crowd_run = self.platform.publish(
            batch_hits,
            true_matches=self._truth,
            candidate_pairs=to_vote,
            vote_rounds=rounds,
        )
        self._covered.update(batch_hits.covered_pairs())

        fresh: Dict[PairKey, List[Vote]] = {}
        for vote in crowd_run.votes:
            fresh.setdefault(vote[1], []).append(vote)
        for key, votes in fresh.items():
            self._votes[key] = votes
            self._vote_rounds[key] = self._vote_rounds.get(key, 0) + 1
            self._pending_votes[key] = self._pending_votes.get(key, 0) + len(votes)

        self._hit_count += crowd_run.hit_count
        self._cost += crowd_run.cost
        self._assignment_seconds.extend(crowd_run.assignment_seconds)
        if self.config.hit_type == "pair" and batch_hits.hits:
            largest = batch_hits.max_hit_size()
            if self._pairs_per_hit_seen is None or largest > self._pairs_per_hit_seen:
                self._pairs_per_hit_seen = largest

        delta.regenerated_hits = crowd_run.hit_count
        delta.crowdsourced_pairs = len(fresh)

    def _aggregate(self, dirty_pairs: Set[PairKey], delta: StreamingDelta) -> None:
        """Fold fresh votes into the posterior cache."""
        aggregator = build_aggregator(self.config)
        if self.config.streaming_aggregation_scope == "global":
            votes = self._ledger_votes(self._votes.keys())
            self._posteriors = dict(aggregator.aggregate(votes)) if votes else {}
            self._pending_votes.clear()
            return
        # Component scope: only the dirty region is re-aggregated; posteriors
        # of clean components are carried over untouched.
        voted_dirty = [key for key in sorted(dirty_pairs) if key in self._votes]
        delta.preserved_posterior_pairs = sum(
            1 for key in self._posteriors if key not in dirty_pairs
        )
        voted_dirty = self._drop_stale_components(voted_dirty, delta)
        if not voted_dirty:
            return
        votes = self._ledger_votes(voted_dirty)
        for key, posterior in aggregator.aggregate(votes).items():
            self._posteriors[key] = posterior
        for key in voted_dirty:
            self._pending_votes.pop(key, None)

    def _drop_stale_components(
        self, voted_dirty: List[PairKey], delta: StreamingDelta
    ) -> List[PairKey]:
        """Bounded-staleness filter (``config.staleness_epsilon``).

        A dirty component whose vote ledger gained fewer than
        ``staleness_epsilon`` new votes *since its last aggregation* keeps
        its cached posteriors instead of paying another aggregator run.
        The pending counts accumulate across batches and are zeroed when a
        component is aggregated, so a cached posterior is never more than
        epsilon votes behind the ledger — the staleness really is bounded.
        The default epsilon of 0 disables the filter (every dirty component
        is re-aggregated, the exact pre-existing behavior).
        """
        epsilon = self.config.staleness_epsilon
        if epsilon <= 0 or not voted_dirty:
            return voted_dirty
        by_root: Dict[str, int] = {}
        for key in voted_dirty:
            root = self.components.find(key[0])
            by_root[root] = by_root.get(root, 0) + self._pending_votes.get(key, 0)
        stale_roots = {root for root, gained in by_root.items() if gained < epsilon}
        delta.stale_skipped_components = len(stale_roots)
        if not stale_roots:
            return voted_dirty
        return [
            key
            for key in voted_dirty
            if self.components.find(key[0]) not in stale_roots
        ]

    def _ledger_votes(self, keys: Iterable[PairKey]) -> List[Vote]:
        """Ledger votes for the given pairs, sorted by pair key.

        Sorted-key order with per-pair oracle order inside reproduces the
        exact vote sequence a one-shot per-pair publish emits, which keeps
        Dawid-Skene EM bit-identical between streaming and batch runs.
        """
        votes: List[Vote] = []
        for key in sorted(set(keys)):
            votes.extend(self._votes.get(key, ()))
        return votes

    def flush(self) -> ResolutionResult:
        """Fold every staleness-deferred component into the posterior cache.

        Bounded-staleness aggregation (``config.staleness_epsilon``) can
        leave components whose pending vote gain never crossed the bound;
        ``flush`` re-aggregates each such component in full (the same unit
        ``_aggregate`` uses) and returns the settled snapshot.  A no-op
        when nothing is pending — e.g. with the default epsilon of 0.
        """
        pending = [
            key
            for key, gained in self._pending_votes.items()
            if gained > 0 and key in self._votes
        ]
        if pending:
            roots = {self.components.find(key[0]) for key in pending}
            keys: Set[PairKey] = set()
            for root in roots:
                for member in self.components.members(root):
                    keys.update(self._pairs_of_record.get(member, ()))
            voted = [key for key in sorted(keys) if key in self._votes]
            aggregator = build_aggregator(self.config)
            for key, posterior in aggregator.aggregate(self._ledger_votes(voted)).items():
                self._posteriors[key] = posterior
            for key in voted:
                self._pending_votes.pop(key, None)
        return self.snapshot()

    def snapshot(self) -> ResolutionResult:
        """The current resolution state as a delta-aware result object."""
        likelihoods: Dict[PairKey, float] = {
            pair.key: pair.likelihood or 0.0 for pair in self.candidates
        }
        ranked, matches = rank_candidates(
            likelihoods, self._posteriors, self.config.decision_threshold
        )
        recall_ceiling = None
        if self._truth:
            arrived = {
                key
                for key in self._truth
                if key[0] in self.store and key[1] in self.store
            }
            if arrived:
                surviving = self.candidates.intersection_keys(arrived)
                recall_ceiling = len(surviving) / len(arrived)
        latency = self.platform.latency.estimate(
            self._assignment_seconds,
            hit_type=self.config.hit_type,
            pairs_per_hit=self._pairs_per_hit_seen,
            qualification=self.platform.qualification is not None,
        )
        return ResolutionResult(
            ranked_pairs=ranked,
            matches=matches,
            posteriors=dict(self._posteriors),
            likelihoods=likelihoods,
            candidate_count=len(self.candidates),
            hit_count=self._hit_count,
            assignment_count=len(self._assignment_seconds),
            cost=self._cost,
            latency=latency,
            recall_ceiling=recall_ceiling,
            generator_name=self._generator_name,
            delta=self._last_delta,
        )


def resolve_stream(
    dataset: Dataset,
    config: Optional[WorkflowConfig] = None,
    batch_size: Optional[int] = None,
    arrival_order: Optional[Sequence[str]] = None,
    **resolver_kwargs,
) -> ResolutionResult:
    """Replay a dataset through a streaming session batch by batch.

    Records arrive in store order (or ``arrival_order``, a permutation of
    record ids) in chunks of ``batch_size`` (default:
    ``config.stream_batch_size``); the full ground truth is registered up
    front so the simulated crowd can answer.  Returns the final snapshot —
    under ``recrowd_policy="never"`` its match set equals a one-shot
    ``HybridWorkflow(config).resolve(dataset)`` with per-pair votes.
    """
    config = config or WorkflowConfig()
    size = batch_size or config.stream_batch_size
    resolver = StreamingResolver(
        config=config, cross_sources=dataset.cross_sources, **resolver_kwargs
    )
    resolver.add_truth(dataset.ground_truth)
    if arrival_order is None:
        records = list(dataset.store)
    else:
        records = [dataset.store.get(record_id) for record_id in arrival_order]
        if len(records) != len(dataset.store):
            raise ValueError("arrival_order must cover every record exactly once")
    result = resolver.snapshot()
    for start in range(0, len(records), size):
        result = resolver.add_batch(records[start : start + size])
    return result
