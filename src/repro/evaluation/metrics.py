"""Precision / recall metrics over pair sets and ranked pair lists."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.records.pairs import canonical_pair

PairKey = Tuple[str, str]


def _canonical_set(pairs: Iterable[PairKey]) -> Set[PairKey]:
    return {canonical_pair(a, b) for a, b in pairs}


def precision_recall(
    predicted: Iterable[PairKey], ground_truth: Iterable[PairKey]
) -> Tuple[float, float]:
    """Precision and recall of a predicted match set against the truth.

    Precision is the fraction of predicted pairs that are true matches;
    recall is the fraction of true matches that were predicted.  An empty
    prediction has precision 1.0 by convention (nothing wrong was said).
    """
    predicted_set = _canonical_set(predicted)
    truth_set = _canonical_set(ground_truth)
    true_positives = len(predicted_set & truth_set)
    precision = true_positives / len(predicted_set) if predicted_set else 1.0
    recall = true_positives / len(truth_set) if truth_set else 1.0
    return precision, recall


def f1_score(predicted: Iterable[PairKey], ground_truth: Iterable[PairKey]) -> float:
    """Harmonic mean of precision and recall."""
    precision, recall = precision_recall(predicted, ground_truth)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def precision_recall_curve(
    ranked_pairs: Sequence[PairKey],
    ground_truth: Iterable[PairKey],
    points: int = 0,
) -> List[Tuple[float, float]]:
    """Precision-recall curve obtained by cutting a ranked list at each prefix.

    Parameters
    ----------
    ranked_pairs:
        Pairs ordered from most to least likely match (the output of every
        ER technique in Section 7.3).
    ground_truth:
        The true matching pairs.
    points:
        If positive, the curve is downsampled to roughly this many points
        (keeping the first and last); 0 keeps one point per prefix.

    Returns
    -------
    list of (recall, precision) tuples, in increasing recall order.
    """
    truth_set = _canonical_set(ground_truth)
    if not truth_set:
        return []
    curve: List[Tuple[float, float]] = []
    true_positives = 0
    for rank, pair in enumerate(ranked_pairs, start=1):
        if canonical_pair(*pair) in truth_set:
            true_positives += 1
        precision = true_positives / rank
        recall = true_positives / len(truth_set)
        curve.append((recall, precision))
    if points and len(curve) > points:
        step = max(1, len(curve) // points)
        sampled = curve[::step]
        if curve[-1] not in sampled:
            sampled.append(curve[-1])
        curve = sampled
    return curve


def average_precision(
    ranked_pairs: Sequence[PairKey], ground_truth: Iterable[PairKey]
) -> float:
    """Average precision (area under the PR curve, interpolated at matches)."""
    truth_set = _canonical_set(ground_truth)
    if not truth_set:
        return 0.0
    true_positives = 0
    precision_sum = 0.0
    for rank, pair in enumerate(ranked_pairs, start=1):
        if canonical_pair(*pair) in truth_set:
            true_positives += 1
            precision_sum += true_positives / rank
    if true_positives == 0:
        return 0.0
    return precision_sum / len(truth_set)


def precision_at_recall(
    curve: Sequence[Tuple[float, float]], recall_level: float
) -> float:
    """Best precision achieved at or beyond a given recall level."""
    eligible = [precision for recall, precision in curve if recall >= recall_level]
    return max(eligible) if eligible else 0.0


def recall_at_threshold(
    scored_pairs: Dict[PairKey, float],
    ground_truth: Iterable[PairKey],
    threshold: float,
) -> float:
    """Recall of the pairs whose score is at or above a threshold."""
    predicted = [key for key, score in scored_pairs.items() if score >= threshold]
    _, recall = precision_recall(predicted, ground_truth)
    return recall
