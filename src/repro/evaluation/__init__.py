"""Evaluation utilities: precision/recall metrics, PR curves and reports.

Section 7.3 evaluates every technique as a ranked list of pairs (most
likely matches first) and plots precision-recall curves obtained by cutting
the list at every prefix length; these helpers implement that protocol plus
the threshold/recall table of Section 7.1 (Table 2).
"""

from repro.evaluation.metrics import (
    precision_recall,
    f1_score,
    precision_recall_curve,
    average_precision,
    recall_at_threshold,
)
from repro.evaluation.threshold_table import threshold_table, ThresholdRow
from repro.evaluation.reporting import format_table, format_pr_curve

__all__ = [
    "precision_recall",
    "f1_score",
    "precision_recall_curve",
    "average_precision",
    "recall_at_threshold",
    "threshold_table",
    "ThresholdRow",
    "format_table",
    "format_pr_curve",
]
