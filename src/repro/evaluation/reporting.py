"""Plain-text report formatting for benchmark output.

The benchmark harness prints the same rows / series the paper's tables and
figures report; these helpers render them as aligned text tables so the
output of ``pytest benchmarks/`` is directly comparable with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render dict rows as an aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(column), *(len(row[index]) for row in rendered_rows)) if rendered_rows else len(column)
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_pr_curve(
    curve: Iterable[Tuple[float, float]],
    label: str,
    recall_levels: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> str:
    """Summarise a PR curve at fixed recall levels (one line per level)."""
    curve = list(curve)
    lines = [f"precision-recall curve: {label}"]
    for level in recall_levels:
        eligible = [precision for recall, precision in curve if recall >= level - 1e-9]
        if eligible:
            lines.append(f"  recall>={level:.1f}: precision {max(eligible) * 100:6.1f}%")
        else:
            lines.append(f"  recall>={level:.1f}: unreachable")
    return "\n".join(lines)
