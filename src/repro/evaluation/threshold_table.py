"""Likelihood-threshold selection table (Table 2 of the paper).

For each likelihood threshold the table reports how many candidate pairs
survive the machine pruning step, how many of them are true matches and the
resulting recall ceiling of the hybrid workflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.base import Dataset
from repro.records.pairs import PairSet
from repro.simjoin.likelihood import LikelihoodEstimator, SimJoinLikelihood


@dataclass(frozen=True)
class ThresholdRow:
    """One row of Table 2: a threshold and its pruning statistics."""

    threshold: float
    total_pairs: int
    matching_pairs: int
    recall: float

    def as_dict(self) -> dict:
        """Plain-dict view used by the benchmark reports."""
        return {
            "threshold": self.threshold,
            "total_pairs": self.total_pairs,
            "matching_pairs": self.matching_pairs,
            "recall": self.recall,
        }


def threshold_table(
    dataset: Dataset,
    thresholds: Sequence[float] = (0.5, 0.4, 0.3, 0.2, 0.1, 0.0),
    estimator: Optional[LikelihoodEstimator] = None,
) -> List[ThresholdRow]:
    """Compute the Table-2 rows for a dataset.

    The likelihoods are computed once at the smallest threshold and the
    rows for larger thresholds are derived by filtering, which keeps the
    computation to a single similarity-join pass.
    """
    estimator = estimator or SimJoinLikelihood()
    ordered = sorted(thresholds, reverse=True)
    minimum = min(ordered)
    scored: PairSet = estimator.estimate(
        dataset.store, min_likelihood=minimum, cross_sources=dataset.cross_sources
    )
    truth = dataset.ground_truth
    total_matches = len(truth)
    rows: List[ThresholdRow] = []
    for threshold in ordered:
        surviving = scored.filter_by_likelihood(threshold) if threshold > minimum else scored
        matching = len(surviving.intersection_keys(truth))
        recall = matching / total_matches if total_matches else 1.0
        if threshold <= 0.0:
            # Threshold 0 retains the full candidate space by definition,
            # even though pairs with zero similarity were never materialised.
            rows.append(
                ThresholdRow(
                    threshold=threshold,
                    total_pairs=dataset.total_pair_count(),
                    matching_pairs=total_matches,
                    recall=1.0,
                )
            )
        else:
            rows.append(
                ThresholdRow(
                    threshold=threshold,
                    total_pairs=len(surviving),
                    matching_pairs=matching,
                    recall=recall,
                )
            )
    return rows
