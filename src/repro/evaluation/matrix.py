"""Cross-dataset regression matrix: dataset × join backend × execution mode.

One cell = resolve one dataset with one similarity-join backend in one
execution mode (batch workflow, streaming replay, or streaming on the
SQLite store) and measure quality and cost: candidate pairs, HITs issued,
matches, precision/recall/F1.  Every path in the stack is deterministic
(per-pair votes, seeded crowd), so each cell has a committed baseline in
``BENCH_matrix.json`` and regressions are caught as tolerance violations
with a per-cell diff — not as a vague "quality got worse somewhere".

``tests/test_matrix.py`` runs the fast cells against the bundled mini
corpora on every push; ``benchmarks/bench_matrix.py`` sweeps the full
matrix (and refreshes the baseline with ``--refresh``).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.datasets.base import Dataset
from repro.datasets.restaurant import RestaurantGenerator
from repro.etl.registry import corpus_spec, load_corpus
from repro.evaluation.metrics import f1_score, precision_recall
from repro.simjoin.backend import available_backends
from repro.streaming.session import resolve_stream

#: Execution modes of the matrix.  ``batch`` runs the one-shot
#: :class:`~repro.core.workflow.HybridWorkflow`; ``stream`` replays the
#: dataset through the incremental resolver in arrival batches; and
#: ``stream-sqlite`` does the same on the SQLite-backed session store.
#: All three must produce the identical match set.
MATRIX_MODES = ("batch", "stream", "stream-sqlite")

#: Arrival batch size for the streaming modes — small enough to exercise
#: many incremental updates on the ~500-record matrix datasets.
_STREAM_BATCH_SIZE = 64

#: Crowd seed shared by every cell (the crowd simulation is seeded, so one
#: seed keeps cells comparable across backends and modes).
_SEED = 7

#: Committed per-cell baseline, at the repository root next to the other
#: ``BENCH_*.json`` files.
BASELINE_FILENAME = "BENCH_matrix.json"

#: Default tolerance per metric.  Rates compare absolutely; counts
#: relatively.  Every cell is deterministic, so the committed baselines
#: reproduce exactly on the machine that wrote them — the tolerances only
#: absorb cross-platform drift (BLAS summation order in the vectorized
#: backend, hash ordering feeding tie-breaks).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "precision": 0.02,   # absolute
    "recall": 0.02,      # absolute
    "f1": 0.02,          # absolute
    "candidates": 0.02,  # relative
    "hits": 0.05,        # relative
    "matches": 0.05,     # relative
}

#: Metrics compared as absolute differences; the rest compare relatively.
_ABSOLUTE_METRICS = ("precision", "recall", "f1")


def matrix_datasets() -> Tuple[str, ...]:
    """Names of the datasets the matrix sweeps."""
    return ("abt-buy", "amazon-google", "restaurant-mini")


def load_matrix_dataset(name: str) -> Tuple[Dataset, WorkflowConfig]:
    """Load one matrix dataset plus the cell-independent workflow config.

    ETL corpora load their bundled mini variant and take the likelihood
    threshold and similarity attributes from their registered spec;
    ``restaurant-mini`` is a seeded 200-record slice of the synthetic
    Restaurant generator at the paper's 0.35 threshold — in the matrix so
    a clean single-source dataset crosses every backend and mode too.
    """
    if name == "restaurant-mini":
        dataset = RestaurantGenerator(record_count=200, duplicate_pairs=25, seed=_SEED).generate()
        threshold, attributes = 0.35, None
    else:
        dataset = load_corpus(name)
        spec = corpus_spec(name)
        threshold = spec.default_threshold
        attributes = spec.default_attributes
    config = WorkflowConfig(
        likelihood_threshold=threshold,
        similarity_attributes=attributes,
        vote_mode="per-pair",
        aggregation="majority",
        seed=_SEED,
    )
    return dataset, config


def cell_key(dataset: str, backend: str, mode: str) -> str:
    """Stable key of one cell: ``"dataset|backend|mode"``."""
    return f"{dataset}|{backend}|{mode}"


def iter_cells(
    datasets: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(dataset, backend, mode)`` cells, restricted to available backends."""
    installed = available_backends()
    for dataset in datasets or matrix_datasets():
        for backend in backends or installed:
            if backend not in installed:
                continue
            for mode in modes or MATRIX_MODES:
                yield dataset, backend, mode


def run_cell(
    dataset_name: str,
    backend: str,
    mode: str,
    work_dir: Optional[Path] = None,
) -> Dict[str, object]:
    """Resolve one cell and return its measured row.

    ``work_dir`` holds the SQLite store for ``stream-sqlite`` cells (a
    throwaway temporary directory when not given).
    """
    dataset, base_config = load_matrix_dataset(dataset_name)
    overrides: Dict[str, object] = {"join_backend": backend}
    if mode == "stream":
        result = resolve_stream(
            dataset,
            config=dataclasses.replace(base_config, **overrides),
            batch_size=_STREAM_BATCH_SIZE,
        )
    elif mode == "stream-sqlite":
        if work_dir is not None:
            result = _run_sqlite_cell(dataset, base_config, overrides, Path(work_dir))
        else:
            with tempfile.TemporaryDirectory(prefix="repro-matrix-") as tmp:
                result = _run_sqlite_cell(dataset, base_config, overrides, Path(tmp))
    elif mode == "batch":
        result = HybridWorkflow(dataclasses.replace(base_config, **overrides)).resolve(dataset)
    else:
        raise ValueError(f"unknown matrix mode {mode!r}; choose from {MATRIX_MODES}")
    precision, recall = precision_recall(result.matches, dataset.ground_truth)
    return {
        "dataset": dataset_name,
        "backend": backend,
        "mode": mode,
        "candidates": result.candidate_count,
        "hits": result.hit_count,
        "matches": len(result.matches),
        "precision": round(precision, 6),
        "recall": round(recall, 6),
        "f1": round(f1_score(result.matches, dataset.ground_truth), 6),
        # Streaming-vs-batch equality is asserted on the actual pair sets,
        # not just their counts; kept out of the JSON baseline.
        "_matches": frozenset(result.matches),
    }


def _run_sqlite_cell(
    dataset: Dataset,
    base_config: WorkflowConfig,
    overrides: Dict[str, object],
    work_dir: Path,
):
    store_path = work_dir / f"{dataset.name}-matrix.sqlite"
    config = dataclasses.replace(
        base_config,
        storage_backend="sqlite",
        storage_path=str(store_path),
        **overrides,
    )
    return resolve_stream(dataset, config=config, batch_size=_STREAM_BATCH_SIZE)


def run_matrix(
    datasets: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    work_dir: Optional[Path] = None,
) -> List[Dict[str, object]]:
    """Run every selected cell and return the measured rows."""
    return [
        run_cell(dataset, backend, mode, work_dir=work_dir)
        for dataset, backend, mode in iter_cells(datasets, backends, modes)
    ]


def baseline_path() -> Path:
    """Location of the committed baseline (repository root)."""
    return Path(__file__).resolve().parents[3] / BASELINE_FILENAME


def load_baseline(path: Optional[Path] = None) -> Dict[str, object]:
    """Load the committed baseline document (``{"tolerances", "cells"}``)."""
    with open(path or baseline_path(), "r", encoding="utf-8") as handle:
        return json.load(handle)


def baseline_document(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Build a baseline document from measured rows (for ``--refresh``)."""
    cells = {}
    for row in rows:
        key = cell_key(str(row["dataset"]), str(row["backend"]), str(row["mode"]))
        cells[key] = {
            metric: row[metric]
            for metric in ("candidates", "hits", "matches", "precision", "recall", "f1")
        }
    return {
        "benchmark": "matrix",
        "stream_batch_size": _STREAM_BATCH_SIZE,
        "seed": _SEED,
        "tolerances": dict(DEFAULT_TOLERANCES),
        "cells": cells,
    }


def compare_cell(
    row: Dict[str, object],
    baseline: Dict[str, object],
) -> List[str]:
    """Compare one measured row against the baseline document.

    Returns one human-readable violation message per metric outside its
    tolerance (empty list = the cell is within tolerance).  A cell missing
    from the baseline is itself a violation: new cells must be baselined
    deliberately, not silently skipped.
    """
    key = cell_key(str(row["dataset"]), str(row["backend"]), str(row["mode"]))
    cells = baseline.get("cells", {})
    if key not in cells:
        return [f"{key}: no committed baseline (run bench_matrix.py --refresh)"]
    tolerances = {**DEFAULT_TOLERANCES, **baseline.get("tolerances", {})}
    expected = cells[key]
    violations = []
    for metric, tolerance in tolerances.items():
        if metric not in expected:
            continue
        observed_value = float(row[metric])  # type: ignore[arg-type]
        expected_value = float(expected[metric])
        if metric in _ABSOLUTE_METRICS:
            delta = abs(observed_value - expected_value)
            within = delta <= tolerance
            detail = f"|Δ|={delta:.4f} > ±{tolerance}"
        else:
            scale = max(abs(expected_value), 1.0)
            delta = abs(observed_value - expected_value) / scale
            within = delta <= tolerance
            detail = f"relΔ={delta:.4f} > ±{tolerance:.0%}"
        if not within:
            violations.append(
                f"{key}: {metric} {observed_value:g} vs baseline "
                f"{expected_value:g} ({detail})"
            )
    return violations


def compare_rows(
    rows: Sequence[Dict[str, object]],
    baseline: Dict[str, object],
) -> List[str]:
    """Compare many rows; returns the concatenated per-cell violations."""
    violations: List[str] = []
    for row in rows:
        violations.extend(compare_cell(row, baseline))
    return violations
