"""Qualification tests (Section 7.1).

Before doing real HITs, each worker answers a small fixed set of record
pairs and is admitted only if *all* answers are correct.  Spammers are very
likely to fail (a random answerer passes a three-question test with
probability 1/8) and honest workers are nudged to read the instructions more
carefully, which the worker model captures with a carefulness boost.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crowd.worker import Worker, WorkerPool


class QualificationTest:
    """A pass/fail test of ``question_count`` pairwise questions."""

    def __init__(self, question_count: int = 3, require_all_correct: bool = True) -> None:
        if question_count < 1:
            raise ValueError("question_count must be at least 1")
        self.question_count = question_count
        self.require_all_correct = require_all_correct

    def administer(self, worker: Worker) -> bool:
        """Run the test for one worker; marks and returns qualification."""
        # Alternate true answers so "always-yes"/"always-no" spammers cannot
        # pass by constant answering.
        correct = 0
        for question_index in range(self.question_count):
            truth = question_index % 2 == 0
            if worker.answer_comparison(truth) == truth:
                correct += 1
        if self.require_all_correct:
            passed = correct == self.question_count
        else:
            passed = correct > self.question_count / 2
        worker.qualified = passed
        return passed

    def filter_pool(self, pool: WorkerPool) -> Tuple[List[Worker], List[Worker]]:
        """Administer the test to a pool; return (qualified, rejected)."""
        qualified: List[Worker] = []
        rejected: List[Worker] = []
        for worker in pool:
            if self.administer(worker):
                qualified.append(worker)
            else:
                rejected.append(worker)
        return qualified, rejected
