"""Deterministic fault injection for the asynchronous crowd platform.

A :class:`FaultPlan` decides, for every crowd assignment attempt, how the
delivery misbehaves: how many ticks it is delayed, whether the worker
abandons it (it never arrives and must be retried), whether the platform
delivers it twice, whether it is jittered out of order, and whether a
publish lands in a burst backlog that delays everything it issued.

Every decision is a pure function of ``(plan seed, hit id, assignment id,
attempt)`` — drawn from a string-seeded :class:`random.Random`, exactly like
the per-pair vote oracle in :class:`~repro.crowd.platform.SimulatedCrowdPlatform`
— so a fault schedule is reproducible across processes, independent of
``PYTHONHASHSEED``, and identical when a crashed session replays its
journal.  Faults perturb *when* votes arrive, never *what* they say: the
vote content still comes from the synchronous per-pair oracle, which is why
the async layer can promise bit-identical final results under any fault
schedule with eventual delivery.

Eventual delivery is guaranteed by construction: any attempt at or beyond
``max_faulty_attempts`` is delivered promptly and exactly once, so retry
loops terminate no matter how hostile the probabilities are.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional


@dataclass(frozen=True)
class AssignmentFate:
    """What the fault plan decided for one assignment attempt.

    ``abandoned`` means the simulated worker never submits: the assignment
    sits until its deadline and is retried.  ``delay_ticks`` is how long
    after issue a non-abandoned submission arrives.  ``duplicate`` delivers
    the same assignment a second time ``duplicate_delay_ticks`` after the
    first copy (the platform must deduplicate it).
    """

    delay_ticks: int = 0
    abandoned: bool = False
    duplicate: bool = False
    duplicate_delay_ticks: int = 0


@dataclass
class FaultPlan:
    """A seeded, JSON-serializable schedule of crowd-delivery faults.

    Parameters
    ----------
    seed:
        Root seed of every per-assignment draw.
    delay_ticks_min / delay_ticks_max:
        Uniform base delivery delay, in virtual clock ticks.
    drop_probability:
        Chance an attempt is abandoned by its worker (never delivered;
        retried at the deadline).
    duplicate_probability:
        Chance a delivered attempt arrives a second time.
    duplicate_delay_ticks:
        How many ticks after the first copy the duplicate lands.
    reorder_probability / reorder_window_ticks:
        Chance an attempt gets extra uniform jitter of up to
        ``reorder_window_ticks`` ticks — enough to overtake or fall behind
        neighbouring assignments, i.e. out-of-order arrival.
    churn_probability:
        Chance the assigned worker goes offline mid-assignment.  Modelled
        as abandonment (the HIT slot times out and is retried); worker
        churn never mutates the pool itself, so the per-pair vote oracle —
        and with it the async == sync equivalence — is untouched.
    burst_every / burst_backlog_ticks:
        Every ``burst_every``-th publish call lands in a backlog burst:
        everything it issued gains ``burst_backlog_ticks`` extra delay
        (0 disables bursts).
    max_faulty_attempts:
        Hard eventual-delivery bound: attempts at or beyond this index are
        always delivered, never abandoned and never duplicated.
    """

    seed: int = 0
    delay_ticks_min: int = 0
    delay_ticks_max: int = 3
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    duplicate_delay_ticks: int = 2
    reorder_probability: float = 0.0
    reorder_window_ticks: int = 3
    churn_probability: float = 0.0
    burst_every: int = 0
    burst_backlog_ticks: int = 0
    max_faulty_attempts: int = 8

    def __post_init__(self) -> None:
        if self.delay_ticks_min < 0 or self.delay_ticks_max < self.delay_ticks_min:
            raise ValueError("need 0 <= delay_ticks_min <= delay_ticks_max")
        for name in ("drop_probability", "duplicate_probability",
                     "reorder_probability", "churn_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.duplicate_delay_ticks < 0:
            raise ValueError("duplicate_delay_ticks must be non-negative")
        if self.reorder_window_ticks < 0:
            raise ValueError("reorder_window_ticks must be non-negative")
        if self.burst_every < 0 or self.burst_backlog_ticks < 0:
            raise ValueError("burst parameters must be non-negative")
        if self.max_faulty_attempts < 1:
            raise ValueError("max_faulty_attempts must be at least 1")

    # -------------------------------------------------------------- drawing
    def _rng(self, *parts: object) -> random.Random:
        """One deterministic RNG per decision point (string-seeded)."""
        return random.Random("|".join(str(part) for part in (self.seed, *parts)))

    def fate(self, hit_id: str, assignment_id: str, attempt: int,
             publish_index: int) -> AssignmentFate:
        """Decide the delivery fate of one assignment attempt."""
        if attempt >= self.max_faulty_attempts:
            # The eventual-delivery guarantee: no fault survives this bound.
            return AssignmentFate(delay_ticks=self.delay_ticks_min)
        rng = self._rng("fate", hit_id, assignment_id, attempt)
        delay = rng.randint(self.delay_ticks_min, self.delay_ticks_max)
        if self.reorder_probability and rng.random() < self.reorder_probability:
            delay += rng.randint(0, self.reorder_window_ticks)
        if self.burst_every and publish_index % self.burst_every == self.burst_every - 1:
            delay += self.burst_backlog_ticks
        abandoned = bool(
            (self.drop_probability and rng.random() < self.drop_probability)
            or (self.churn_probability and rng.random() < self.churn_probability)
        )
        duplicate = bool(
            not abandoned
            and self.duplicate_probability
            and rng.random() < self.duplicate_probability
        )
        return AssignmentFate(
            delay_ticks=delay,
            abandoned=abandoned,
            duplicate=duplicate,
            duplicate_delay_ticks=self.duplicate_delay_ticks if duplicate else 0,
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain JSON-friendly dict (the ``WorkflowConfig.fault_plan`` shape)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected loudly."""
        known = {field for field in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI ``--fault-plan`` format)."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
