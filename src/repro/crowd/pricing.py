"""Crowdsourcing cost model.

The paper pays workers $0.02 per completed HIT plus a $0.005 platform fee
for publishing each HIT, and replicates every HIT into three assignments, so
e.g. the Restaurant experiment costs 112 * 3 * $0.025 = $8.40 and the
Product experiment 508 * 3 * $0.025 = $38.10 (Section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PricingModel:
    """Per-assignment pricing: worker reward plus platform fee."""

    reward_per_assignment: float = 0.02
    platform_fee_per_assignment: float = 0.005

    def __post_init__(self) -> None:
        if self.reward_per_assignment < 0 or self.platform_fee_per_assignment < 0:
            raise ValueError("prices must be non-negative")

    @property
    def cost_per_assignment(self) -> float:
        """Total cost of one assignment (reward + fee)."""
        return self.reward_per_assignment + self.platform_fee_per_assignment

    def assignment_count(self, hit_count: int, assignments_per_hit: int) -> int:
        """Total number of assignments for a batch."""
        if hit_count < 0 or assignments_per_hit < 1:
            raise ValueError("hit_count must be >= 0 and assignments_per_hit >= 1")
        return hit_count * assignments_per_hit

    def total_cost(self, hit_count: int, assignments_per_hit: int = 3) -> float:
        """Total dollar cost of publishing and paying for a batch."""
        return self.assignment_count(hit_count, assignments_per_hit) * self.cost_per_assignment

    def naive_pair_cost(self, record_count: int, pairs_per_hit: int, assignments_per_hit: int = 1) -> float:
        """Cost of the naive human-only approach over all n*(n-1)/2 pairs.

        This is the back-of-envelope number the introduction uses to argue
        that batching alone does not make crowdsourced ER affordable.
        """
        total_pairs = record_count * (record_count - 1) // 2
        hit_count = -(-total_pairs // pairs_per_hit)  # ceiling division
        return self.total_cost(hit_count, assignments_per_hit)
