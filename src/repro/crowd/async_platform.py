"""The asynchronous crowd platform: publish now, votes arrive later.

:class:`AsyncCrowdPlatform` wraps a per-pair-mode
:class:`~repro.crowd.platform.SimulatedCrowdPlatform` and turns its
synchronous publish into an asynchronous HIT lifecycle on a virtual integer
clock:

* :meth:`publish` enqueues every HIT's assignments and returns a receipt
  immediately (HIT count and base cost, no votes);
* :meth:`advance` moves the clock; due assignments become
  :class:`VoteDelivery` objects, assignments past their deadline are
  retried with exponential backoff + deterministic jitter, and retries
  beyond ``max_retries`` become paid HIT reissues;
* :meth:`poll` / :meth:`drain_ready` / :meth:`settle` hand the buffered
  deliveries to the caller (pull-style ingestion);
* duplicate and late-after-reissue deliveries are dropped idempotently,
  keyed by ``(hit_id, assignment_id)`` and by the HIT slot already served;
* a bounded in-flight HIT window applies backpressure: ``"block"``
  advances the clock until the window drains, ``"shed"`` raises
  :class:`BackpressureError` so the caller can defer the publish.

**Equivalence by construction.**  Assignment *slot* ``k`` of a HIT carries
the ``k``-th vote of the per-pair oracle
(:meth:`~repro.crowd.platform.SimulatedCrowdPlatform.pair_votes`) for every
pair the HIT exclusively covers, evaluated against the ground truth *at
publish time*.  A :class:`~repro.crowd.faults.FaultPlan` perturbs only
delivery timing — never vote content — so once every slot has arrived the
caller can reassemble each pair's votes in slot order and obtain exactly
the ledger entry a synchronous publish would have produced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro import obs
from repro.crowd.faults import AssignmentFate, FaultPlan
from repro.crowd.platform import CrowdRunResult, SimulatedCrowdPlatform, Vote
from repro.hit.base import ClusterBasedHIT, HITBatch, PairBasedHIT
from repro.records.pairs import canonical_pair

PairKey = Tuple[str, str]

#: Exponent cap of the retry backoff (2**6 ticks is already a long wait on
#: the virtual clock; growing further only risks overflow-sized sleeps).
_MAX_BACKOFF_EXPONENT = 6

#: Simulated wall-clock seconds one virtual tick represents — only used to
#: scale the ``crowd_vote_latency_seconds`` histogram, never for results.
TICK_SECONDS = 30.0


class BackpressureError(RuntimeError):
    """Raised by ``publish`` when the in-flight window is full (policy "shed")."""


@dataclass
class VoteDelivery:
    """One accepted assignment submission: the slot's votes for its HIT.

    ``votes`` holds the slot-indexed oracle vote for every pair the HIT
    exclusively covers; ``pair_rounds`` the vote round each pair was
    published under (needed to discard stale deliveries).  ``seconds`` is
    the latency-model completion time of the assignment.
    """

    hit_id: str
    slot: int
    assignment_id: str
    attempt: int
    votes: List[Vote] = field(default_factory=list)
    pair_rounds: Dict[PairKey, int] = field(default_factory=dict)
    seconds: float = 0.0
    issued_tick: int = 0
    delivered_tick: int = 0

    def to_dict(self) -> dict:
        return {
            "hit_id": self.hit_id,
            "slot": self.slot,
            "assignment_id": self.assignment_id,
            "attempt": self.attempt,
            "votes": [[w, [k[0], k[1]], bool(a)] for w, k, a in self.votes],
            "pair_rounds": [[k[0], k[1], r] for k, r in sorted(self.pair_rounds.items())],
            "seconds": self.seconds,
            "issued_tick": self.issued_tick,
            "delivered_tick": self.delivered_tick,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VoteDelivery":
        return cls(
            hit_id=payload["hit_id"],
            slot=payload["slot"],
            assignment_id=payload["assignment_id"],
            attempt=payload["attempt"],
            votes=[(w, (k[0], k[1]), bool(a)) for w, k, a in payload["votes"]],
            pair_rounds={(a, b): r for a, b, r in payload["pair_rounds"]},
            seconds=payload["seconds"],
            issued_tick=payload["issued_tick"],
            delivered_tick=payload["delivered_tick"],
        )


class AsyncCrowdPlatform:
    """Asynchronous HIT lifecycle over a deterministic vote oracle.

    Parameters
    ----------
    platform:
        The wrapped :class:`SimulatedCrowdPlatform`; must be in
        ``"per-pair"`` vote mode (the oracle the slot deliveries index).
    vote_timeout:
        Ticks before an unanswered assignment times out and is retried.
    max_inflight_hits:
        Backpressure window: maximum HITs with undelivered slots
        (0 = unbounded).
    backpressure_policy:
        ``"block"`` advances the clock inside ``publish`` until the window
        has room; ``"shed"`` raises :class:`BackpressureError` instead.
    max_retries:
        Free retry budget per HIT slot; every further attempt is a paid
        reissue (``pricing.cost_per_assignment`` each).
    backoff_ticks:
        Base of the exponential retry backoff (attempt ``n`` waits
        ``backoff_ticks * 2**(n-1)`` ticks plus deterministic jitter).
    fault_plan:
        Optional :class:`~repro.crowd.faults.FaultPlan`; ``None`` delivers
        every assignment on the next tick, fault-free.
    """

    def __init__(
        self,
        platform: SimulatedCrowdPlatform,
        vote_timeout: int = 8,
        max_inflight_hits: int = 64,
        backpressure_policy: str = "block",
        max_retries: int = 3,
        backoff_ticks: int = 2,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if platform.vote_mode != "per-pair":
            raise ValueError(
                "AsyncCrowdPlatform needs a platform in 'per-pair' vote mode; "
                "sequential votes cannot be reassembled from async deliveries"
            )
        if vote_timeout < 1:
            raise ValueError("vote_timeout must be at least 1 tick")
        if max_inflight_hits < 0:
            raise ValueError("max_inflight_hits must be non-negative (0 = unbounded)")
        if backpressure_policy not in ("block", "shed"):
            raise ValueError("backpressure_policy must be 'block' or 'shed'")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_ticks < 0:
            raise ValueError("backoff_ticks must be non-negative")
        self.inner = platform
        self.vote_timeout = vote_timeout
        self.max_inflight_hits = max_inflight_hits
        self.backpressure_policy = backpressure_policy
        self.max_retries = max_retries
        self.backoff_ticks = backoff_ticks
        self.fault_plan = fault_plan
        self.clock = 0
        self.publish_count = 0
        #: hit_uid -> open-HIT record (pairs, rounds, truth-at-publish, ...).
        self._hits: Dict[str, dict] = {}
        #: outstanding assignment attempts (dict entries; JSON-shaped).
        self._pending: List[dict] = []
        #: deliveries buffered by internal advances, FIFO.
        self._ready: List[VoteDelivery] = []
        self._seen_assignments: Set[str] = set()
        self.retries = 0
        self.timeouts = 0
        self.duplicates_dropped = 0
        self.reissued = 0
        self._extra_cost = 0.0

    # ------------------------------------------------------------- queries
    @property
    def open_hit_count(self) -> int:
        """HITs with at least one undelivered slot (the in-flight window)."""
        k = self.inner.assignments_per_hit
        return sum(1 for hit in self._hits.values() if len(hit["delivered"]) < k)

    @property
    def pending_count(self) -> int:
        """Outstanding assignment attempts (including doomed duplicates)."""
        return len(self._pending)

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    def take_extra_cost(self) -> float:
        """Collect (and reset) the reissue cost accrued since the last call."""
        cost, self._extra_cost = self._extra_cost, 0.0
        return cost

    # ------------------------------------------------------------- publish
    def publish(
        self,
        batch: HITBatch,
        true_matches: Iterable[PairKey],
        candidate_pairs: Optional[Iterable[PairKey]] = None,
        vote_rounds: Optional[Mapping[PairKey, int]] = None,
        force: bool = False,
    ) -> CrowdRunResult:
        """Enqueue every HIT of the batch; votes arrive via later polls.

        Returns a receipt-shaped :class:`CrowdRunResult` — HIT count,
        replication factor and base cost — with no votes and no assignment
        timings (those flow through :class:`VoteDelivery` objects).
        ``force`` bypasses the backpressure window (used to settle shed
        backlogs at flush time).
        """
        window = self.max_inflight_hits
        if window and not force:
            if self.backpressure_policy == "shed":
                if self.open_hit_count + batch.hit_count > window:
                    raise BackpressureError(
                        f"in-flight window full ({self.open_hit_count} open + "
                        f"{batch.hit_count} new > {window})"
                    )
            else:  # block: drain the window on the virtual clock
                guard = 0
                while self.open_hit_count > 0 and (
                    self.open_hit_count + batch.hit_count > window
                ):
                    self.advance(1)
                    guard += 1
                    if guard > 1_000_000:  # pragma: no cover - defensive
                        raise RuntimeError("backpressure block failed to drain")

        truth: Set[PairKey] = {canonical_pair(a, b) for a, b in true_matches}
        candidates = (
            {canonical_pair(a, b) for a, b in candidate_pairs}
            if candidate_pairs is not None
            else set(batch.candidate_pairs)
        )
        k = self.inner.assignments_per_hit
        qualified = self.inner.qualification is not None
        claimed: Set[PairKey] = set()
        for hit in batch.hits:
            if isinstance(hit, PairBasedHIT):
                coverable = hit.checkable_pairs() & candidates
                seconds = self.inner.latency.pair_assignment_seconds(
                    hit.size, qualified=qualified
                )
            elif isinstance(hit, ClusterBasedHIT):
                coverable = hit.checkable_pairs(candidates)
                seconds = self.inner.latency.cluster_assignment_seconds(
                    hit.size * (hit.size - 1) // 2, qualified=qualified
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported HIT type: {type(hit)!r}")
            # Exclusive carrier assignment: overlapping HITs never deliver
            # the same pair twice, so slot reassembly is collision-free.
            pairs = sorted(coverable - claimed)
            claimed.update(pairs)
            hit_uid = f"p{self.publish_count}:{hit.hit_id}"
            self._hits[hit_uid] = {
                "pairs": pairs,
                "rounds": {
                    key: (vote_rounds.get(key, 0) if vote_rounds else 0)
                    for key in pairs
                },
                "truth": {key: key in truth for key in pairs},
                "seconds": seconds,
                "delivered": set(),
                "issued_tick": self.clock,
                "publish_index": self.publish_count,
            }
            for slot in range(k):
                self._enqueue_attempt(hit_uid, slot, attempt=0)
        self.publish_count += 1

        cost = self.inner.pricing.total_cost(batch.hit_count, k)
        if obs.enabled():
            obs.inc("hits_issued_total", batch.hit_count,
                    help="HITs published to the (simulated) crowd platform.")
            obs.inc("crowd_cost_dollars_total", cost,
                    help="Simulated crowd cost in dollars.")
            obs.set_gauge("crowd_hits_inflight", self.open_hit_count,
                          help="HITs published but not yet fully answered.")
        return CrowdRunResult(
            hit_count=batch.hit_count,
            assignments_per_hit=k,
            cost=cost,
            qualified_worker_count=(
                len(self.inner._eligible) if self.inner.qualification else 0
            ),
            rejected_worker_count=self.inner._rejected_count,
        )

    def _enqueue_attempt(self, hit_uid: str, slot: int, attempt: int,
                         not_before: int = 0) -> None:
        """Queue one assignment attempt, with its fate drawn from the plan."""
        assignment_id = f"{hit_uid}/s{slot}/a{attempt}"
        hit = self._hits[hit_uid]
        fate = (
            self.fault_plan.fate(hit_uid, assignment_id, attempt,
                                 hit["publish_index"])
            if self.fault_plan is not None
            else AssignmentFate()
        )
        start = self.clock + not_before
        entry = {
            "hit": hit_uid,
            "slot": slot,
            "attempt": attempt,
            "assignment_id": assignment_id,
            "issued_tick": self.clock,
            "due_tick": None if fate.abandoned else start + fate.delay_ticks,
            "deadline_tick": start + self.vote_timeout,
            "duplicate_of": None,
        }
        self._pending.append(entry)
        if fate.duplicate:
            self._pending.append({
                **entry,
                "due_tick": start + fate.delay_ticks + fate.duplicate_delay_ticks,
                "duplicate_of": assignment_id,
            })

    # ------------------------------------------------------------- advance
    def advance(self, ticks: int = 1) -> None:
        """Move the virtual clock; deliveries buffer into the ready queue."""
        for _ in range(max(0, ticks)):
            self.clock += 1
            self._deliver_due()
            self._retry_overdue()
            self._prune_settled()

    def _deliver_due(self) -> None:
        due = [entry for entry in self._pending
               if entry["due_tick"] is not None and entry["due_tick"] <= self.clock]
        if not due:
            return
        due.sort(key=lambda entry: (entry["due_tick"], entry["assignment_id"],
                                    entry["duplicate_of"] is not None))
        remaining = [entry for entry in self._pending if entry not in due]
        self._pending = remaining
        for entry in due:
            self._accept_or_drop(entry)

    def _accept_or_drop(self, entry: dict) -> None:
        hit = self._hits[entry["hit"]]
        assignment_id = entry["assignment_id"]
        if (
            entry["duplicate_of"] is not None
            or assignment_id in self._seen_assignments
            or entry["slot"] in hit["delivered"]
        ):
            # Idempotent dedup: platform duplicates, replayed assignment
            # ids, and late originals overtaken by a retry/reissue.
            self.duplicates_dropped += 1
            if obs.enabled():
                obs.inc("crowd_duplicates_dropped_total", 1,
                        help="Duplicate or late-after-reissue crowd "
                             "deliveries dropped by idempotent dedup.")
            return
        self._seen_assignments.add(assignment_id)
        hit["delivered"].add(entry["slot"])
        delivery = VoteDelivery(
            hit_id=entry["hit"],
            slot=entry["slot"],
            assignment_id=assignment_id,
            attempt=entry["attempt"],
            votes=[
                self.inner.pair_votes(key, hit["truth"][key],
                                      round_index=hit["rounds"][key])[entry["slot"]]
                for key in hit["pairs"]
            ],
            pair_rounds=dict(hit["rounds"]),
            seconds=hit["seconds"],
            issued_tick=hit["issued_tick"],
            delivered_tick=self.clock,
        )
        self._ready.append(delivery)
        if obs.enabled():
            obs.inc("crowd_assignments_total", 1,
                    help="Completed crowd assignments (replicated HITs).")
            obs.inc("crowd_votes_total", len(delivery.votes),
                    help="Per-pair votes collected from the crowd.")
            obs.inc("crowd_work_seconds_total", delivery.seconds,
                    help="Simulated worker-seconds spent on assignments.")
            obs.observe(
                "crowd_vote_latency_seconds",
                (self.clock - delivery.issued_tick) * TICK_SECONDS,
                help="Publish-to-delivery latency of accepted assignments "
                     "(virtual ticks scaled to simulated seconds).",
            )
            obs.set_gauge("crowd_hits_inflight", self.open_hit_count,
                          help="HITs published but not yet fully answered.")

    def _retry_overdue(self) -> None:
        overdue = [entry for entry in self._pending
                   if entry["deadline_tick"] <= self.clock]
        if not overdue:
            return
        overdue.sort(key=lambda entry: entry["assignment_id"])
        self._pending = [entry for entry in self._pending if entry not in overdue]
        for entry in overdue:
            hit = self._hits[entry["hit"]]
            if entry["slot"] in hit["delivered"] or entry["duplicate_of"] is not None:
                # The slot was served by another copy; nothing to retry.
                continue
            attempt = entry["attempt"] + 1
            self.timeouts += 1
            self.retries += 1
            if attempt > self.max_retries:
                # Retry budget exhausted: the HIT slot is reissued as a new
                # paid assignment (fresh id; the worker pool is asked again).
                self.reissued += 1
                self._extra_cost += self.inner.pricing.cost_per_assignment
                if obs.enabled():
                    obs.inc("crowd_reissued_total", 1,
                            help="HIT assignments reissued after the retry "
                                 "budget ran out (each costs one assignment).")
                    obs.inc("crowd_cost_dollars_total",
                            self.inner.pricing.cost_per_assignment)
            if obs.enabled():
                obs.inc("crowd_timeouts_total", 1,
                        help="Assignments that missed their vote deadline.")
                obs.inc("crowd_retries_total", 1,
                        help="Assignment retry attempts after a timeout.")
            backoff = self.backoff_ticks * (
                2 ** min(max(0, attempt - 1), _MAX_BACKOFF_EXPONENT)
            )
            jitter_rng = random.Random(
                f"{self.inner.seed}|backoff|{entry['hit']}|{entry['slot']}|{attempt}"
            )
            jitter = jitter_rng.randint(0, max(1, self.backoff_ticks))
            self._enqueue_attempt(entry["hit"], entry["slot"], attempt,
                                  not_before=backoff + jitter)

    def _prune_settled(self) -> None:
        """Drop fully delivered HITs no pending entry references anymore."""
        k = self.inner.assignments_per_hit
        referenced = {entry["hit"] for entry in self._pending}
        settled = [
            uid for uid, hit in self._hits.items()
            if len(hit["delivered"]) >= k and uid not in referenced
        ]
        for uid in settled:
            del self._hits[uid]

    # ----------------------------------------------------------- ingestion
    def drain_ready(self) -> List[VoteDelivery]:
        """Hand over every buffered delivery (FIFO, deterministic order)."""
        ready, self._ready = self._ready, []
        return ready

    def poll(self, ticks: int = 1) -> List[VoteDelivery]:
        """Advance the clock and return whatever arrived (pull ingestion)."""
        self.advance(ticks)
        return self.drain_ready()

    def settle(self, max_ticks: int = 1_000_000) -> List[VoteDelivery]:
        """Advance until nothing is outstanding; return all deliveries.

        Terminates for any :class:`FaultPlan` because attempts at
        ``max_faulty_attempts`` are always delivered.
        """
        ticks = 0
        while self._pending:
            self.advance(1)
            ticks += 1
            if ticks > max_ticks:  # pragma: no cover - defensive
                raise RuntimeError("async crowd failed to settle")
        return self.drain_ready()

    # -------------------------------------------------------- serialization
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable queue state (for session snapshots / page-in)."""
        return {
            "clock": self.clock,
            "publish_count": self.publish_count,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "duplicates_dropped": self.duplicates_dropped,
            "reissued": self.reissued,
            "extra_cost": self._extra_cost,
            "seen": sorted(self._seen_assignments),
            "hits": [
                [uid, {
                    "pairs": [[a, b] for a, b in hit["pairs"]],
                    "rounds": [[a, b, r] for (a, b), r in sorted(hit["rounds"].items())],
                    "truth": [[a, b, bool(t)] for (a, b), t in sorted(hit["truth"].items())],
                    "seconds": hit["seconds"],
                    "delivered": sorted(hit["delivered"]),
                    "issued_tick": hit["issued_tick"],
                    "publish_index": hit["publish_index"],
                }]
                for uid, hit in sorted(self._hits.items())
            ],
            "pending": [dict(entry) for entry in self._pending],
            "ready": [delivery.to_dict() for delivery in self._ready],
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        self.clock = int(state["clock"])  # type: ignore[arg-type]
        self.publish_count = int(state["publish_count"])  # type: ignore[arg-type]
        self.retries = int(state["retries"])  # type: ignore[arg-type]
        self.timeouts = int(state["timeouts"])  # type: ignore[arg-type]
        self.duplicates_dropped = int(state["duplicates_dropped"])  # type: ignore[arg-type]
        self.reissued = int(state["reissued"])  # type: ignore[arg-type]
        self._extra_cost = float(state["extra_cost"])  # type: ignore[arg-type]
        self._seen_assignments = set(state["seen"])  # type: ignore[arg-type]
        self._hits = {
            uid: {
                "pairs": [(a, b) for a, b in payload["pairs"]],
                "rounds": {(a, b): r for a, b, r in payload["rounds"]},
                "truth": {(a, b): bool(t) for a, b, t in payload["truth"]},
                "seconds": payload["seconds"],
                "delivered": set(payload["delivered"]),
                "issued_tick": payload["issued_tick"],
                "publish_index": payload["publish_index"],
            }
            for uid, payload in state["hits"]  # type: ignore[union-attr]
        }
        self._pending = [dict(entry) for entry in state["pending"]]  # type: ignore[union-attr]
        self._ready = [
            VoteDelivery.from_dict(payload) for payload in state["ready"]  # type: ignore[union-attr]
        ]
