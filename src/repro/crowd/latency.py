"""Latency model for simulated crowd runs (Figures 13 and 14).

Two quantities are modelled:

* **Per-assignment completion time** — dominated by the number of pairwise
  comparisons a worker must perform.  Pair-based HITs require one careful
  side-by-side reading per batched pair; the cluster interface (with its
  colour labels, sorting and drag-and-drop) makes each comparison much
  cheaper but adds a small orientation overhead.  This reproduces Figure 13:
  a C10 assignment takes slightly less time than a P16 assignment on data
  with few duplicates, and far less on duplicate-heavy data.

* **Total completion time of a batch** — determined by how many workers the
  batch attracts.  The paper observed that pair-based HITs attracted more
  workers (familiar interface), while very large pair HITs (P28) attracted
  fewer because the per-HIT effort grew at constant pay.  The model captures
  this with an *appeal* factor: cluster batches get a fixed unfamiliarity
  discount, pair batches are discounted proportionally to how much they
  exceed a reference batching size, and qualification tests shrink the
  eligible worker pool.  This reproduces the Figure 14 crossover: P16 beats
  C10 on Product, while C10 beats P28 on Product+Dup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class LatencyEstimate:
    """Latency figures of one simulated crowd run."""

    median_assignment_seconds: float
    mean_assignment_seconds: float
    total_minutes: float
    effective_workers: float
    assignment_count: int

    def as_dict(self) -> dict:
        """Plain-dict view used by the benchmark reports."""
        return {
            "median_assignment_seconds": self.median_assignment_seconds,
            "mean_assignment_seconds": self.mean_assignment_seconds,
            "total_minutes": self.total_minutes,
            "effective_workers": self.effective_workers,
            "assignment_count": self.assignment_count,
        }


@dataclass
class LatencyModel:
    """Parameterised latency model for pair-based and cluster-based HITs.

    Parameters (all in seconds unless noted):

    * ``pair_overhead`` / ``cluster_overhead`` — fixed time to open a HIT,
      read instructions and submit.
    * ``pair_seconds_per_comparison`` — careful side-by-side comparison of
      one batched pair.
    * ``cluster_seconds_per_comparison`` — one scan-comparison in the
      cluster interface.
    * ``pool_size`` — number of workers that could work on the batch.
    * ``cluster_appeal`` — fraction of the pool willing to try the
      unfamiliar cluster interface.
    * ``pair_reference_batch`` — pair count per HIT beyond which pair HITs
      start losing appeal (the P16 vs P28 effect).
    * ``qualification_participation`` — fraction of otherwise-willing
      workers that bother taking the qualification test.
    * ``recruitment_minutes`` — fixed time before the first workers arrive.
    """

    pair_overhead: float = 18.0
    cluster_overhead: float = 25.0
    pair_seconds_per_comparison: float = 5.5
    cluster_seconds_per_comparison: float = 1.6
    pool_size: int = 24
    cluster_appeal: float = 0.45
    pair_reference_batch: int = 16
    qualification_participation: float = 0.40
    qualification_extra_seconds: float = 6.0
    recruitment_minutes: float = 12.0
    #: Memo for :meth:`effective_workers`, keyed on every input the result
    #: depends on (so mutating a model parameter naturally misses the cache
    #: instead of serving a stale figure).
    _effective_workers_cache: Dict[Tuple, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------ per assignment
    def pair_assignment_seconds(self, pair_count: int, qualified: bool = False) -> float:
        """Completion time of one pair-based assignment with ``pair_count`` pairs."""
        if pair_count < 0:
            raise ValueError("pair_count must be non-negative")
        seconds = self.pair_overhead + self.pair_seconds_per_comparison * pair_count
        if qualified:
            seconds += self.qualification_extra_seconds
        return seconds

    def cluster_assignment_seconds(self, comparisons: int, qualified: bool = False) -> float:
        """Completion time of one cluster-based assignment with the given comparisons."""
        if comparisons < 0:
            raise ValueError("comparisons must be non-negative")
        seconds = self.cluster_overhead + self.cluster_seconds_per_comparison * comparisons
        if qualified:
            seconds += self.qualification_extra_seconds
        return seconds

    # ------------------------------------------------------------- appeal
    def batch_appeal(self, hit_type: str, pairs_per_hit: Optional[int] = None) -> float:
        """Fraction of the pool attracted by a batch of the given HIT type."""
        if hit_type == "cluster":
            return self.cluster_appeal
        if hit_type == "pair":
            if pairs_per_hit is None or pairs_per_hit <= 0:
                return 1.0
            return min(1.0, self.pair_reference_batch / pairs_per_hit)
        raise ValueError("hit_type must be 'pair' or 'cluster'")

    def effective_workers(
        self, hit_type: str, pairs_per_hit: Optional[int] = None, qualification: bool = False
    ) -> float:
        """Number of workers effectively working on the batch in parallel.

        Memoized per distinct input (and per model parameterisation): the
        streaming resolver calls this on every publish with an unchanged
        configuration, so the appeal arithmetic runs once, not per batch.
        """
        key = (
            hit_type,
            pairs_per_hit,
            qualification,
            self.pool_size,
            self.cluster_appeal,
            self.pair_reference_batch,
            self.qualification_participation,
        )
        cached = self._effective_workers_cache.get(key)
        if cached is not None:
            return cached
        workers = self.pool_size * self.batch_appeal(hit_type, pairs_per_hit)
        if qualification:
            workers *= self.qualification_participation
        workers = max(1.0, workers)
        self._effective_workers_cache[key] = workers
        return workers

    # --------------------------------------------------------------- totals
    def estimate(
        self,
        assignment_seconds: Sequence[float],
        hit_type: str,
        pairs_per_hit: Optional[int] = None,
        qualification: bool = False,
    ) -> LatencyEstimate:
        """Aggregate per-assignment times into batch-level latency figures."""
        times: List[float] = list(assignment_seconds)
        if not times:
            return LatencyEstimate(0.0, 0.0, 0.0, 0.0, 0)
        workers = self.effective_workers(hit_type, pairs_per_hit, qualification)
        total_work_seconds = sum(times)
        total_minutes = self.recruitment_minutes + (total_work_seconds / workers) / 60.0
        if qualification:
            # Qualified crowds take longer to assemble.
            total_minutes += self.recruitment_minutes
        return LatencyEstimate(
            median_assignment_seconds=float(median(times)),
            mean_assignment_seconds=float(sum(times) / len(times)),
            total_minutes=total_minutes,
            effective_workers=workers,
            assignment_count=len(times),
        )
