"""Crowd worker models.

Three profiles cover the behaviours the paper's quality analysis relies on:

* ``reliable`` workers answer each comparison correctly with high
  probability;
* ``noisy`` workers answer correctly with a lower probability;
* ``spammer`` workers ignore the records entirely and answer randomly (or
  always "yes"), which is why the paper adds qualification tests and uses
  EM aggregation instead of vote averaging.

Workers answer *comparisons*.  For a pair-based HIT each pair is one
comparison.  For a cluster-based HIT the worker follows the Section-6
procedure: records are assigned to entities by comparing each record to the
representative of already-identified entities, and the per-pair answers are
read off the resulting labelling (so they are always transitively
consistent, which is an inherent property of the cluster interface).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.records.pairs import canonical_pair


@dataclass(frozen=True)
class WorkerProfile:
    """Behavioural parameters of a worker.

    ``accuracy`` is the probability of answering a single comparison
    correctly.  ``spammer_mode`` overrides accuracy: ``"random"`` answers
    uniformly at random, ``"always-yes"`` always declares a match and
    ``"always-no"`` never does.  ``carefulness_boost`` is added to the
    accuracy when the worker has passed a qualification test (the paper
    notes the test "can force workers to read our instructions more
    carefully").
    """

    name: str
    accuracy: float = 0.95
    spammer_mode: Optional[str] = None
    carefulness_boost: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError("accuracy must be in [0, 1]")
        if self.spammer_mode not in (None, "random", "always-yes", "always-no"):
            raise ValueError(f"unknown spammer_mode {self.spammer_mode!r}")
        if not 0.0 <= self.carefulness_boost <= 1.0:
            raise ValueError("carefulness_boost must be in [0, 1]")


RELIABLE = WorkerProfile(name="reliable", accuracy=0.975, carefulness_boost=0.01)
NOISY = WorkerProfile(name="noisy", accuracy=0.86, carefulness_boost=0.08)
SPAMMER = WorkerProfile(name="spammer", accuracy=0.5, spammer_mode="random")


class Worker:
    """A simulated crowd worker with a reliability profile."""

    def __init__(self, worker_id: str, profile: WorkerProfile, seed: int = 0) -> None:
        self.worker_id = worker_id
        self.profile = profile
        self._rng = random.Random(seed)
        self.qualified = False
        self.completed_assignments = 0

    # ------------------------------------------------------------- answers
    @property
    def effective_accuracy(self) -> float:
        """Accuracy including the qualification carefulness boost."""
        accuracy = self.profile.accuracy
        if self.qualified:
            accuracy = min(1.0, accuracy + self.profile.carefulness_boost)
        return accuracy

    def answer_comparison(self, truth: bool, rng: Optional[random.Random] = None) -> bool:
        """Answer one pairwise comparison whose true answer is ``truth``.

        By default the worker's own (stateful) RNG drives the noise, so the
        answer depends on every comparison the worker made before.  Passing
        an explicit ``rng`` decouples the answer from that history — the
        platform's deterministic per-pair vote mode seeds one RNG per
        (worker, pair) so a pair's votes don't depend on HIT grouping or
        publication order.
        """
        rng = rng if rng is not None else self._rng
        mode = self.profile.spammer_mode
        if mode == "random":
            return rng.random() < 0.5
        if mode == "always-yes":
            return True
        if mode == "always-no":
            return False
        if rng.random() < self.effective_accuracy:
            return truth
        return not truth

    def do_pair_hit(
        self, pairs: Sequence[Tuple[str, str]], truth: Set[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], bool]:
        """Answer every pair of a pair-based HIT independently."""
        answers: Dict[Tuple[str, str], bool] = {}
        for id_a, id_b in pairs:
            key = canonical_pair(id_a, id_b)
            answers[key] = self.answer_comparison(key in truth)
        return answers

    def do_cluster_hit(
        self, records: Sequence[str], truth: Set[Tuple[str, str]]
    ) -> Dict[Tuple[str, str], bool]:
        """Label the records of a cluster-based HIT and derive pair answers.

        The worker walks the records in order and compares each record to
        the representative of every entity identified so far; the first
        comparison answered "yes" assigns the record to that entity, and a
        record matching no entity starts a new one.  This is exactly the
        Section-6 working procedure, so both the answers *and* the number of
        comparisons (used by the latency model) come from the same process.
        """
        labels: Dict[str, int] = {}
        representatives: List[str] = []
        self.last_comparisons = 0
        for record in records:
            assigned = False
            for entity_index, representative in enumerate(representatives):
                self.last_comparisons += 1
                truly_same = canonical_pair(record, representative) in truth
                if self.answer_comparison(truly_same):
                    labels[record] = entity_index
                    assigned = True
                    break
            if not assigned:
                labels[record] = len(representatives)
                representatives.append(record)
        answers: Dict[Tuple[str, str], bool] = {}
        record_list = list(records)
        for i in range(len(record_list)):
            for j in range(i + 1, len(record_list)):
                key = canonical_pair(record_list[i], record_list[j])
                answers[key] = labels[record_list[i]] == labels[record_list[j]]
        return answers


class WorkerPool:
    """A pool of simulated workers with a configurable reliability mix."""

    def __init__(self, workers: Sequence[Worker]) -> None:
        if not workers:
            raise ValueError("a worker pool needs at least one worker")
        self._workers = list(workers)
        #: Bumped on every membership change so platform-side eligibility
        #: caches can key on ``(pool identity, version)`` and invalidate
        #: exactly when churn happens instead of re-deriving per publish.
        self.version = 0

    @classmethod
    def build(
        cls,
        size: int = 60,
        reliable_fraction: float = 0.75,
        noisy_fraction: float = 0.15,
        spammer_fraction: float = 0.10,
        seed: int = 0,
    ) -> "WorkerPool":
        """Build a pool with the given mix of profiles (fractions sum to 1)."""
        if size < 1:
            raise ValueError("size must be at least 1")
        total = reliable_fraction + noisy_fraction + spammer_fraction
        if abs(total - 1.0) > 1e-6:
            raise ValueError("profile fractions must sum to 1")
        counts = {
            "reliable": int(round(size * reliable_fraction)),
            "noisy": int(round(size * noisy_fraction)),
        }
        counts["spammer"] = size - counts["reliable"] - counts["noisy"]
        workers: List[Worker] = []
        index = 0
        for profile, count in (
            (RELIABLE, counts["reliable"]),
            (NOISY, counts["noisy"]),
            (SPAMMER, max(0, counts["spammer"])),
        ):
            for _ in range(count):
                workers.append(Worker(f"worker-{index + 1}", profile, seed=seed + index))
                index += 1
        return cls(workers)

    def add_worker(self, worker: Worker) -> None:
        """Add a worker to the pool (churn: someone comes online)."""
        self._workers.append(worker)
        self.version += 1

    def remove_worker(self, worker_id: str) -> Worker:
        """Remove a worker by id (churn: someone goes offline)."""
        for index, worker in enumerate(self._workers):
            if worker.worker_id == worker_id:
                if len(self._workers) == 1:
                    raise ValueError("cannot remove the last worker of a pool")
                self.version += 1
                return self._workers.pop(index)
        raise KeyError(f"no worker {worker_id!r} in the pool")

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterable[Worker]:
        return iter(self._workers)

    @property
    def workers(self) -> List[Worker]:
        """All workers in the pool."""
        return list(self._workers)

    def spammer_count(self) -> int:
        """Number of spammer workers in the pool."""
        return sum(1 for worker in self._workers if worker.profile.spammer_mode is not None)

    def qualified_workers(self) -> List[Worker]:
        """Workers that have passed a qualification test."""
        return [worker for worker in self._workers if worker.qualified]
