"""Simulated crowdsourcing platform (the AMT substitute).

The paper evaluates on Amazon Mechanical Turk; offline we replace AMT with a
parameterised simulator that reproduces the crowd-facing behaviour the
experiments depend on:

* workers with different reliability profiles (reliable, noisy, spammer),
* per-HIT replication into multiple assignments done by distinct workers,
* qualification tests that filter out most spammers and make workers more
  careful, at the price of a smaller worker pool (latency),
* a pricing model ($0.02 reward + $0.005 platform fee per assignment in the
  paper), and
* a latency model driven by the Section-6 comparison counts and by how
  attractive each HIT type is to workers.

Every stochastic component is seeded, so experiment runs are reproducible.
"""

from repro.crowd.worker import Worker, WorkerPool, WorkerProfile
from repro.crowd.qualification import QualificationTest
from repro.crowd.pricing import PricingModel
from repro.crowd.latency import LatencyModel, LatencyEstimate
from repro.crowd.platform import SimulatedCrowdPlatform, CrowdRunResult
from repro.crowd.faults import AssignmentFate, FaultPlan
from repro.crowd.async_platform import (
    AsyncCrowdPlatform,
    BackpressureError,
    VoteDelivery,
)

__all__ = [
    "Worker",
    "WorkerPool",
    "WorkerProfile",
    "QualificationTest",
    "PricingModel",
    "LatencyModel",
    "LatencyEstimate",
    "SimulatedCrowdPlatform",
    "CrowdRunResult",
    "AssignmentFate",
    "FaultPlan",
    "AsyncCrowdPlatform",
    "BackpressureError",
    "VoteDelivery",
]
