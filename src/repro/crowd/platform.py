"""The simulated crowdsourcing marketplace.

:class:`SimulatedCrowdPlatform` plays the role of AMT in the experiments: it
takes a :class:`~repro.hit.base.HITBatch`, replicates every HIT into a
number of assignments (three in the paper), assigns each to a distinct
simulated worker, collects the per-pair votes and reports cost and latency.
Because workers are simulated, the platform needs the ground-truth matches
to generate (noisy) answers — this is the "simulate the crowd from the
labels" substitution documented in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.crowd.latency import LatencyEstimate, LatencyModel
from repro.crowd.pricing import PricingModel
from repro.crowd.qualification import QualificationTest
from repro.crowd.worker import Worker, WorkerPool
from repro.hit.base import ClusterBasedHIT, HITBatch, PairBasedHIT
from repro.records.pairs import canonical_pair

Vote = Tuple[str, Tuple[str, str], bool]


@dataclass
class CrowdRunResult:
    """Everything a simulated crowd run produced."""

    votes: List[Vote] = field(default_factory=list)
    assignment_seconds: List[float] = field(default_factory=list)
    cost: float = 0.0
    latency: Optional[LatencyEstimate] = None
    hit_count: int = 0
    assignments_per_hit: int = 3
    qualified_worker_count: int = 0
    rejected_worker_count: int = 0

    @property
    def assignment_count(self) -> int:
        """Total number of actually completed assignments.

        Counted from the recorded per-assignment timings rather than derived
        as ``hit_count * assignments_per_hit``, which would over-report
        whenever a platform leaves assignments unfilled.
        """
        return len(self.assignment_seconds)

    def votes_by_pair(self) -> Dict[Tuple[str, str], List[bool]]:
        """Group the raw answers by pair key."""
        grouped: Dict[Tuple[str, str], List[bool]] = {}
        for _worker, pair_key, answer in self.votes:
            grouped.setdefault(pair_key, []).append(answer)
        return grouped


class SimulatedCrowdPlatform:
    """AMT stand-in: publishes HIT batches to a pool of simulated workers.

    Parameters
    ----------
    pool:
        The worker pool; defaults to a 60-worker pool with the standard
        reliability mix.
    assignments_per_hit:
        Replication factor (3 in the paper).
    qualification:
        Optional qualification test; when given, only workers that pass it
        are allowed to do assignments.
    pricing / latency:
        Cost and latency models.
    seed:
        Seed of the worker-selection RNG.
    vote_mode:
        ``"sequential"`` (the default) replays the legacy simulation: one
        RNG is advanced HIT by HIT, so the votes a pair receives depend on
        the order HITs are published and on how pairs are grouped into
        HITs.  ``"per-pair"`` makes every pair's votes a pure function of
        (platform seed, pair key, vote round): the workers asked about a
        pair and their answers are drawn from RNGs seeded by the pair key,
        so regrouping pairs into different HITs, splitting a batch into
        several ``publish`` calls, or covering a pair with multiple HITs
        never changes (or duplicates) its votes.  The streaming resolver
        relies on this mode for its incremental == batch equivalence.
    """

    VOTE_MODES = ("sequential", "per-pair")

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        assignments_per_hit: int = 3,
        qualification: Optional[QualificationTest] = None,
        pricing: Optional[PricingModel] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        vote_mode: str = "sequential",
    ) -> None:
        if assignments_per_hit < 1:
            raise ValueError("assignments_per_hit must be at least 1")
        if vote_mode not in self.VOTE_MODES:
            raise ValueError(f"vote_mode must be one of {self.VOTE_MODES}")
        self.pool = pool or WorkerPool.build(seed=seed)
        self.assignments_per_hit = assignments_per_hit
        self.qualification = qualification
        self.pricing = pricing or PricingModel()
        self.latency = latency or LatencyModel()
        self.seed = seed
        self.vote_mode = vote_mode
        self._rejected_count = 0
        # Eligibility cache keyed on the pool's membership version: churn
        # (add/remove worker) invalidates it, everything else — including
        # every publish — reuses the filtered list instead of re-running
        # the qualification test per call.
        self._eligible_version: Optional[int] = None
        self._eligible_workers: List[Worker] = []
        _ = self._eligible  # warm the cache so _rejected_count is set

    @property
    def _eligible(self) -> List[Worker]:
        if self._eligible_version != self.pool.version:
            self._eligible_workers = self._determine_eligible_workers()
            self._eligible_version = self.pool.version
        return self._eligible_workers

    def _determine_eligible_workers(self) -> List[Worker]:
        if self.qualification is None:
            return self.pool.workers
        qualified, rejected = self.qualification.filter_pool(self.pool)
        self._rejected_count = len(rejected)
        if not qualified:
            # Degenerate configuration (everyone failed); fall back to the
            # full pool so the simulation can still proceed.
            return self.pool.workers
        return qualified

    # ----------------------------------------------------------------- run
    def publish(
        self,
        batch: HITBatch,
        true_matches: Iterable[Tuple[str, str]],
        candidate_pairs: Optional[Iterable[Tuple[str, str]]] = None,
        vote_rounds: Optional[Mapping[Tuple[str, str], int]] = None,
    ) -> CrowdRunResult:
        """Run every HIT of the batch through ``assignments_per_hit`` workers.

        ``true_matches`` is the ground truth used to simulate answers.
        ``candidate_pairs`` restricts which pairs of a HIT produce votes (by
        default the batch's own candidate set is used, so only
        machine-suggested pairs are recorded — exactly the pairs the
        workflow needs verified).  ``vote_rounds`` (per-pair mode only) maps
        a pair key to its re-crowd round; asking the same pair again in a
        higher round draws fresh votes, while round 0 always reproduces the
        pair's original votes.
        """
        truth: Set[Tuple[str, str]] = {canonical_pair(a, b) for a, b in true_matches}
        candidates = (
            {canonical_pair(a, b) for a, b in candidate_pairs}
            if candidate_pairs is not None
            else set(batch.candidate_pairs)
        )
        rng = random.Random(self.seed)
        result = CrowdRunResult(
            hit_count=batch.hit_count,
            assignments_per_hit=self.assignments_per_hit,
            qualified_worker_count=len(self._eligible) if self.qualification else 0,
            rejected_worker_count=self._rejected_count,
        )

        pairs_per_hit = None
        if batch.hit_type == "pair" and batch.hits:
            pairs_per_hit = max(hit.size for hit in batch.hits)  # type: ignore[attr-defined]

        with obs.span("crowd.publish", hits=batch.hit_count, mode=self.vote_mode):
            if self.vote_mode == "per-pair":
                self._publish_per_pair(batch, truth, candidates, vote_rounds, rng, result)
            else:
                self._publish_sequential(batch, truth, candidates, rng, result)

        result.cost = self.pricing.total_cost(batch.hit_count, self.assignments_per_hit)
        result.latency = self.latency.estimate(
            result.assignment_seconds,
            hit_type=batch.hit_type,
            pairs_per_hit=pairs_per_hit,
            qualification=self.qualification is not None,
        )
        # The paper's headline cost metrics, per publish call.  HITs issued
        # here accumulate exactly like the sessions' own hit counters, so a
        # cost report's HIT count always equals the session's real total.
        if obs.enabled():
            obs.inc("hits_issued_total", batch.hit_count,
                    help="HITs published to the (simulated) crowd platform.")
            obs.inc("crowd_assignments_total", len(result.assignment_seconds),
                    help="Completed crowd assignments (replicated HITs).")
            obs.inc("crowd_votes_total", len(result.votes),
                    help="Per-pair votes collected from the crowd.")
            obs.inc("crowd_cost_dollars_total", result.cost,
                    help="Simulated crowd cost in dollars.")
            obs.inc("crowd_work_seconds_total", sum(result.assignment_seconds),
                    help="Simulated worker-seconds spent on assignments.")
            if result.latency is not None:
                obs.inc("crowd_elapsed_minutes_total", result.latency.total_minutes,
                        help="Simulated end-to-end crowd latency in minutes.")
        return result

    def _publish_sequential(
        self,
        batch: HITBatch,
        truth: Set[Tuple[str, str]],
        candidates: Set[Tuple[str, str]],
        rng: random.Random,
        result: CrowdRunResult,
    ) -> None:
        """Legacy simulation: one RNG advanced HIT by HIT in publish order."""
        for hit in batch.hits:
            workers = self._pick_workers(rng)
            for worker in workers:
                if isinstance(hit, PairBasedHIT):
                    answers = worker.do_pair_hit(hit.pairs, truth)
                    seconds = self.latency.pair_assignment_seconds(
                        hit.size, qualified=self.qualification is not None
                    )
                elif isinstance(hit, ClusterBasedHIT):
                    answers = worker.do_cluster_hit(hit.records, truth)
                    seconds = self.latency.cluster_assignment_seconds(
                        getattr(worker, "last_comparisons", hit.size * (hit.size - 1) // 2),
                        qualified=self.qualification is not None,
                    )
                    # Only report votes for the machine-suggested candidates.
                    answers = {key: value for key, value in answers.items() if key in candidates}
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unsupported HIT type: {type(hit)!r}")
                worker.completed_assignments += 1
                result.assignment_seconds.append(seconds)
                for pair_key, answer in answers.items():
                    result.votes.append((worker.worker_id, pair_key, answer))

    def _publish_per_pair(
        self,
        batch: HITBatch,
        truth: Set[Tuple[str, str]],
        candidates: Set[Tuple[str, str]],
        vote_rounds: Optional[Mapping[Tuple[str, str], int]],
        rng: random.Random,
        result: CrowdRunResult,
    ) -> None:
        """Deterministic simulation: votes are a function of the pair key.

        Assignments (cost and latency bookkeeping) are still accounted per
        HIT, but the votes are generated once per *covered candidate pair*
        in sorted pair order — a pair covered by two overlapping cluster
        HITs is asked once, and splitting the batch over several publish
        calls yields the same votes per pair.
        """
        covered: Set[Tuple[str, str]] = set()
        for hit in batch.hits:
            if isinstance(hit, PairBasedHIT):
                covered |= hit.checkable_pairs() & candidates
            elif isinstance(hit, ClusterBasedHIT):
                covered |= hit.checkable_pairs(candidates)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported HIT type: {type(hit)!r}")
            # Per-HIT assignment bookkeeping mirrors the sequential mode;
            # cluster comparisons use the full pairwise count (the
            # deterministic worst case of the Section-6 procedure).
            workers = self._pick_workers(rng)
            for worker in workers:
                if isinstance(hit, PairBasedHIT):
                    seconds = self.latency.pair_assignment_seconds(
                        hit.size, qualified=self.qualification is not None
                    )
                else:
                    seconds = self.latency.cluster_assignment_seconds(
                        hit.size * (hit.size - 1) // 2,
                        qualified=self.qualification is not None,
                    )
                worker.completed_assignments += 1
                result.assignment_seconds.append(seconds)
        for pair_key in sorted(covered):
            round_index = vote_rounds.get(pair_key, 0) if vote_rounds else 0
            result.votes.extend(
                self.pair_votes(pair_key, pair_key in truth, round_index=round_index)
            )

    def pair_votes(
        self, pair_key: Tuple[str, str], is_match: bool, round_index: int = 0
    ) -> List[Vote]:
        """Deterministic votes for one pair (the per-pair vote oracle).

        The ``assignments_per_hit`` workers asked about the pair are drawn
        from an RNG seeded by (platform seed, round, pair key), and each
        worker's answer from an RNG seeded by (platform seed, round, worker,
        pair key).  String seeds hash via SHA-512 inside ``random.Random``,
        so the votes are stable across processes and independent of
        ``PYTHONHASHSEED``.
        """
        key_a, key_b = pair_key
        picker = random.Random(f"{self.seed}|{round_index}|workers|{key_a}|{key_b}")
        if len(self._eligible) >= self.assignments_per_hit:
            workers = picker.sample(self._eligible, self.assignments_per_hit)
        else:
            workers = [picker.choice(self._eligible) for _ in range(self.assignments_per_hit)]
        votes: List[Vote] = []
        for worker in workers:
            answer_rng = random.Random(
                f"{self.seed}|{round_index}|{worker.worker_id}|{key_a}|{key_b}"
            )
            votes.append(
                (worker.worker_id, pair_key, worker.answer_comparison(is_match, rng=answer_rng))
            )
        return votes

    def _pick_workers(self, rng: random.Random) -> List[Worker]:
        """Pick ``assignments_per_hit`` distinct workers for one HIT."""
        if len(self._eligible) >= self.assignments_per_hit:
            return rng.sample(self._eligible, self.assignments_per_hit)
        # Fewer eligible workers than assignments: reuse workers (AMT would
        # simply leave assignments unfilled; reusing keeps the simulation
        # simple and is noted in DESIGN.md).
        return [rng.choice(self._eligible) for _ in range(self.assignments_per_hit)]
