"""ETL layer for the standard entity-resolution benchmark corpora.

The synthetic generators in :mod:`repro.datasets` calibrate *shapes* (record
counts, likelihood profiles) but every optimization since PR 1 has been
validated against those single synthetic scenarios.  This package loads
**real-style benchmark corpora** in the Abt-Buy / Amazon-Google format —
two source CSVs plus a gold-pair mapping CSV — through a pipeline that does
the unglamorous work real data needs:

* **schema mapping** — per-source column maps onto a canonical attribute
  set (:class:`~repro.etl.loader.SourceSpec`);
* **normalization** — unicode NFKD folding, accent stripping, punctuation
  and whitespace collapse (:func:`~repro.etl.parsing.etl_normalize`);
* **price/currency parsing** — ``"$1,299.00"``, ``"GBP 279"``, ``"12,50 €"``
  all become a canonical decimal plus an ISO currency code
  (:func:`~repro.etl.parsing.parse_price_currency`); malformed values are
  dropped and counted, never crash the load;
* **stable ids** — record ids are md5-derived from ``corpus|source|id``
  (:func:`~repro.etl.parsing.md5_id`), so they are identical across loads,
  row orders and machines;
* **gold-pair ingestion** — the perfect-mapping CSV becomes the dataset's
  ``ground_truth``, with rows referencing absent records dropped and
  counted (mini-corpus subsets of the full data need this);
* **lineage** — every loaded :class:`~repro.datasets.base.Dataset` carries
  ``metadata["lineage"]``: source URL, file checksums, the normalization
  steps applied, and per-step counts, so a regression in any downstream
  metric is attributable to the exact corpus bytes that produced it;
* **checksum manifests** — each corpus directory ships a ``manifest.json``
  whose per-file SHA-256 digests are verified on load
  (:mod:`repro.etl.manifest`); the optional download path caches fetched
  files and verifies them against the same manifest.

Bundled, offline-friendly mini-corpora (~500 records each, committed under
``repro/etl/data/``) back the default registry entries, so
``load_corpus("abt-buy")`` works with no network; pass ``data_dir`` to load
the full corpora from disk, or ``download=True`` to fetch + cache them.
"""

from repro.etl.loader import CorpusSpec, EtlError, SourceSpec, load_corpus_from_dir
from repro.etl.manifest import (
    Manifest,
    ManifestError,
    fetch_corpus,
    load_manifest,
    sha256_file,
    verify_manifest,
)
from repro.etl.parsing import etl_normalize, md5_id, parse_price_currency, strip_accents
from repro.etl.registry import (
    available_corpora,
    bundled_corpus_dir,
    corpus_spec,
    load_corpus,
    register_corpus,
)

__all__ = [
    "CorpusSpec",
    "SourceSpec",
    "EtlError",
    "load_corpus_from_dir",
    "Manifest",
    "ManifestError",
    "fetch_corpus",
    "load_manifest",
    "sha256_file",
    "verify_manifest",
    "etl_normalize",
    "md5_id",
    "parse_price_currency",
    "strip_accents",
    "available_corpora",
    "bundled_corpus_dir",
    "corpus_spec",
    "load_corpus",
    "register_corpus",
]
