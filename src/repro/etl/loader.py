"""Two-source CSV corpus loader: raw benchmark files → Dataset + lineage.

The standard record-linkage corpora (Abt-Buy, Amazon-GoogleProducts,
DBLP-ACM, ...) all share one shape: two CSV files of records, one CSV of
gold matching id pairs.  :func:`load_corpus_from_dir` turns that shape into
a :class:`repro.datasets.base.Dataset` ready for the hybrid workflow:

1. verify the directory's checksum manifest (:mod:`repro.etl.manifest`);
2. read each source CSV through its :class:`SourceSpec` column map;
3. normalise text attributes (:func:`repro.etl.parsing.etl_normalize`) and
   parse price fields into canonical decimal + currency attributes;
4. derive stable record ids with :func:`repro.etl.parsing.md5_id`;
5. ingest the gold mapping into the dataset's ``ground_truth``, dropping
   (and counting) rows that reference records absent from this corpus
   slice;
6. record per-step lineage in ``Dataset.metadata["lineage"]`` so every
   downstream regression is attributable to the exact corpus bytes.

Malformed *values* (unparseable prices, records whose text normalises to
nothing) are tolerated and counted; malformed *structure* (duplicate source
ids, missing columns, missing files) raises :class:`EtlError` — a corpus
that is structurally broken should never silently produce a dataset.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.datasets.base import Dataset
from repro.etl.manifest import Manifest, load_manifest, verify_manifest
from repro.etl.parsing import etl_normalize, md5_id, parse_price_currency
from repro.records.pairs import canonical_pair
from repro.records.record import Record, RecordStore


class EtlError(ValueError):
    """Raised for structurally broken corpus files (not for messy values)."""


@dataclass(frozen=True)
class SourceSpec:
    """Schema mapping for one source CSV of a two-source corpus.

    Attributes
    ----------
    name:
        Source tag stamped on every record (``"abt"``, ``"amazon"``, ...).
    filename:
        CSV file name inside the corpus directory.
    id_column:
        Column holding the source-local record id.
    column_map:
        ``csv column → canonical attribute`` for the text attributes that
        feed similarity (values are normalised).
    price_column:
        Optional column parsed into canonical ``price`` (decimal string)
        and ``currency`` attributes instead of being normalised as text.
    """

    name: str
    filename: str
    id_column: str = "id"
    column_map: Mapping[str, str] = field(default_factory=dict)
    price_column: Optional[str] = None


@dataclass(frozen=True)
class CorpusSpec:
    """A registered two-source benchmark corpus.

    ``mapping_columns`` names the gold CSV's two id columns in the same
    order as ``sources``.  ``default_threshold`` is the likelihood
    threshold the paper (and the regression matrix) uses for this corpus;
    ``default_attributes`` restricts the similarity attribute pool
    (``None`` = all text attributes).
    """

    name: str
    sources: Tuple[SourceSpec, SourceSpec]
    mapping_filename: str
    mapping_columns: Tuple[str, str]
    default_threshold: float = 0.2
    default_attributes: Optional[Tuple[str, ...]] = None


def _read_csv_rows(path: Path) -> List[Dict[str, str]]:
    """Read a CSV into dict rows with lower-cased, stripped headers."""
    if not path.is_file():
        raise EtlError(f"corpus file missing: {path}")
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise EtlError(f"corpus file {path} has no header row")
        rows = []
        for row in reader:
            rows.append({
                (key or "").strip().lower(): (value or "")
                for key, value in row.items()
                if key is not None
            })
    return rows


def _load_source(
    spec: CorpusSpec,
    source: SourceSpec,
    directory: Path,
    store: RecordStore,
    lineage_counts: Dict[str, int],
) -> Dict[str, str]:
    """Load one source CSV into the store; returns source id → record id."""
    rows = _read_csv_rows(directory / source.filename)
    id_column = source.id_column.lower()
    id_map: Dict[str, str] = {}
    for line_number, row in enumerate(rows, start=2):
        source_id = row.get(id_column, "").strip()
        if not source_id:
            raise EtlError(
                f"{source.filename} line {line_number}: empty or missing "
                f"{source.id_column!r} value"
            )
        if source_id in id_map:
            raise EtlError(
                f"{source.filename} line {line_number}: duplicate source id "
                f"{source_id!r} (ids must be unique within a source)"
            )
        attributes: Dict[str, str] = {}
        for column, attribute in source.column_map.items():
            attributes[attribute] = etl_normalize(row.get(column.lower(), ""))
        if source.price_column is not None:
            amount, currency = parse_price_currency(row.get(source.price_column.lower()))
            if amount is None:
                if row.get(source.price_column.lower(), "").strip():
                    lineage_counts["malformed_prices"] += 1
                else:
                    lineage_counts["missing_prices"] += 1
            else:
                attributes["price"] = f"{amount:.2f}"
                if currency is not None:
                    attributes["currency"] = currency
        if not any(attributes.get(attr) for attr in _text_attributes(source)):
            lineage_counts["empty_token_records"] += 1
        record_id = md5_id(spec.name, source.name, source_id)
        store.add(
            Record(record_id=record_id, attributes=attributes, source=source.name)
        )
        id_map[source_id] = record_id
    lineage_counts[f"{source.name}_records"] = len(id_map)
    return id_map


def _text_attributes(source: SourceSpec) -> Tuple[str, ...]:
    return tuple(source.column_map.values())


def _load_gold_pairs(
    spec: CorpusSpec,
    directory: Path,
    id_maps: Tuple[Dict[str, str], Dict[str, str]],
    lineage_counts: Dict[str, int],
) -> frozenset:
    """Ingest the perfect-mapping CSV into canonical gold pair keys."""
    rows = _read_csv_rows(directory / spec.mapping_filename)
    left_column, right_column = (column.lower() for column in spec.mapping_columns)
    left_map, right_map = id_maps
    pairs = set()
    skipped = 0
    for line_number, row in enumerate(rows, start=2):
        if left_column not in row or right_column not in row:
            raise EtlError(
                f"{spec.mapping_filename} line {line_number}: expected columns "
                f"{spec.mapping_columns} (got {sorted(row)})"
            )
        left_id = left_map.get(row[left_column].strip())
        right_id = right_map.get(row[right_column].strip())
        if left_id is None or right_id is None:
            # Mini-corpus slices do not contain every record the full
            # mapping references; drop (and count) rather than fail.
            skipped += 1
            continue
        pairs.add(canonical_pair(left_id, right_id))
    lineage_counts["gold_pairs"] = len(pairs)
    lineage_counts["gold_pairs_skipped"] = skipped
    return frozenset(pairs)


def load_corpus_from_dir(
    spec: CorpusSpec,
    directory: Path,
    verify_checksums: bool = True,
) -> Dataset:
    """Load a two-source corpus directory into a :class:`Dataset`.

    With ``verify_checksums`` (the default) the directory's
    ``manifest.json`` digests are verified first and the manifest's source
    URL / normalization steps are carried into the lineage; pass ``False``
    only for ad-hoc directories that have no manifest yet.
    """
    directory = Path(directory)
    manifest: Optional[Manifest] = None
    if verify_checksums:
        manifest = verify_manifest(directory)
    store = RecordStore(name=spec.name)
    lineage_counts: Dict[str, int] = {
        "malformed_prices": 0,
        "missing_prices": 0,
        "empty_token_records": 0,
    }
    id_maps = tuple(
        _load_source(spec, source, directory, store, lineage_counts)
        for source in spec.sources
    )
    ground_truth = _load_gold_pairs(spec, directory, id_maps, lineage_counts)
    lineage: Dict[str, object] = {
        "corpus": spec.name,
        "directory": str(directory),
        "loader": "repro.etl.loader.load_corpus_from_dir",
        "sources": {
            source.name: source.filename for source in spec.sources
        },
        "normalization": (
            list(manifest.normalization)
            if manifest is not None and manifest.normalization
            else ["strip_accents", "normalize_text", "parse_price_currency"]
        ),
        "counts": dict(lineage_counts),
        "checksums_verified": manifest is not None,
    }
    if manifest is not None:
        lineage["source_url"] = manifest.source_url
        lineage["variant"] = manifest.variant
        lineage["files"] = {
            name: stamp.sha256 for name, stamp in manifest.files.items()
        }
    return Dataset(
        name=spec.name,
        store=store,
        ground_truth=ground_truth,
        cross_sources=(spec.sources[0].name, spec.sources[1].name),
        metadata={
            "lineage": lineage,
            "default_threshold": spec.default_threshold,
            "similarity_attributes": (
                list(spec.default_attributes) if spec.default_attributes else None
            ),
        },
    )
