"""Checksum manifests: the provenance gate every corpus load passes through.

Each corpus directory carries a ``manifest.json`` describing exactly the
bytes the loader is allowed to consume::

    {
      "corpus": "abt-buy",
      "source_url": "https://dbs.uni-leipzig.de/.../Abt-Buy.zip",
      "license": "CC-BY 4.0",
      "variant": "bundled-mini",
      "files": {
        "Abt.csv":  {"sha256": "...", "bytes": 32768,
                      "url": "https://.../Abt.csv"},
        "Buy.csv":  {"sha256": "...", "bytes": 31744}
      },
      "normalization": ["strip_accents", "normalize_text", "parse_price_currency"]
    }

:func:`verify_manifest` recomputes every digest and raises
:class:`ManifestError` with a per-file message on any mismatch — a corpus
whose bytes drifted produces an *attributable* error instead of a silently
different benchmark baseline.  :func:`fetch_corpus` is the optional
download+cache path: files are fetched into a cache directory once and
verified against the same digests, so online and offline loads are
guaranteed byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

MANIFEST_FILENAME = "manifest.json"


class ManifestError(ValueError):
    """Raised when a manifest is missing, malformed, or its checksums fail."""


@dataclass(frozen=True)
class FileStamp:
    """Expected identity of one corpus file."""

    sha256: str
    bytes: int
    url: Optional[str] = None


@dataclass(frozen=True)
class Manifest:
    """Parsed ``manifest.json`` of one corpus directory."""

    corpus: str
    files: Dict[str, FileStamp]
    source_url: Optional[str] = None
    license: Optional[str] = None
    variant: Optional[str] = None
    normalization: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "corpus": self.corpus,
            "files": {
                name: {
                    key: value
                    for key, value in (
                        ("sha256", stamp.sha256),
                        ("bytes", stamp.bytes),
                        ("url", stamp.url),
                    )
                    if value is not None
                }
                for name, stamp in self.files.items()
            },
        }
        if self.source_url:
            payload["source_url"] = self.source_url
        if self.license:
            payload["license"] = self.license
        if self.variant:
            payload["variant"] = self.variant
        if self.normalization:
            payload["normalization"] = list(self.normalization)
        return payload


def sha256_file(path: Path) -> str:
    """Hex SHA-256 digest of a file, streamed in 64 KiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(65536), b""):
            digest.update(chunk)
    return digest.hexdigest()


def load_manifest(directory: Path) -> Manifest:
    """Load and validate ``manifest.json`` from a corpus directory."""
    path = Path(directory) / MANIFEST_FILENAME
    if not path.is_file():
        raise ManifestError(f"corpus directory {directory} has no {MANIFEST_FILENAME}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ManifestError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or "files" not in payload or "corpus" not in payload:
        raise ManifestError(f"{path} must be an object with 'corpus' and 'files' keys")
    files: Dict[str, FileStamp] = {}
    for name, stamp in payload["files"].items():
        if "sha256" not in stamp or "bytes" not in stamp:
            raise ManifestError(f"{path}: file entry {name!r} needs 'sha256' and 'bytes'")
        files[name] = FileStamp(
            sha256=str(stamp["sha256"]),
            bytes=int(stamp["bytes"]),
            url=stamp.get("url"),
        )
    return Manifest(
        corpus=str(payload["corpus"]),
        files=files,
        source_url=payload.get("source_url"),
        license=payload.get("license"),
        variant=payload.get("variant"),
        normalization=list(payload.get("normalization", [])),
    )


def verify_manifest(directory: Path, manifest: Optional[Manifest] = None) -> Manifest:
    """Verify every manifest file's size and SHA-256 digest.

    Returns the (possibly freshly loaded) manifest on success; raises
    :class:`ManifestError` naming every failing file, its expected and
    actual digest, so the error pinpoints *which* corpus bytes drifted.
    """
    directory = Path(directory)
    manifest = manifest or load_manifest(directory)
    problems: List[str] = []
    for name, stamp in manifest.files.items():
        path = directory / name
        if not path.is_file():
            problems.append(f"{name}: missing from {directory}")
            continue
        actual_bytes = path.stat().st_size
        if actual_bytes != stamp.bytes:
            problems.append(
                f"{name}: size mismatch (manifest {stamp.bytes} bytes, file {actual_bytes} bytes)"
            )
            continue
        actual = sha256_file(path)
        if actual != stamp.sha256:
            problems.append(
                f"{name}: checksum mismatch (manifest sha256 {stamp.sha256[:16]}…, "
                f"file {actual[:16]}…)"
            )
    if problems:
        raise ManifestError(
            f"corpus {manifest.corpus!r} failed checksum verification:\n  "
            + "\n  ".join(problems)
        )
    return manifest


def fetch_corpus(
    manifest: Manifest,
    cache_dir: Path,
    timeout: float = 30.0,
) -> Path:
    """Download the manifest's files into ``cache_dir`` and verify them.

    Files already present with the right digest are not re-fetched, so the
    cache directory is populated exactly once per corpus version.  Every
    file entry needs a ``url`` (or the manifest a ``source_url`` base);
    a missing URL or a network failure raises :class:`ManifestError` with
    a pointer at the bundled offline corpora — the download path is an
    *optional* convenience, never a requirement.
    """
    import urllib.error
    import urllib.request

    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    for name, stamp in manifest.files.items():
        target = cache_dir / name
        if target.is_file() and sha256_file(target) == stamp.sha256:
            continue
        url = stamp.url or (
            manifest.source_url.rstrip("/") + "/" + name if manifest.source_url else None
        )
        if url is None:
            raise ManifestError(
                f"corpus {manifest.corpus!r}: no download URL for {name}; "
                f"use the bundled mini corpus or pass data_dir="
            )
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                payload = response.read()
        except (urllib.error.URLError, OSError) as error:
            raise ManifestError(
                f"corpus {manifest.corpus!r}: download of {name} from {url} failed "
                f"({error}); use the bundled mini corpus or pass data_dir="
            ) from error
        target.write_bytes(payload)
    # A serialized manifest makes the cache directory a self-contained,
    # verifiable corpus directory.
    manifest_path = cache_dir / MANIFEST_FILENAME
    manifest_path.write_text(
        json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    verify_manifest(cache_dir, manifest)
    return cache_dir
