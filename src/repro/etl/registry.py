"""Corpus registry: name → loader, resolved by the CLI and the matrix.

``load_corpus("abt-buy")`` loads the bundled offline mini corpus;
``load_corpus("abt-buy", data_dir=...)`` loads a full corpus download from
disk (same schema, same manifest verification); ``download=True`` fetches
and caches the files named by a directory's manifest.  New corpora in the
two-CSVs-plus-gold-mapping shape register with
:func:`register_corpus` — see ``docs/datasets.md`` for a walkthrough.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.datasets.base import Dataset
from repro.etl.loader import CorpusSpec, EtlError, SourceSpec, load_corpus_from_dir
from repro.etl.manifest import fetch_corpus, load_manifest

#: Bundled mini-corpus data directories, committed with the package.
_DATA_ROOT = Path(__file__).resolve().parent / "data"

_REGISTRY: Dict[str, Tuple[CorpusSpec, Optional[Path]]] = {}


def register_corpus(spec: CorpusSpec, bundled_dir: Optional[Path] = None) -> None:
    """Register a corpus spec, optionally with a bundled data directory."""
    _REGISTRY[spec.name] = (spec, Path(bundled_dir) if bundled_dir else None)


def available_corpora() -> Tuple[str, ...]:
    """Registered corpus names, in registration order."""
    return tuple(_REGISTRY)


def corpus_spec(name: str) -> CorpusSpec:
    """Return the spec registered under ``name``."""
    try:
        return _REGISTRY[name][0]
    except KeyError:
        raise EtlError(
            f"unknown corpus {name!r}; registered: {', '.join(_REGISTRY) or '(none)'}"
        ) from None


def bundled_corpus_dir(name: str) -> Path:
    """Directory of the bundled mini corpus for ``name``."""
    spec = corpus_spec(name)
    directory = _REGISTRY[spec.name][1]
    if directory is None:
        raise EtlError(f"corpus {name!r} has no bundled data; pass data_dir=")
    return directory


def load_corpus(
    name: str,
    data_dir: Optional[str] = None,
    download: bool = False,
    cache_dir: Optional[str] = None,
    verify_checksums: bool = True,
) -> Dataset:
    """Load a registered corpus as a :class:`~repro.datasets.base.Dataset`.

    Parameters
    ----------
    name:
        Registered corpus name (see :func:`available_corpora`).
    data_dir:
        Directory holding the corpus CSVs + ``manifest.json``; ``None``
        uses the bundled offline mini corpus.
    download:
        Fetch the files named by the manifest's URLs into ``cache_dir``
        (default ``~/.cache/repro/etl/<name>``) and load from there.
        Verified against the same checksums, so online and offline loads
        are byte-identical — and a clear :class:`ManifestError` (not a
        hang or a stack trace) reports offline environments.
    verify_checksums:
        Verify the manifest digests before reading (default).  Only
        disable for ad-hoc directories without a manifest.
    """
    spec = corpus_spec(name)
    if download:
        directory = Path(data_dir) if data_dir else bundled_corpus_dir(name)
        manifest = load_manifest(directory)
        cache = Path(cache_dir) if cache_dir else (
            Path.home() / ".cache" / "repro" / "etl" / spec.name
        )
        directory = fetch_corpus(manifest, cache)
    elif data_dir is not None:
        directory = Path(data_dir)
    else:
        directory = bundled_corpus_dir(name)
    return load_corpus_from_dir(spec, directory, verify_checksums=verify_checksums)


# --------------------------------------------------------------- built-ins
#: The Abt-Buy product-linkage corpus (Köpcke/Thor/Rahm benchmark shape):
#: verbose abt.com titles vs terse buy.com titles, price fields with
#: currency symbols.  The bundled mini variant is ~500 records.
ABT_BUY = CorpusSpec(
    name="abt-buy",
    sources=(
        SourceSpec(
            name="abt",
            filename="Abt.csv",
            id_column="id",
            column_map={"name": "name", "description": "description"},
            price_column="price",
        ),
        SourceSpec(
            name="buy",
            filename="Buy.csv",
            id_column="id",
            column_map={
                "name": "name",
                "description": "description",
                "manufacturer": "manufacturer",
            },
            price_column="price",
        ),
    ),
    mapping_filename="abt_buy_perfectMapping.csv",
    mapping_columns=("idAbt", "idBuy"),
    default_threshold=0.2,
    default_attributes=("name", "description"),
)

#: The Amazon-GoogleProducts corpus: retailer titles + manufacturer vs
#: aggregator titles, EU-style price strings on the Google side.
AMAZON_GOOGLE = CorpusSpec(
    name="amazon-google",
    sources=(
        SourceSpec(
            name="amazon",
            filename="Amazon.csv",
            id_column="id",
            column_map={
                "title": "name",
                "description": "description",
                "manufacturer": "manufacturer",
            },
            price_column="price",
        ),
        SourceSpec(
            name="google",
            filename="GoogleProducts.csv",
            id_column="id",
            column_map={
                "name": "name",
                "description": "description",
                "manufacturer": "manufacturer",
            },
            price_column="price",
        ),
    ),
    mapping_filename="Amzon_GoogleProducts_perfectMapping.csv",
    mapping_columns=("idAmazon", "idGoogleBase"),
    default_threshold=0.2,
    default_attributes=("name", "description", "manufacturer"),
)

register_corpus(ABT_BUY, _DATA_ROOT / "abt_buy")
register_corpus(AMAZON_GOOGLE, _DATA_ROOT / "amazon_google")
