"""Field-level parsing for the ETL layer: ids, text, prices.

Real benchmark corpora arrive with trademark glyphs, accented characters,
inch marks, currency symbols in three positions and thousands separators in
two conventions.  Everything here is pure, deterministic and
dependency-free, so a corpus loads byte-identically on every machine —
which is what makes the md5-derived record ids and the downstream
regression baselines stable.
"""

from __future__ import annotations

import hashlib
import re
import unicodedata
from typing import Optional, Tuple

from repro.records.preprocessing import normalize_text

#: Currency symbols and codes recognised by :func:`parse_price_currency`.
#: Symbols may prefix or suffix the amount; codes may appear on either side
#: in any case ("GBP 279", "279 gbp").
_CURRENCY_SYMBOLS = {
    "$": "USD",
    "£": "GBP",
    "€": "EUR",
    "¥": "JPY",
}
_CURRENCY_CODES = ("USD", "GBP", "EUR", "JPY", "CAD", "AUD", "CHF")

_NUMBER_PATTERN = re.compile(r"\d[\d.,]*")


def md5_id(*parts: object) -> str:
    """Stable md5-derived identifier from the given parts.

    ``md5_id("abt_buy", "abt", 552)`` hashes ``"abt_buy|abt|552"`` and
    returns the first 12 hex digits — stable across loads, row orders,
    processes and machines, and collision-safe at benchmark-corpus sizes
    (12 hex digits = 48 bits for a few thousand records).

    >>> md5_id("abt_buy", "abt", 552)
    'c19e04939615'
    """
    digest = hashlib.md5("|".join(str(part) for part in parts).encode("utf-8"))
    return digest.hexdigest()[:12]


def strip_accents(text: str) -> str:
    """Replace accented characters by their base form (``"café"`` → ``"cafe"``).

    NFKD-decomposes the text and drops combining marks; compatibility
    characters (``"™"``, ``"①"``, full-width forms) decompose to their
    plain equivalents along the way.
    """
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def etl_normalize(text: Optional[str]) -> str:
    """Normalise a raw corpus text value for similarity computation.

    Unicode fold (:func:`strip_accents`) first, then the paper's
    Section-7.1 preprocessing (:func:`repro.records.preprocessing.normalize_text`):
    non-alphanumeric characters become single spaces, letters are
    lower-cased, surrounding whitespace is stripped.

    >>> etl_normalize("Sony® BRAVIA – 32\\u2033 LCD, Café-Edition!")
    'sony bravia 32 lcd cafe edition'
    """
    if not text:
        return ""
    return normalize_text(strip_accents(text))


def _parse_amount(token: str) -> Optional[float]:
    """Parse one numeric token handling both separator conventions.

    ``"1,299.00"`` (US) and ``"1.299,00"`` (EU) are both thousands+decimal;
    a lone comma group like ``"12,50"`` is an EU decimal while ``"1,299"``
    is a US thousands group.
    """
    if "." in token and "," in token:
        # The *last* separator is the decimal mark; the other one groups
        # thousands.
        if token.rfind(".") > token.rfind(","):
            cleaned = token.replace(",", "")
        else:
            cleaned = token.replace(".", "").replace(",", ".")
    elif "," in token:
        head, _, tail = token.rpartition(",")
        if len(tail) == 3 and head.replace(",", "").isdigit():
            cleaned = token.replace(",", "")  # 1,299 → thousands
        else:
            cleaned = token.replace(",", ".")  # 12,50 → decimal
    else:
        cleaned = token
    try:
        return float(cleaned)
    except ValueError:
        return None


def parse_price_currency(value: object) -> Tuple[Optional[float], Optional[str]]:
    """Parse a raw price field into ``(amount, currency_code)``.

    Handles symbol prefixes/suffixes (``"$149.00"``, ``"279 €"``), ISO
    codes on either side (``"GBP 279"``, ``"1299.00 usd"``), US and EU
    separator conventions, and surrounding junk.  Anything without a
    parseable number — empty fields, ``"call for price"`` — returns
    ``(None, None)`` rather than raising, so one malformed row never sinks
    a corpus load (the loader counts these in the lineage).

    >>> parse_price_currency("$1,299.00")
    (1299.0, 'USD')
    >>> parse_price_currency("12,50 €")
    (12.5, 'EUR')
    >>> parse_price_currency("call for price")
    (None, None)
    """
    if value is None:
        return None, None
    text = str(value).strip()
    if not text:
        return None, None

    currency = None
    for symbol, code in _CURRENCY_SYMBOLS.items():
        if symbol in text:
            currency = code
            break
    if currency is None:
        upper = text.upper()
        for code in _CURRENCY_CODES:
            if re.search(rf"(?<![A-Z]){code}(?![A-Z])", upper):
                currency = code
                break

    match = _NUMBER_PATTERN.search(text)
    if match is None:
        return None, None
    amount = _parse_amount(match.group(0).rstrip(".,"))
    if amount is None:
        return None, None
    return amount, currency
