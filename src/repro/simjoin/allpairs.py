"""Naive all-pairs similarity computation.

This is the reference (exact) implementation of the machine pass: compute
the similarity of every unordered pair of records and keep those at or above
a minimum likelihood.  The smarter joins in :mod:`repro.simjoin.prefix_filter`
and the blockers must produce the same result set for the same threshold;
the test suite checks that equivalence.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.records.pairs import PairSet, RecordPair
from repro.records.record import RecordStore
from repro.similarity.record_similarity import JaccardRecordSimilarity, RecordSimilarity


def all_pairs_similarity(
    store: RecordStore,
    similarity: Optional[RecordSimilarity] = None,
    min_likelihood: float = 0.0,
    cross_sources: Optional[Tuple[str, str]] = None,
) -> PairSet:
    """Compute similarities for all pairs of records.

    Parameters
    ----------
    store:
        The table of records to resolve.
    similarity:
        Record similarity used as the likelihood; defaults to the paper's
        Jaccard-over-all-attributes simjoin.
    min_likelihood:
        Pairs strictly below this likelihood are not materialised.  Using
        ``0.0`` keeps every pair (matching Table 2's threshold-0 row).
    cross_sources:
        If given as ``(source_a, source_b)``, only pairs with one record from
        each source are considered (the Product dataset is a two-source
        record-linkage task with 1081 x 1092 candidate pairs).
    """
    similarity = similarity or JaccardRecordSimilarity()
    result = PairSet()
    if cross_sources is None:
        pair_iter = store.all_pairs()
    else:
        pair_iter = store.cross_source_pairs(*cross_sources)
    for record_a, record_b in pair_iter:
        value = similarity.similarity(record_a, record_b)
        if value >= min_likelihood:
            result.add(RecordPair(record_a.record_id, record_b.record_id, likelihood=value))
    return result
