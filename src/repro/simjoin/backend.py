"""Pluggable similarity-join backends for the machine pass.

The hybrid workflow's machine pass is a set-similarity self (or cross) join
at a likelihood threshold.  Four interchangeable engines implement it:

* ``naive`` — the reference O(n^2) all-pairs scan
  (:func:`repro.simjoin.allpairs.all_pairs_similarity`);
* ``prefix`` — the prefix-filtering join with length and positional filters
  (:class:`repro.simjoin.prefix_filter.PrefixFilterJoin`), exact for any
  positive threshold;
* ``vectorized`` — blocked sparse-matrix intersection counting
  (:class:`repro.simjoin.vectorized.VectorizedSimJoin`), the fastest
  single-core option on stores beyond a few hundred records;
* ``parallel`` — the same blocked products sharded across a process pool
  (:class:`repro.simjoin.parallel.ParallelSimJoin`), the fastest option on
  large stores with more than one core.

All engines return identical pair sets for the same store and threshold
(the property tests assert ids and likelihoods agree), so callers select
purely on performance.  ``resolve_backend`` implements the ``"auto"``
heuristic used by :class:`~repro.simjoin.likelihood.SimJoinLikelihood`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.similarity.record_similarity import JaccardRecordSimilarity
from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.parallel import ParallelSimJoin, resolve_worker_count
from repro.simjoin.prefix_filter import PrefixFilterJoin
from repro.simjoin.vectorized import HAVE_SCIPY, VectorizedSimJoin

AUTO_BACKEND = "auto"

#: Store size at which the sparse-matrix join starts beating the
#: prefix-filter join (CSR construction has a fixed cost that dominates on
#: tiny stores; past a few hundred records the matmul wins decisively).
AUTO_VECTORIZED_MIN_RECORDS = 256

#: Store size at which sharding the blocked products across a process pool
#: wins back the per-worker fork + index-serialization cost.  Below it the
#: serial vectorized engine is faster even with many idle cores.
AUTO_PARALLEL_MIN_RECORDS = 4096


class SimJoinBackend:
    """Interface: an exact set-similarity join engine."""

    name = "backend"

    def join(
        self,
        store: RecordStore,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return all pairs with Jaccard similarity >= ``threshold``."""
        raise NotImplementedError


class NaiveJoinBackend(SimJoinBackend):
    """Reference all-pairs scan; correct at any threshold, O(n^2) pairs."""

    name = "naive"

    def join(
        self,
        store: RecordStore,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        return all_pairs_similarity(
            store,
            similarity=JaccardRecordSimilarity(attributes),
            min_likelihood=threshold,
            cross_sources=cross_sources,
        )


class PrefixJoinBackend(SimJoinBackend):
    """Prefix-filtering join; needs a positive threshold to prune.

    At threshold zero every pair survives, so pruning is meaningless and the
    backend falls through to the naive scan (which is what the join would
    degenerate into anyway).
    """

    name = "prefix"

    def join(
        self,
        store: RecordStore,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        if threshold <= 0.0:
            return NaiveJoinBackend().join(store, threshold, attributes, cross_sources)
        join = PrefixFilterJoin(threshold=threshold, attributes=attributes)
        return join.join(store, cross_sources=cross_sources)


class VectorizedJoinBackend(SimJoinBackend):
    """Blocked sparse-matrix join; correct at any threshold, needs scipy."""

    name = "vectorized"

    def join(
        self,
        store: RecordStore,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        join = VectorizedSimJoin(threshold=threshold, attributes=attributes)
        return join.join(store, cross_sources=cross_sources)


class ParallelJoinBackend(SimJoinBackend):
    """Process-pool sharded sparse-matrix join; bit-identical to ``vectorized``.

    ``workers=None`` (the default) resolves to one worker per CPU core at
    join time; ``resolve_backend(..., workers=N)`` overrides it.
    ``pool_mode`` selects the reused shared pool (default) or the legacy
    fork-per-call pool — results are bit-identical either way.
    """

    name = "parallel"

    def __init__(
        self, workers: Optional[int] = None, pool_mode: Optional[str] = None
    ) -> None:
        self.workers = workers
        self.pool_mode = pool_mode

    def join(
        self,
        store: RecordStore,
        threshold: float,
        attributes: Optional[Sequence[str]] = None,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        join = ParallelSimJoin(
            threshold=threshold, attributes=attributes, workers=self.workers,
            pool_mode=self.pool_mode,
        )
        return join.join(store, cross_sources=cross_sources)


_REGISTRY: Dict[str, Callable[[], SimJoinBackend]] = {}


def register_backend(name: str, factory: Callable[[], SimJoinBackend]) -> None:
    """Register a join backend under ``name`` (overwrites any previous one)."""
    if not name or name == AUTO_BACKEND:
        raise ValueError(f"invalid backend name {name!r}")
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    """Names of all registered backends, in registration order."""
    return list(_REGISTRY)


def get_backend(name: str) -> SimJoinBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown join backend {name!r}; available: {available_backends()}"
        ) from None
    return factory()


def auto_backend_name(
    record_count: int, threshold: float, workers: Optional[int] = None
) -> str:
    """The ``"auto"`` heuristic: pick a backend from store size and threshold.

    Very large stores with more than one effective worker go to the sharded
    parallel engine; large stores to the (serial) vectorized engine (when
    scipy is importable); small stores with a positive threshold use the
    prefix filter, whose inverted index beats matrix construction there;
    everything else falls back to the naive scan.

    ``workers=None`` means "one per CPU core", so on a single-core host the
    parallel engine is never auto-selected.
    """
    if HAVE_SCIPY and record_count >= AUTO_PARALLEL_MIN_RECORDS:
        if resolve_worker_count(workers) > 1:
            return "parallel"
    if HAVE_SCIPY and record_count >= AUTO_VECTORIZED_MIN_RECORDS:
        return "vectorized"
    if threshold > 0.0:
        return "prefix"
    return "naive"


def resolve_backend(
    name: str = AUTO_BACKEND,
    record_count: int = 0,
    threshold: float = 0.0,
    workers: Optional[int] = None,
    pool_mode: Optional[str] = None,
) -> SimJoinBackend:
    """Return the backend for ``name``, applying the auto heuristic.

    ``workers`` feeds both the auto heuristic and, for backends that take a
    worker count (the parallel engine or registered custom backends with a
    ``workers`` attribute), the engine configuration.  ``pool_mode`` is
    forwarded the same way to backends that expose one (the parallel
    engine's reused-vs-fork pool selection).
    """
    if name == AUTO_BACKEND:
        name = auto_backend_name(record_count, threshold, workers)
    engine = get_backend(name)
    if workers is not None and hasattr(engine, "workers"):
        engine.workers = workers
    if pool_mode is not None and hasattr(engine, "pool_mode"):
        engine.pool_mode = pool_mode
    return engine


register_backend(NaiveJoinBackend.name, NaiveJoinBackend)
register_backend(PrefixJoinBackend.name, PrefixJoinBackend)
register_backend(VectorizedJoinBackend.name, VectorizedJoinBackend)
register_backend(ParallelJoinBackend.name, ParallelJoinBackend)
