"""Process-pool sharded similarity join: the ``parallel`` backend.

:class:`repro.simjoin.vectorized.VectorizedSimJoin` computes the machine
pass through blocked sparse products ``X[block] @ X.T`` — exact, but single
core.  :class:`ParallelSimJoin` splits the CSR *row blocks* across a pool of
worker processes:

1. the parent builds the token-incidence matrix once (columnar build),
2. the serialized index is shipped **once per worker** through the pool
   initializer (CSR ``data``/``indices``/``indptr`` arrays, not records),
3. each worker runs the *same* per-block code
   (``VectorizedSimJoin._self_range_blocks`` / ``_bipartite_range_blocks``)
   over a disjoint contiguous range of row positions,
4. the parent merges the per-shard pair deltas in deterministic shard order
   (``Pool.map`` preserves submission order).

**Equivalence guarantee.**  Every similarity value is an elementwise
float64 expression of one pair's intersection count and the two set sizes;
neither block boundaries nor shard boundaries enter the arithmetic.  For
any worker count the pair set and every likelihood are therefore
*bit-identical* to the serial vectorized join — asserted exactly (``==``,
not approximately) by the property tests in ``tests/test_parallel_join.py``.

The pool costs one fork + one index serialization per worker, so tiny
stores are faster on the serial engine; the ``auto`` heuristic in
:mod:`repro.simjoin.backend` only picks ``parallel`` above
``AUTO_PARALLEL_MIN_RECORDS`` and with more than one effective worker.

**Pool modes.**  Under the default ``pool_mode="reused"`` shards run on a
long-lived process pool (:func:`repro.simjoin.pool.shared_pool`) that
survives across calls — and therefore across streaming batches — with the
index published once per call into a shared-memory block every worker maps
zero-copy (:class:`repro.simjoin.pool.SharedArrayBlock`), instead of being
pickled to each worker.  ``pool_mode="fork"`` keeps the legacy
fork-per-call pool with per-worker initializer payloads; both modes run
the identical per-block code, so results are bit-identical — the reuse
speedup is gated by ``benchmarks/bench_service.py``.

:func:`score_new_vs_old_block` and :func:`parallel_new_vs_old_blocks` expose
the same machinery for the streaming engine's per-batch new-vs-old product
(:class:`repro.streaming.incremental_join.IncrementalSimJoin`).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.simjoin.pool import (
    SharedArrayBlock,
    attach_block,
    resolve_pool_mode,
    shared_pool,
)
from repro.simjoin.vectorized import HAVE_SCIPY, VectorizedSimJoin, _BlockPairs

if HAVE_SCIPY:
    from scipy import sparse
else:  # pragma: no cover - scipy is part of the image
    sparse = None

#: Rows per shard are chosen so each worker gets several shards to balance
#: the upper-triangle skew (later self-join rows have fewer candidate cols).
SHARDS_PER_WORKER = 4

# Serialized CSR matrix: (data, indices, indptr, shape).
_CsrPayload = Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]

# Per-process shard state, installed once by the pool initializer.
_SHARD_STATE: dict = {}


def default_worker_count() -> int:
    """Worker count used when none is configured: one per available core."""
    return max(1, os.cpu_count() or 1)


def resolve_worker_count(workers: Optional[int]) -> int:
    """Resolve a configured worker count: ``None``/``0`` = one per core.

    The single place the default-resolution rule lives — the engines and
    the ``auto`` backend heuristic must agree on the effective count.
    """
    if workers:
        return workers
    return default_worker_count()


def _fork_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, Linux default); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _csr_payload(matrix: "sparse.csr_matrix") -> _CsrPayload:
    return (matrix.data, matrix.indices, matrix.indptr, matrix.shape)


def _csr_from_payload(payload: _CsrPayload) -> "sparse.csr_matrix":
    data, indices, indptr, shape = payload
    return sparse.csr_matrix((data, indices, indptr), shape=shape)


def shard_bounds(count: int, workers: int, block_size: int) -> List[Tuple[int, int]]:
    """Contiguous [start, stop) row-position shards covering ``count`` rows.

    Aims for ``SHARDS_PER_WORKER`` shards per worker (dynamic pool
    scheduling then load-balances the triangle skew) but never slices finer
    than one matmul block, so a shard is never trivially small.
    """
    if count <= 0:
        return []
    shard_count = max(1, min(workers * SHARDS_PER_WORKER, math.ceil(count / block_size)))
    edges = np.linspace(0, count, shard_count + 1).astype(np.int64)
    return [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(shard_count)
        if edges[i] < edges[i + 1]
    ]


def _concat_blocks(parts: List[_BlockPairs]) -> _BlockPairs:
    """Merge a shard's blocks into one (rows, cols, values) triple."""
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    return (
        np.concatenate([rows for rows, _, _ in parts]),
        np.concatenate([cols for _, cols, _ in parts]),
        np.concatenate([values for _, _, values in parts]),
    )


# ----------------------------------------------------------- worker side
def _init_self_shard(payload: dict) -> None:
    """Install the self-join state in this worker (runs once per worker)."""
    sub = _csr_from_payload(payload["sub"])
    _SHARD_STATE.clear()
    _SHARD_STATE.update(
        join=VectorizedSimJoin(
            threshold=payload["threshold"],
            measure=payload["measure"],
            block_size=payload["block_size"],
        ),
        sub=sub,
        sub_t=sub.T.tocsr(),
        sub_sizes=payload["sub_sizes"],
        keep=payload["keep"],
    )


def _run_self_shard(state: dict, bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    # Shard timing is measured inside the worker (the forked copy of the
    # obs runtime is inert, so a plain perf_counter pair travels back with
    # the result and the parent records it).
    started = time.perf_counter()
    start, stop = bounds
    blocks = _concat_blocks(
        list(
            state["join"]._self_range_blocks(
                state["sub"], state["sub_t"], state["sub_sizes"],
                state["keep"], start, stop,
            )
        )
    )
    return blocks, time.perf_counter() - started, os.getpid()


def _self_shard(bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    return _run_self_shard(_SHARD_STATE, bounds)


def _init_bipartite_shard(payload: dict) -> None:
    """Install the bipartite-join state in this worker."""
    _SHARD_STATE.clear()
    _SHARD_STATE.update(
        join=VectorizedSimJoin(
            threshold=payload["threshold"],
            measure=payload["measure"],
            block_size=payload["block_size"],
        ),
        left_matrix=_csr_from_payload(payload["left"]),
        right_t=_csr_from_payload(payload["right"]).T.tocsr(),
        left_sizes=payload["left_sizes"],
        right_sizes=payload["right_sizes"],
        left_index=payload["left_index"],
        right_index=payload["right_index"],
    )


def _run_bipartite_shard(state: dict, bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    started = time.perf_counter()
    start, stop = bounds
    blocks = _concat_blocks(
        list(
            state["join"]._bipartite_range_blocks(
                state["left_matrix"], state["right_t"],
                state["left_sizes"], state["right_sizes"],
                state["left_index"], state["right_index"],
                start, stop,
            )
        )
    )
    return blocks, time.perf_counter() - started, os.getpid()


def _bipartite_shard(bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    return _run_bipartite_shard(_SHARD_STATE, bounds)


def _init_new_vs_old(payload: dict) -> None:
    """Install the streaming new-vs-old state in this worker."""
    _SHARD_STATE.clear()
    _SHARD_STATE.update(
        new_matrix=_csr_from_payload(payload["new"]),
        old_t=_csr_from_payload(payload["old"]).T.tocsr(),
        new_sizes=payload["new_sizes"],
        old_sizes=payload["old_sizes"],
        threshold=payload["threshold"],
        block_size=payload["block_size"],
    )


def _run_new_vs_old_shard(state: dict, bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    started = time.perf_counter()
    start, stop = bounds
    parts = [
        score_new_vs_old_block(
            state["new_matrix"], state["old_t"],
            state["new_sizes"], state["old_sizes"],
            block_start, min(block_start + state["block_size"], stop),
            state["threshold"],
        )
        for block_start in range(start, stop, state["block_size"])
    ]
    return _concat_blocks(parts), time.perf_counter() - started, os.getpid()


def _new_vs_old_shard(bounds: Tuple[int, int]) -> Tuple[_BlockPairs, float, int]:
    return _run_new_vs_old_shard(_SHARD_STATE, bounds)


def score_new_vs_old_block(
    new_matrix: "sparse.csr_matrix",
    old_t: "sparse.csr_matrix",
    new_sizes: np.ndarray,
    old_sizes: np.ndarray,
    start: int,
    end: int,
    threshold: float,
) -> _BlockPairs:
    """One blocked row range of the streaming new-vs-old Jaccard product.

    Shared by the serial and sharded incremental paths so both produce
    bit-identical likelihoods (same float64 expression, per pair).
    """
    inter_block = (new_matrix[start:end] @ old_t).tocoo()
    rows = inter_block.row.astype(np.int64) + start
    cols = inter_block.col.astype(np.int64)
    inter = inter_block.data.astype(np.float64)
    sizes_a = new_sizes[rows].astype(np.float64)
    sizes_b = old_sizes[cols].astype(np.float64)
    values = inter / (sizes_a + sizes_b - inter)
    passing = values >= threshold
    return rows[passing], cols[passing], values[passing]


# ------------------------------------------------- reused-pool shard path
# The legacy path ships each kind's payload through the pool initializer
# (pickled once per worker, per call).  The reused path publishes the
# arrays once into a shared-memory block and sends only the tiny
# descriptor + scalars with each task; workers attach zero-copy and cache
# the derived state (csr matrices, transposes) per block token.

#: Payload keys holding CSR triples, per kind: payload key -> array prefix.
_CSR_KEYS = {
    "self": {"sub": "sub"},
    "bipartite": {"left": "left", "right": "right"},
    "new_vs_old": {"new": "new", "old": "old"},
}

#: Payload keys holding plain arrays, per kind.
_ARRAY_KEYS = {
    "self": ("sub_sizes", "keep"),
    "bipartite": ("left_sizes", "right_sizes", "left_index", "right_index"),
    "new_vs_old": ("new_sizes", "old_sizes"),
}

#: Payload keys holding scalars, per kind (travel with every task).
_SCALAR_KEYS = {
    "self": ("threshold", "measure", "block_size"),
    "bipartite": ("threshold", "measure", "block_size"),
    "new_vs_old": ("threshold", "block_size"),
}


def _publish_payload(kind: str, payload: dict) -> Tuple[SharedArrayBlock, dict]:
    """Split a legacy initializer payload into (shared block, scalar params)."""
    arrays: dict = {}
    params = {name: payload[name] for name in _SCALAR_KEYS[kind]}
    for key, prefix in _CSR_KEYS[kind].items():
        data, indices, indptr, shape = payload[key]
        arrays[f"{prefix}_data"] = data
        arrays[f"{prefix}_indices"] = indices
        arrays[f"{prefix}_indptr"] = indptr
        params[f"{prefix}_shape"] = tuple(shape)
    for name in _ARRAY_KEYS[kind]:
        arrays[name] = np.asarray(payload[name])
    return SharedArrayBlock.create(arrays), params


def _attached_csr(arrays: dict, params: dict, prefix: str) -> "sparse.csr_matrix":
    return sparse.csr_matrix(
        (
            arrays[f"{prefix}_data"],
            arrays[f"{prefix}_indices"],
            arrays[f"{prefix}_indptr"],
        ),
        shape=params[f"{prefix}_shape"],
    )


def _build_pooled_state(kind: str, descriptor: dict, params: dict) -> dict:
    """Reconstruct the shard state a legacy initializer would have built."""
    arrays = attach_block(descriptor)
    if kind == "self":
        sub = _attached_csr(arrays, params, "sub")
        return dict(
            join=VectorizedSimJoin(
                threshold=params["threshold"],
                measure=params["measure"],
                block_size=params["block_size"],
            ),
            sub=sub,
            sub_t=sub.T.tocsr(),
            sub_sizes=arrays["sub_sizes"],
            keep=arrays["keep"],
        )
    if kind == "bipartite":
        return dict(
            join=VectorizedSimJoin(
                threshold=params["threshold"],
                measure=params["measure"],
                block_size=params["block_size"],
            ),
            left_matrix=_attached_csr(arrays, params, "left"),
            right_t=_attached_csr(arrays, params, "right").T.tocsr(),
            left_sizes=arrays["left_sizes"],
            right_sizes=arrays["right_sizes"],
            left_index=arrays["left_index"],
            right_index=arrays["right_index"],
        )
    if kind == "new_vs_old":
        return dict(
            new_matrix=_attached_csr(arrays, params, "new"),
            old_t=_attached_csr(arrays, params, "old").T.tocsr(),
            new_sizes=arrays["new_sizes"],
            old_sizes=arrays["old_sizes"],
            threshold=params["threshold"],
            block_size=params["block_size"],
        )
    raise ValueError(f"unknown pooled shard kind {kind!r}")


_RUNNERS = {
    "self": _run_self_shard,
    "bipartite": _run_bipartite_shard,
    "new_vs_old": _run_new_vs_old_shard,
}

# Worker-side derived-state cache, keyed by block token (one kind per
# block).  Insertion-ordered; bounded like the attachment cache.
_POOLED_STATE: dict = {}


def _pooled_shard(task) -> Tuple[_BlockPairs, float, int]:
    """One shard task on the reused pool: attach, build-or-reuse state, run."""
    kind, descriptor, params, bounds = task
    token = descriptor["token"]
    state = _POOLED_STATE.get(token)
    if state is None:
        while len(_POOLED_STATE) >= 4:
            _POOLED_STATE.pop(next(iter(_POOLED_STATE)))
        state = _build_pooled_state(kind, descriptor, params)
        _POOLED_STATE[token] = state
    return _RUNNERS[kind](state, bounds)


def _map_shards(
    initializer,
    payload: dict,
    worker,
    bounds,
    workers: int,
    kind: str = "",
    pool_mode: Optional[str] = None,
):
    """Run shard tasks over a pool; results come back in shard order.

    ``pool_mode="reused"`` (the resolved default) executes on the
    long-lived shared pool with the index in shared memory;
    ``pool_mode="fork"`` forks a fresh pool and ships the payload through
    its initializer (the legacy baseline).  Both run the identical
    per-block code, so the outcome blocks are bit-identical.

    Each worker reports its shard's compute seconds and PID alongside the
    pair blocks; the parent folds those per-worker timings into the obs
    registry (workers cannot — their forked runtime copy is inert).
    """
    mode = resolve_pool_mode(pool_mode)
    processes = min(workers, len(bounds))
    with obs.span(
        "simjoin.parallel.map",
        kind=kind, shards=len(bounds), workers=processes, pool=mode,
    ):
        if mode == "reused":
            pool = shared_pool(workers)
            block, params = _publish_payload(kind, payload)
            try:
                outcomes = pool.map(
                    _pooled_shard,
                    [(kind, block.descriptor, params, b) for b in bounds],
                )
            finally:
                # Workers keep their mappings; the file can go right away.
                block.unlink()
        else:
            context = _fork_context()
            with context.Pool(
                processes=processes, initializer=initializer, initargs=(payload,)
            ) as fork_pool:
                # chunksize=1: shards are coarse already, and dynamic
                # hand-out balances the self-join triangle skew.
                outcomes = fork_pool.map(worker, bounds, chunksize=1)
    if obs.enabled():
        for blocks, seconds, pid in outcomes:
            obs.inc("simjoin_parallel_shards_total", 1, kind=kind,
                    help="Row shards processed by the parallel join pool.")
            obs.observe("simjoin_parallel_shard_seconds", seconds,
                        kind=kind, worker=pid,
                        help="Per-worker compute seconds of one row shard.")
    return [blocks for blocks, _, _ in outcomes]


def parallel_new_vs_old_blocks(
    new_matrix: "sparse.csr_matrix",
    old_matrix: "sparse.csr_matrix",
    new_sizes: np.ndarray,
    old_sizes: np.ndarray,
    threshold: float,
    workers: int,
    block_size: int,
    pool_mode: Optional[str] = None,
) -> Iterator[_BlockPairs]:
    """Shard the streaming new-vs-old product across worker processes.

    Yields (new row, old row, value) blocks in deterministic shard order;
    the union over shards is exactly the serial blocked product.
    """
    bounds = shard_bounds(new_matrix.shape[0], workers, block_size)
    if not bounds:
        return
    payload = dict(
        new=_csr_payload(new_matrix),
        old=_csr_payload(old_matrix),
        new_sizes=new_sizes,
        old_sizes=old_sizes,
        threshold=threshold,
        block_size=block_size,
    )
    yield from _map_shards(
        _init_new_vs_old, payload, _new_vs_old_shard, bounds, workers,
        kind="new_vs_old", pool_mode=pool_mode,
    )


# ----------------------------------------------------------- parent side
class ParallelSimJoin(VectorizedSimJoin):
    """Sharded multi-process variant of :class:`VectorizedSimJoin`.

    Parameters are those of the serial engine plus ``workers``:

    workers:
        Number of worker processes.  ``None`` or ``0`` means one per
        available CPU core; ``1`` degenerates to the serial engine (no pool
        is created).  Any value is legal — more workers than shards simply
        leaves the extra workers idle.
    pool_mode:
        ``"reused"`` (default) runs shards on the long-lived shared pool
        with the index in shared memory; ``"fork"`` forks a fresh pool per
        call (legacy baseline).  Results are bit-identical either way.
    """

    def __init__(
        self,
        threshold: float = 0.0,
        attributes: Optional[Sequence[str]] = None,
        measure: str = "jaccard",
        block_size: int = 1024,
        workers: Optional[int] = None,
        pool_mode: Optional[str] = None,
    ) -> None:
        super().__init__(
            threshold=threshold,
            attributes=attributes,
            measure=measure,
            block_size=block_size,
        )
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative (0/None = auto)")
        self.workers = workers
        self.pool_mode = resolve_pool_mode(pool_mode)

    def effective_workers(self) -> int:
        """The concrete worker count (resolving the ``None``/``0`` default)."""
        return resolve_worker_count(self.workers)

    def _pair_blocks(
        self, matrix: "sparse.csr_matrix", sizes: np.ndarray, plan
    ) -> Iterator[_BlockPairs]:
        workers = self.effective_workers()
        kind, first, second = plan
        row_count = first.size
        bounds = shard_bounds(row_count, workers, self.block_size)
        if workers <= 1 or len(bounds) <= 1:
            # One shard (or one worker) cannot win back the pool cost;
            # the serial path is bit-identical by construction.
            yield from super()._pair_blocks(matrix, sizes, plan)
            return
        if kind == "bipartite":
            if second.size > 0:
                payload = dict(
                    threshold=self.threshold,
                    measure=self.measure,
                    block_size=self.block_size,
                    left=_csr_payload(matrix[first]),
                    right=_csr_payload(matrix[second]),
                    left_sizes=sizes[first],
                    right_sizes=sizes[second],
                    left_index=first,
                    right_index=second,
                )
                yield from _map_shards(
                    _init_bipartite_shard, payload, _bipartite_shard, bounds,
                    workers, kind="bipartite", pool_mode=self.pool_mode,
                )
        elif row_count >= 2:
            sub = matrix[first]
            payload = dict(
                threshold=self.threshold,
                measure=self.measure,
                block_size=self.block_size,
                sub=_csr_payload(sub),
                sub_sizes=sizes[first],
                keep=first,
            )
            yield from _map_shards(
                _init_self_shard, payload, _self_shard, bounds, workers,
                kind="self", pool_mode=self.pool_mode,
            )
        if self.threshold > 0.0:
            yield from self._empty_pair_blocks(sizes, plan)


def parallel_similarity_join(
    store: RecordStore,
    threshold: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
    cross_sources: Optional[Tuple[str, str]] = None,
    measure: str = "jaccard",
    workers: Optional[int] = None,
    pool_mode: Optional[str] = None,
) -> PairSet:
    """Functional convenience wrapper around :class:`ParallelSimJoin`."""
    join = ParallelSimJoin(
        threshold=threshold, attributes=attributes, measure=measure,
        workers=workers, pool_mode=pool_mode,
    )
    return join.join(store, cross_sources=cross_sources)
