"""Long-lived shard pools and shared-memory array blocks.

The original ``parallel`` backend forked a fresh process pool for every
join call and shipped the serialized CSR index to each worker through the
pool initializer — one fork *plus one full index copy per worker, per
batch*.  Acceptable for one-shot joins, ruinous for a streaming session
(or a server hosting many of them) where every arriving batch re-pays the
whole setup.

This module provides the two pieces that remove that per-batch cost:

* :class:`ShardPool` — a process pool created **once** and reused across
  batches (and across sessions: pools are process-global singletons keyed
  by worker count, see :func:`shared_pool`).  Workers stay alive between
  calls, so a batch costs task dispatch, not ``fork()``.
* :class:`SharedArrayBlock` — a set of numpy arrays published **once** into
  a shared-memory file (``/dev/shm`` when available, so the bytes live in
  page cache, never on disk) that every worker maps read-only and
  zero-copy via ``np.memmap``.  Publishing is one memcpy total instead of
  one pickle round-trip *per worker*; workers cache their mappings by
  block token, so repeated shards of the same batch attach for free.

Lifecycle: the parent unlinks a block's file as soon as the shards that
use it have completed — the workers' open mappings keep the pages alive
(standard POSIX unlink semantics), and each worker evicts stale cache
entries the next time it attaches a newer block.  Pools are torn down by
:func:`shutdown_pools` (registered ``atexit``; the service calls it during
graceful shutdown) and are recreated transparently if the process forks or
a worker dies.

The shard *task* functions that run on these pools live in
:mod:`repro.simjoin.parallel`; this module is deliberately generic (blocks
of named arrays in, ``Pool.map`` out).
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing
import os
import tempfile
import uuid
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

logger = logging.getLogger(__name__)

#: Pool modes: ``"reused"`` = the long-lived singleton pool plus
#: shared-memory blocks (the default); ``"fork"`` = the legacy
#: fork-per-call pool with per-worker initializer payloads (kept as the
#: benchmark baseline and as an escape hatch).
POOL_MODES = ("reused", "fork")

#: Process-global default applied when an engine is built without an
#: explicit ``pool_mode`` (see :func:`resolve_pool_mode`).
DEFAULT_POOL_MODE = "reused"

#: Worker-side cap on cached block attachments.  One block per join kind
#: is live at a time, so a handful covers every interleaving; the cache
#: only has to stop unbounded growth over a long-lived worker.
WORKER_CACHE_BLOCKS = 4

_BYTE_ALIGNMENT = 64


def resolve_pool_mode(pool_mode: Optional[str]) -> str:
    """Resolve ``None`` to the process default; validate explicit modes."""
    if pool_mode is None:
        return DEFAULT_POOL_MODE
    if pool_mode not in POOL_MODES:
        raise ValueError(f"pool_mode must be one of {POOL_MODES}, got {pool_mode!r}")
    return pool_mode


def shared_block_dir() -> str:
    """Directory backing shared blocks: tmpfs when the platform has one."""
    shm = "/dev/shm"
    if os.path.isdir(shm) and os.access(shm, os.W_OK):
        return shm
    return tempfile.gettempdir()


def _aligned(offset: int) -> int:
    remainder = offset % _BYTE_ALIGNMENT
    return offset if remainder == 0 else offset + (_BYTE_ALIGNMENT - remainder)


class SharedArrayBlock:
    """Named numpy arrays published once into one shared-memory file.

    The parent builds a block from a dict of arrays, hands its
    :attr:`descriptor` (a small JSON-ish dict) to the shard tasks, and
    calls :meth:`unlink` when the consuming shards are done.  Workers call
    :func:`attach_block` with the descriptor and get zero-copy read-only
    views.
    """

    def __init__(self, path: str, token: str, layout: Dict[str, Tuple[str, Tuple[int, ...], int]]) -> None:
        self.path = path
        self.token = token
        self._layout = layout

    @classmethod
    def create(
        cls, arrays: Dict[str, np.ndarray], directory: Optional[str] = None
    ) -> "SharedArrayBlock":
        """Write ``arrays`` into a fresh shared-memory file (one memcpy)."""
        token = uuid.uuid4().hex
        path = os.path.join(directory or shared_block_dir(), f"repro-shard-{token}.bin")
        layout: Dict[str, Tuple[str, Tuple[int, ...], int]] = {}
        offset = 0
        contiguous: Dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            offset = _aligned(offset)
            layout[name] = (array.dtype.str, tuple(array.shape), offset)
            offset += array.nbytes
        with open(path, "wb") as handle:
            position = 0
            for name, array in contiguous.items():
                _, _, start = layout[name]
                if start > position:
                    handle.write(b"\x00" * (start - position))
                    position = start
                if array.nbytes:
                    # One copy total: straight from the array's buffer into
                    # the page cache (tmpfs => this IS the shared memory).
                    handle.write(array.data)
                    position += array.nbytes
            if position == 0:
                handle.write(b"\x00")
        return cls(path, token, layout)

    @property
    def descriptor(self) -> Dict[str, object]:
        """Picklable handle a worker needs to attach the block."""
        return {
            "path": self.path,
            "token": self.token,
            "layout": {
                name: [dtype, list(shape), offset]
                for name, (dtype, shape, offset) in self._layout.items()
            },
        }

    def unlink(self) -> None:
        """Remove the backing file; existing worker mappings stay valid."""
        try:
            os.unlink(self.path)
        except OSError:  # pragma: no cover - already gone
            pass


# Worker-side attachment cache: token -> dict of arrays.  Insertion order
# doubles as recency (a block is attached once and then only looked up).
_ATTACHED: Dict[str, Dict[str, np.ndarray]] = {}


def attach_block(descriptor: Dict[str, object]) -> Dict[str, np.ndarray]:
    """Map a published block read-only; cached per token inside a worker."""
    token = descriptor["token"]
    cached = _ATTACHED.get(token)
    if cached is not None:
        return cached
    while len(_ATTACHED) >= WORKER_CACHE_BLOCKS:
        _ATTACHED.pop(next(iter(_ATTACHED)))
    arrays: Dict[str, np.ndarray] = {}
    path = descriptor["path"]
    for name, (dtype, shape, offset) in dict(descriptor["layout"]).items():
        shape = tuple(shape)
        count = int(np.prod(shape)) if shape else 1
        if count == 0:
            arrays[name] = np.empty(shape, dtype=np.dtype(dtype))
        else:
            arrays[name] = np.memmap(
                path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=shape
            )
    _ATTACHED[token] = arrays
    return arrays


def _fork_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, Linux default); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardPool:
    """A long-lived process pool executing shard tasks across batches.

    Thin wrapper over ``multiprocessing.Pool`` that exposes worker PIDs
    (the pool-reuse regression test pins their stability across batches)
    and liveness, so the singleton registry can replace a pool whose
    workers died.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self._created_pid = os.getpid()
        self._pool = _fork_context().Pool(processes=workers)

    def map(self, func: Callable, items: Sequence) -> List:
        """Run ``func`` over ``items``; results come back in item order."""
        # chunksize=1: shards are coarse already, and dynamic hand-out
        # balances the self-join triangle skew across workers.
        return self._pool.map(func, items, chunksize=1)

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes."""
        return [process.pid for process in self._pool._pool]

    def healthy(self) -> bool:
        """True while this process owns the pool and every worker is alive."""
        if os.getpid() != self._created_pid:
            return False
        processes = self._pool._pool
        return bool(processes) and all(p.is_alive() for p in processes)

    def close(self) -> None:
        """Terminate the workers (idempotent)."""
        self._pool.terminate()
        self._pool.join()


# Process-global pool registry, keyed by worker count.
_POOLS: Dict[int, ShardPool] = {}


def shared_pool(workers: int) -> ShardPool:
    """The process-wide reused pool for ``workers`` (created on first use).

    A registered pool that turned unhealthy — the process forked, or a
    worker was killed — is dropped and rebuilt transparently.
    """
    pool = _POOLS.get(workers)
    if pool is not None and pool.healthy():
        return pool
    if pool is not None:
        if pool._created_pid == os.getpid():
            pool.close()
        _POOLS.pop(workers, None)
        logger.debug("replacing unhealthy shard pool (workers=%d)", workers)
    pool = ShardPool(workers)
    _POOLS[workers] = pool
    return pool


def active_pools() -> Dict[int, ShardPool]:
    """The currently registered pools (inspection/testing)."""
    return dict(_POOLS)


def shutdown_pools() -> None:
    """Terminate every registered pool (idempotent; registered atexit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        if pool._created_pid == os.getpid():
            pool.close()


atexit.register(shutdown_pools)
