"""Likelihood estimation: the machine pass of the hybrid workflow.

A :class:`LikelihoodEstimator` turns a record store into a scored
:class:`~repro.records.pairs.PairSet`.  :class:`SimJoinLikelihood` is the
estimator the paper evaluates ("simjoin"): Jaccard similarity over pooled
token sets, computed either naively (all pairs) or through a prefix-filter
join / blocker when a positive pruning threshold is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.similarity.record_similarity import JaccardRecordSimilarity, RecordSimilarity
from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.prefix_filter import PrefixFilterJoin


class LikelihoodEstimator:
    """Interface: estimate match likelihoods for candidate pairs."""

    name = "likelihood"

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return scored pairs with likelihood >= ``min_likelihood``."""
        raise NotImplementedError


@dataclass
class SimJoinLikelihood(LikelihoodEstimator):
    """The paper's simjoin likelihood: Jaccard over pooled record tokens.

    Parameters
    ----------
    attributes:
        Attributes pooled into the token set (``None`` = all attributes).
    use_prefix_filter:
        When True and the requested threshold is positive, use the
        prefix-filtering join instead of the naive all-pairs scan.  Both
        produce exactly the same pair set; the filter is just faster on
        larger stores.
    """

    attributes: Optional[Sequence[str]] = None
    use_prefix_filter: bool = True
    name: str = "simjoin"

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        if min_likelihood > 0.0 and self.use_prefix_filter:
            join = PrefixFilterJoin(threshold=min_likelihood, attributes=self.attributes)
            return join.join(store, cross_sources=cross_sources)
        similarity: RecordSimilarity = JaccardRecordSimilarity(self.attributes)
        return all_pairs_similarity(
            store,
            similarity=similarity,
            min_likelihood=min_likelihood,
            cross_sources=cross_sources,
        )


@dataclass
class CustomLikelihood(LikelihoodEstimator):
    """Adapter running any :class:`RecordSimilarity` as a likelihood estimator."""

    similarity: RecordSimilarity = None  # type: ignore[assignment]
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.similarity is None:
            raise ValueError("a RecordSimilarity instance is required")

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        return all_pairs_similarity(
            store,
            similarity=self.similarity,
            min_likelihood=min_likelihood,
            cross_sources=cross_sources,
        )
