"""Likelihood estimation: the machine pass of the hybrid workflow.

A :class:`LikelihoodEstimator` turns a record store into a scored
:class:`~repro.records.pairs.PairSet`.  :class:`SimJoinLikelihood` is the
estimator the paper evaluates ("simjoin"): Jaccard similarity over pooled
token sets, computed by one of the interchangeable join backends of
:mod:`repro.simjoin.backend` (naive all-pairs scan, prefix-filtering join,
or blocked sparse-matrix join), all of which return identical pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro import obs
from repro.records.pairs import PairSet
from repro.records.record import RecordStore
from repro.similarity.record_similarity import RecordSimilarity
from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.backend import AUTO_BACKEND, resolve_backend


class LikelihoodEstimator:
    """Interface: estimate match likelihoods for candidate pairs."""

    name = "likelihood"

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return scored pairs with likelihood >= ``min_likelihood``."""
        raise NotImplementedError


@dataclass
class SimJoinLikelihood(LikelihoodEstimator):
    """The paper's simjoin likelihood: Jaccard over pooled record tokens.

    Parameters
    ----------
    attributes:
        Attributes pooled into the token set (``None`` = all attributes).
    use_prefix_filter:
        Legacy switch kept for backwards compatibility: setting it to False
        (with ``backend="auto"``) forces the naive all-pairs scan, which is
        what it always meant.
    backend:
        Join backend name (see :func:`repro.simjoin.backend.available_backends`)
        or ``"auto"`` to pick one from the store size and threshold.  Every
        backend produces exactly the same pair set; the choice only affects
        speed.
    workers:
        Worker-process count for the sharded ``parallel`` backend (and the
        auto heuristic that may select it).  ``None`` = one per CPU core;
        irrelevant to the serial backends.
    pool_mode:
        Pool strategy for the ``parallel`` backend: ``None`` = the process
        default (``"reused"``, the long-lived shared pool), ``"fork"`` =
        the legacy fork-per-call pool.  Irrelevant to the serial backends.
    """

    attributes: Optional[Sequence[str]] = None
    use_prefix_filter: bool = True
    backend: str = AUTO_BACKEND
    workers: Optional[int] = None
    pool_mode: Optional[str] = None
    name: str = "simjoin"

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        backend_name = self.backend
        if backend_name == AUTO_BACKEND and not self.use_prefix_filter:
            backend_name = "naive"
        engine = resolve_backend(
            backend_name,
            record_count=len(store),
            threshold=min_likelihood,
            workers=self.workers,
            pool_mode=self.pool_mode,
        )
        resolved = type(engine).__name__
        with obs.span("simjoin.estimate", backend=resolved, records=len(store)):
            pairs = engine.join(
                store,
                min_likelihood,
                attributes=self.attributes,
                cross_sources=cross_sources,
            )
        if obs.enabled():
            obs.inc("simjoin_candidates_total", len(pairs), backend=resolved,
                    help="Candidate pairs at or above the likelihood threshold.")
        # The engines discover identical pairs in different orders, and
        # PairSet insertion order feeds downstream tie-breaking (cluster-HIT
        # grouping of equal-likelihood pairs).  Canonicalize so resolution
        # results are backend-independent.
        return PairSet(
            sorted(pairs, key=lambda pair: (-(pair.likelihood or 0.0), pair.key))
        )


@dataclass
class CustomLikelihood(LikelihoodEstimator):
    """Adapter running any :class:`RecordSimilarity` as a likelihood estimator."""

    similarity: RecordSimilarity = None  # type: ignore[assignment]
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.similarity is None:
            raise ValueError("a RecordSimilarity instance is required")

    def estimate(
        self,
        store: RecordStore,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        return all_pairs_similarity(
            store,
            similarity=self.similarity,
            min_likelihood=min_likelihood,
            cross_sources=cross_sources,
        )
