"""Prefix-filtering similarity join for Jaccard thresholds.

A faithful, from-scratch implementation of the prefix-filtering principle
used by AllPairs/PPJoin-style similarity joins ([2], [26] in the paper):
for a Jaccard threshold ``t``, two token sets can only reach similarity ``t``
if their (global-frequency-ordered) prefixes share at least one token.
Candidates found through the prefix inverted index are then verified
exactly, so the join returns exactly the pairs whose Jaccard similarity is
at or above the threshold.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordStore
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.similarity.set_similarity import jaccard_similarity


class PrefixFilterJoin:
    """Self-join a record store under a Jaccard similarity threshold.

    Parameters
    ----------
    threshold:
        Minimum Jaccard similarity (must be strictly positive; a threshold
        of zero would make every pair a candidate, for which the naive
        all-pairs join should be used instead).
    attributes:
        Attributes pooled into each record's token set (``None`` = all).
    """

    def __init__(self, threshold: float, attributes: Optional[Sequence[str]] = None) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.attributes = list(attributes) if attributes is not None else None
        self._tokenizer = WhitespaceTokenizer()

    # ------------------------------------------------------------------ api
    def join(
        self,
        store: RecordStore,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return all pairs with Jaccard similarity >= threshold.

        With ``cross_sources`` the join is restricted to pairs with one
        record from each source (record linkage); otherwise it is a
        self-join over the whole store (deduplication).
        """
        token_sets = {
            record.record_id: record_token_set(record, self.attributes, self._tokenizer)
            for record in store
        }
        ordering = self._global_token_order(token_sets.values())
        sorted_tokens = {
            record_id: self._sort_tokens(tokens, ordering)
            for record_id, tokens in token_sets.items()
        }
        source_of = {record.record_id: record.source for record in store}

        index: Dict[str, List[str]] = defaultdict(list)
        candidates: Dict[Tuple[str, str], bool] = {}
        for record in store:
            record_id = record.record_id
            tokens = sorted_tokens[record_id]
            prefix = self._prefix(tokens)
            for token in prefix:
                for other_id in index[token]:
                    if cross_sources is not None and not self._cross(
                        source_of[record_id], source_of[other_id], cross_sources
                    ):
                        continue
                    key = (other_id, record_id) if other_id < record_id else (record_id, other_id)
                    candidates[key] = True
                index[token].append(record_id)

        result = PairSet()
        for id_a, id_b in candidates:
            similarity = jaccard_similarity(token_sets[id_a], token_sets[id_b])
            if similarity >= self.threshold:
                result.add(RecordPair(id_a, id_b, likelihood=similarity))
        return result

    # ------------------------------------------------------------- internals
    @staticmethod
    def _cross(source_a: Optional[str], source_b: Optional[str], wanted: Tuple[str, str]) -> bool:
        return {source_a, source_b} == set(wanted)

    @staticmethod
    def _global_token_order(token_sets: Sequence[FrozenSet[str]]) -> Dict[str, Tuple[int, str]]:
        """Order tokens by ascending document frequency (ties by token text).

        Rare-token-first ordering makes prefixes maximally selective, which
        is the standard AllPairs heuristic.
        """
        frequency: Dict[str, int] = defaultdict(int)
        for tokens in token_sets:
            for token in tokens:
                frequency[token] += 1
        return {token: (count, token) for token, count in frequency.items()}

    @staticmethod
    def _sort_tokens(tokens: FrozenSet[str], ordering: Dict[str, Tuple[int, str]]) -> List[str]:
        return sorted(tokens, key=lambda token: ordering[token])

    def _prefix(self, sorted_tokens: List[str]) -> List[str]:
        """Prefix length for Jaccard threshold t: |x| - ceil(t * |x|) + 1."""
        size = len(sorted_tokens)
        if size == 0:
            return []
        prefix_length = size - int(math.ceil(self.threshold * size)) + 1
        prefix_length = max(1, min(size, prefix_length))
        return sorted_tokens[:prefix_length]
