"""Prefix-filtering similarity join for Jaccard thresholds.

A faithful, from-scratch implementation of the prefix-filtering principle
used by AllPairs/PPJoin-style similarity joins ([2], [26] in the paper):
for a Jaccard threshold ``t``, two token sets can only reach similarity ``t``
if their (global-frequency-ordered) prefixes share at least one token.  On
top of the basic prefix index two additional filters shrink the candidate
set that must be verified exactly:

* **length filter** — Jaccard >= t requires ``t * |x| <= |y|``, so records
  are processed in ascending token-set size and index entries from
  too-small sets are pruned from the posting lists in place (the minimum
  admissible size only grows as probing proceeds, so a stale entry never
  becomes relevant again);
* **positional filter (PPJoin)** — a collision at prefix positions ``i`` of
  ``x`` and ``j`` of ``y`` bounds the total overlap by the already-seen
  collisions plus ``min(|x| - i, |y| - j)``; candidates whose bound falls
  below the required overlap ``ceil(t / (1 + t) * (|x| + |y|))`` are pruned.

Every surviving candidate is verified exactly, so the join returns exactly
the pairs whose Jaccard similarity is at or above the threshold — including
pairs of empty-token records, which are textually identical (similarity
1.0) yet invisible to the inverted index and therefore enumerated
separately.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import RecordStore
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.similarity.set_similarity import jaccard_similarity

# Overlap bounds are computed in floating point; nudging comparisons by this
# epsilon keeps rounding errors from pruning a borderline true pair (the
# safe direction: at worst a few extra candidates reach exact verification).
_EPS = 1e-9

_PRUNED = -1


class PrefixFilterJoin:
    """Self-join a record store under a Jaccard similarity threshold.

    Parameters
    ----------
    threshold:
        Minimum Jaccard similarity (must be strictly positive; a threshold
        of zero would make every pair a candidate, for which the naive
        all-pairs join should be used instead).
    attributes:
        Attributes pooled into each record's token set (``None`` = all).
    """

    def __init__(self, threshold: float, attributes: Optional[Sequence[str]] = None) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold
        self.attributes = list(attributes) if attributes is not None else None
        self._tokenizer = WhitespaceTokenizer()

    # ------------------------------------------------------------------ api
    def join(
        self,
        store: RecordStore,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return all pairs with Jaccard similarity >= threshold.

        With ``cross_sources`` the join is restricted to pairs with one
        record from each source (record linkage); otherwise it is a
        self-join over the whole store (deduplication).
        """
        token_sets = {
            record.record_id: record_token_set(record, self.attributes, self._tokenizer)
            for record in store
        }
        ordering = self._global_token_order(token_sets.values())
        sorted_tokens = {
            record_id: self._sort_tokens(tokens, ordering)
            for record_id, tokens in token_sets.items()
        }
        source_of = {record.record_id: record.source for record in store}

        # Ascending size order makes the length filter one-sided: every
        # already-indexed set is no larger than the probing set, so only
        # ``|y| >= t * |x|`` needs checking when probing with x.
        probe_order = sorted(sorted_tokens, key=lambda rid: (len(sorted_tokens[rid]), rid))

        # token -> [(record_id, size, prefix position)]
        index: Dict[str, List[Tuple[str, int, int]]] = defaultdict(list)
        candidates: Dict[Tuple[str, str], bool] = {}
        # The required overlap ceil(t / (1 + t) * (|x| + |y|)) depends only
        # on the two set sizes, so the bound is computed once per observed
        # |y| rather than once per collision.
        overlap_coefficient = self.threshold / (1.0 + self.threshold)
        # Filter-effectiveness tallies, accumulated as plain ints in the hot
        # loop and emitted once at the end (pruning ratios for repro.obs).
        length_pruned = 0
        position_pruned = 0
        for record_id in probe_order:
            tokens = sorted_tokens[record_id]
            size = len(tokens)
            prefix = self._prefix(tokens)
            min_size = self.threshold * size - _EPS
            required_by_size: Dict[int, int] = {}
            # Accumulated prefix-collision counts per candidate (PPJoin's
            # positional filter); _PRUNED marks candidates whose overlap
            # upper bound already fell below the required overlap.
            overlaps: Dict[str, int] = {}
            for position, token in enumerate(prefix):
                entries = index[token]
                # Length filter: probing proceeds in ascending size order, so
                # postings were appended in ascending size too — every entry
                # below the current minimum size is stale for this probe and
                # for all later (larger) probes, and is pruned in place.
                stale = 0
                for other_size in (entry[1] for entry in entries):
                    if other_size >= min_size:
                        break
                    stale += 1
                if stale:
                    del entries[:stale]
                    length_pruned += stale
                for other_id, other_size, other_position in entries:
                    seen = overlaps.get(other_id, 0)
                    if seen == _PRUNED:
                        continue
                    bound = seen + 1 + min(size - position - 1, other_size - other_position - 1)
                    required = required_by_size.get(other_size)
                    if required is None:
                        required = math.ceil(
                            overlap_coefficient * (size + other_size) - _EPS
                        )
                        required_by_size[other_size] = required
                    if bound < required:
                        overlaps[other_id] = _PRUNED  # positional filter
                        position_pruned += 1
                        continue
                    overlaps[other_id] = seen + 1
                entries.append((record_id, size, position))
            for other_id, seen in overlaps.items():
                if seen == _PRUNED:
                    continue
                if cross_sources is not None and not self._cross(
                    source_of[record_id], source_of[other_id], cross_sources
                ):
                    continue
                key = (other_id, record_id) if other_id < record_id else (record_id, other_id)
                candidates[key] = True

        result = PairSet()
        for id_a, id_b in candidates:
            similarity = jaccard_similarity(token_sets[id_a], token_sets[id_b])
            if similarity >= self.threshold:
                result.add(RecordPair(id_a, id_b, likelihood=similarity))

        # Empty token sets never enter the inverted index, but two empty
        # records are textually identical (Jaccard 1.0) and must be joined.
        empty_ids = [record_id for record_id in probe_order if not sorted_tokens[record_id]]
        for i in range(len(empty_ids)):
            for j in range(i + 1, len(empty_ids)):
                if cross_sources is not None and not self._cross(
                    source_of[empty_ids[i]], source_of[empty_ids[j]], cross_sources
                ):
                    continue
                result.add(RecordPair(empty_ids[i], empty_ids[j], likelihood=1.0))
        if obs.enabled():
            obs.inc("simjoin_prefix_length_pruned_total", length_pruned,
                    help="Stale postings removed by the length filter.")
            obs.inc("simjoin_prefix_position_pruned_total", position_pruned,
                    help="Candidates discarded by the PPJoin positional filter.")
            obs.inc("simjoin_prefix_verified_total", len(candidates),
                    help="Candidates that reached exact Jaccard verification.")
            obs.inc("simjoin_prefix_passed_total", len(result),
                    help="Pairs at or above threshold after verification.")
        return result

    # ------------------------------------------------------------- internals
    @staticmethod
    def _cross(source_a: Optional[str], source_b: Optional[str], wanted: Tuple[str, str]) -> bool:
        return {source_a, source_b} == set(wanted)

    @staticmethod
    def _global_token_order(token_sets: Sequence[FrozenSet[str]]) -> Dict[str, Tuple[int, str]]:
        """Order tokens by ascending document frequency (ties by token text).

        Rare-token-first ordering makes prefixes maximally selective, which
        is the standard AllPairs heuristic.
        """
        frequency: Dict[str, int] = defaultdict(int)
        for tokens in token_sets:
            for token in tokens:
                frequency[token] += 1
        return {token: (count, token) for token, count in frequency.items()}

    @staticmethod
    def _sort_tokens(tokens: FrozenSet[str], ordering: Dict[str, Tuple[int, str]]) -> List[str]:
        return sorted(tokens, key=lambda token: ordering[token])

    def _prefix(self, sorted_tokens: List[str]) -> List[str]:
        """Prefix length for Jaccard threshold t: |x| - ceil(t * |x|) + 1."""
        size = len(sorted_tokens)
        if size == 0:
            return []
        prefix_length = size - int(math.ceil(self.threshold * size - _EPS)) + 1
        prefix_length = max(1, min(size, prefix_length))
        return sorted_tokens[:prefix_length]
