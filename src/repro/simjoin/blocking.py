"""Blocking techniques for candidate-pair generation.

Blocking partitions (or multi-indexes) the records so that only records
sharing a blocking key are compared, avoiding the quadratic all-pairs scan.
The paper cites Christen's indexing survey [7] for these techniques and
notes (Section 8) that cluster-based HIT generation is itself a form of
blocking with a different objective.

Three blockers are provided:

* :class:`AttributeBlocker` — records sharing the exact (normalised) value
  of an attribute fall into the same block (standard blocking).
* :class:`TokenBlocker` — records sharing at least one token are candidates.
* :class:`QGramBlocker` — records sharing at least one character q-gram are
  candidates (robust to typos).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.records.pairs import PairSet, RecordPair
from repro.records.preprocessing import normalize_text
from repro.records.record import Record, RecordStore
from repro.records.tokenize import QGramTokenizer, WhitespaceTokenizer
from repro.similarity.record_similarity import JaccardRecordSimilarity, RecordSimilarity


class _KeyBlocker:
    """Shared machinery: map each record to one or more blocking keys."""

    def keys_for(self, record: Record) -> Iterable[str]:
        raise NotImplementedError

    def candidate_keys(
        self,
        store: RecordStore,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> Set[Tuple[str, str]]:
        """Return the set of candidate pair keys induced by the blocking."""
        blocks: Dict[str, List[str]] = defaultdict(list)
        source_of = {record.record_id: record.source for record in store}
        for record in store:
            for key in self.keys_for(record):
                blocks[key].append(record.record_id)
        candidates: Set[Tuple[str, str]] = set()
        for members in blocks.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    id_a, id_b = members[i], members[j]
                    if id_a == id_b:
                        continue
                    if cross_sources is not None:
                        if {source_of[id_a], source_of[id_b]} != set(cross_sources):
                            continue
                    candidates.add((id_a, id_b) if id_a < id_b else (id_b, id_a))
        return candidates

    def candidates(
        self,
        store: RecordStore,
        similarity: Optional[RecordSimilarity] = None,
        min_likelihood: float = 0.0,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Score the blocked candidates and keep those above the threshold."""
        similarity = similarity or JaccardRecordSimilarity()
        result = PairSet()
        for id_a, id_b in sorted(self.candidate_keys(store, cross_sources)):
            value = similarity.similarity(store.get(id_a), store.get(id_b))
            if value >= min_likelihood:
                result.add(RecordPair(id_a, id_b, likelihood=value))
        return result


class AttributeBlocker(_KeyBlocker):
    """Standard blocking on the exact normalised value of one attribute."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def keys_for(self, record: Record) -> Iterable[str]:
        value = normalize_text(record.get(self.attribute, ""))
        return [value] if value else []


class TokenBlocker(_KeyBlocker):
    """Token blocking: each token of the chosen attributes is a blocking key."""

    def __init__(self, attributes: Optional[Sequence[str]] = None, min_token_length: int = 1) -> None:
        self.attributes = list(attributes) if attributes is not None else None
        self.min_token_length = min_token_length
        self._tokenizer = WhitespaceTokenizer()

    def keys_for(self, record: Record) -> Iterable[str]:
        tokens = self._tokenizer.token_set(record.text(self.attributes))
        return [token for token in tokens if len(token) >= self.min_token_length]


class QGramBlocker(_KeyBlocker):
    """Q-gram blocking: each character q-gram is a blocking key."""

    def __init__(self, q: int = 3, attributes: Optional[Sequence[str]] = None) -> None:
        self.attributes = list(attributes) if attributes is not None else None
        self._tokenizer = QGramTokenizer(q=q)

    def keys_for(self, record: Record) -> Iterable[str]:
        return self._tokenizer.token_set(record.text(self.attributes))
