"""Vectorized similarity join over a sparse token-incidence matrix.

The machine pass is the workload the hybrid trade-off hangs on (Table 2,
Figure 10), and the pure-Python joins in :mod:`repro.simjoin.allpairs` and
:mod:`repro.simjoin.prefix_filter` pay a Python-interpreter price per pair.
:class:`VectorizedSimJoin` instead builds a scipy CSR token-incidence matrix
``X`` (records x vocabulary, binary, constructed columnarly — see
:mod:`repro.simjoin.columnar`) and computes all pairwise intersection
counts through blocked sparse products ``X[block] @ X.T``.  Set sizes come
from the CSR row pointers, so Jaccard, Dice and cosine similarities — and
the cross-source mask for record-linkage joins — are derived entirely in
numpy with no per-pair Python loop.

The result is exact: intersection and union counts are small integers, the
final float64 division is bit-identical to the pure-Python ``len(a & b) /
len(a | b)``, so the vectorized join returns byte-identical pair sets to
the naive scan at any threshold (the property tests assert this).

The block generators take an explicit row range so that
:class:`repro.simjoin.parallel.ParallelSimJoin` can run the *same* per-block
code on disjoint row shards in worker processes: every similarity value is
an elementwise float64 expression of one pair's intersection count and set
sizes, so neither block boundaries nor shard boundaries can change it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

try:  # scipy ships with the toolchain, but keep the import gated so the
    from scipy import sparse  # naive/prefix backends work without it.
except ImportError:  # pragma: no cover - scipy is part of the image
    sparse = None

from repro import obs
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordStore
from repro.records.tokenize import WhitespaceTokenizer, record_token_set
from repro.simjoin.columnar import columnar_csr_arrays

HAVE_SCIPY = sparse is not None

MEASURES = ("jaccard", "dice", "cosine")

# (global row indices, global col indices, similarity values) for one block.
_BlockPairs = Tuple[np.ndarray, np.ndarray, np.ndarray]

# A join plan: ("self", keep, None) or ("bipartite", left, right), where the
# arrays hold global row indices into the incidence matrix.
JoinPlan = Tuple[str, np.ndarray, Optional[np.ndarray]]


class VectorizedSimJoin:
    """Exact set-similarity self/cross join via blocked sparse matmul.

    Parameters
    ----------
    threshold:
        Minimum similarity; pairs strictly below it are not materialised.
        Unlike the prefix filter, ``0.0`` is allowed (every pair is scored,
        matching the naive all-pairs scan).
    attributes:
        Attributes pooled into each record's token set (``None`` = all).
    measure:
        ``"jaccard"`` (the paper's simjoin), ``"dice"`` or ``"cosine"``
        (binary cosine ``|A n B| / sqrt(|A| |B|)``).
    block_size:
        Number of matrix rows multiplied per block; bounds peak memory at
        roughly ``block_size * n`` floats for zero-threshold joins.
    """

    def __init__(
        self,
        threshold: float = 0.0,
        attributes: Optional[Sequence[str]] = None,
        measure: str = "jaccard",
        block_size: int = 1024,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if measure not in MEASURES:
            raise ValueError(f"unknown measure {measure!r}; expected one of {MEASURES}")
        if block_size < 1:
            raise ValueError("block_size must be at least 1")
        self.threshold = threshold
        self.attributes = list(attributes) if attributes is not None else None
        self.measure = measure
        self.block_size = block_size
        self._tokenizer = WhitespaceTokenizer()

    # ------------------------------------------------------------------ api
    def join(
        self,
        store: RecordStore,
        cross_sources: Optional[Tuple[str, str]] = None,
    ) -> PairSet:
        """Return all pairs with similarity >= threshold.

        With ``cross_sources`` only pairs with one record from each source
        are produced (record linkage); otherwise the whole store is
        self-joined (deduplication).
        """
        if sparse is None:  # pragma: no cover - scipy is part of the image
            raise RuntimeError(
                "the vectorized join backend requires scipy; "
                "use the 'naive' or 'prefix' backend instead"
            )
        records = list(store)
        result = PairSet()
        if len(records) < 2:
            return result
        ids = [record.record_id for record in records]
        matrix = self._incidence_matrix(store)
        sizes = np.diff(matrix.indptr).astype(np.int64)
        plan = self._plan(records, cross_sources)

        for rows, cols, values in self._pair_blocks(matrix, sizes, plan):
            for i, j, value in zip(rows.tolist(), cols.tolist(), values.tolist()):
                result.add(RecordPair(ids[i], ids[j], likelihood=value))
        return result

    # ------------------------------------------------------------- internals
    def _plan(
        self, records: Sequence[Record], cross_sources: Optional[Tuple[str, str]]
    ) -> JoinPlan:
        """Decide self-join vs bipartite join and which rows participate."""
        if cross_sources is not None and cross_sources[0] != cross_sources[1]:
            left = np.array(
                [i for i, r in enumerate(records) if r.source == cross_sources[0]],
                dtype=np.int64,
            )
            right = np.array(
                [i for i, r in enumerate(records) if r.source == cross_sources[1]],
                dtype=np.int64,
            )
            return ("bipartite", left, right)
        if cross_sources is None:
            keep = np.arange(len(records), dtype=np.int64)
        else:
            # Degenerate (a, a) cross join: both records from that source.
            keep = np.array(
                [i for i, r in enumerate(records) if r.source == cross_sources[0]],
                dtype=np.int64,
            )
        return ("self", keep, None)

    def _pair_blocks(
        self, matrix: "sparse.csr_matrix", sizes: np.ndarray, plan: JoinPlan
    ) -> Iterator[_BlockPairs]:
        """All pair blocks of the plan: the blocked products plus, for
        positive thresholds, the empty-token pairs the sparse product cannot
        see.  Overridden by the parallel engine to shard the product part.
        """
        kind, first, second = plan
        if kind == "bipartite":
            yield from self._bipartite_blocks(matrix, sizes, first, second)
        else:
            yield from self._self_join_blocks(matrix, sizes, first)
        if self.threshold > 0.0:
            yield from self._empty_pair_blocks(sizes, plan)

    def _incidence_matrix(self, store: RecordStore) -> "sparse.csr_matrix":
        """Binary records-x-vocabulary CSR matrix of token memberships."""
        with obs.span("simjoin.vectorized.index_build", records=len(store)):
            token_sets = [
                record_token_set(record, self.attributes, self._tokenizer)
                for record in store
            ]
            indices, indptr, width = columnar_csr_arrays(token_sets)
            matrix = sparse.csr_matrix(
                (np.ones(len(indices), dtype=np.int32), indices, indptr),
                shape=(len(token_sets), max(1, width)),
            )
            matrix.sort_indices()
        return matrix

    def _similarity(
        self, inter: np.ndarray, sizes_a: np.ndarray, sizes_b: np.ndarray
    ) -> np.ndarray:
        """Similarity values from intersection counts and set sizes.

        Two empty token sets are defined as similarity 1.0 (textually
        identical records), matching the pure-Python set similarities.
        """
        inter = inter.astype(np.float64)
        sizes_a = sizes_a.astype(np.float64)
        sizes_b = sizes_b.astype(np.float64)
        if self.measure == "jaccard":
            denominator = sizes_a + sizes_b - inter
        elif self.measure == "dice":
            inter = 2.0 * inter
            denominator = sizes_a + sizes_b
        else:  # cosine
            denominator = np.sqrt(sizes_a * sizes_b)
        both_empty = (sizes_a == 0) & (sizes_b == 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            values = np.where(denominator > 0, inter / np.maximum(denominator, 1e-300), 0.0)
        return np.where(both_empty, 1.0, values)

    def _self_join_blocks(
        self, matrix: "sparse.csr_matrix", sizes: np.ndarray, keep: np.ndarray
    ) -> Iterator[_BlockPairs]:
        """Yield upper-triangle pairs of the self join restricted to ``keep``."""
        if keep.size < 2:
            return
        sub = matrix[keep]
        yield from self._self_range_blocks(
            sub, sub.T.tocsr(), sizes[keep], keep, 0, keep.size
        )

    def _self_range_blocks(
        self,
        sub: "sparse.csr_matrix",
        sub_t: "sparse.csr_matrix",
        sub_sizes: np.ndarray,
        keep: np.ndarray,
        start_pos: int,
        stop_pos: int,
    ) -> Iterator[_BlockPairs]:
        """Upper-triangle pair blocks for kept-row positions [start, stop)."""
        count = keep.size
        for start in range(start_pos, stop_pos, self.block_size):
            end = min(start + self.block_size, stop_pos)
            # The span covers only this block's matmul + filtering, not the
            # consumer of the yielded pairs.
            with obs.span("simjoin.vectorized.block", kind="self", rows=end - start):
                inter_block = sub[start:end] @ sub_t
                if self.threshold <= 0.0:
                    # Every pair must be materialised: densify the block.
                    inter = np.asarray(inter_block.todense())
                    rows_local = np.arange(start, end)
                    triangle = np.arange(count)[None, :] > rows_local[:, None]
                    rows, cols = np.nonzero(triangle)
                    rows += start
                    values = self._similarity(
                        inter[rows - start, cols], sub_sizes[rows], sub_sizes[cols]
                    )
                    block = (keep[rows], keep[cols], values)
                else:
                    coo = inter_block.tocoo()
                    rows = coo.row.astype(np.int64) + start
                    cols = coo.col.astype(np.int64)
                    upper = cols > rows
                    rows, cols, inter = rows[upper], cols[upper], coo.data[upper]
                    values = self._similarity(inter, sub_sizes[rows], sub_sizes[cols])
                    passing = values >= self.threshold
                    block = (keep[rows[passing]], keep[cols[passing]], values[passing])
            yield block

    def _bipartite_blocks(
        self,
        matrix: "sparse.csr_matrix",
        sizes: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
    ) -> Iterator[_BlockPairs]:
        """Yield cross-source pairs (one record from each side)."""
        if left.size == 0 or right.size == 0:
            return
        yield from self._bipartite_range_blocks(
            matrix[left],
            matrix[right].T.tocsr(),
            sizes[left],
            sizes[right],
            left,
            right,
            0,
            left.size,
        )

    def _bipartite_range_blocks(
        self,
        left_matrix: "sparse.csr_matrix",
        right_t: "sparse.csr_matrix",
        left_sizes: np.ndarray,
        right_sizes: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        start_pos: int,
        stop_pos: int,
    ) -> Iterator[_BlockPairs]:
        """Cross-source pair blocks for left-row positions [start, stop)."""
        for start in range(start_pos, stop_pos, self.block_size):
            end = min(start + self.block_size, stop_pos)
            with obs.span(
                "simjoin.vectorized.block", kind="bipartite", rows=end - start
            ):
                inter_block = left_matrix[start:end] @ right_t
                if self.threshold <= 0.0:
                    inter = np.asarray(inter_block.todense())
                    rows, cols = np.divmod(np.arange(inter.size), inter.shape[1])
                    rows += start
                    values = self._similarity(
                        inter.ravel(), left_sizes[rows], right_sizes[cols]
                    )
                    block = (left[rows], right[cols], values)
                else:
                    coo = inter_block.tocoo()
                    rows = coo.row.astype(np.int64) + start
                    cols = coo.col.astype(np.int64)
                    values = self._similarity(
                        coo.data, left_sizes[rows], right_sizes[cols]
                    )
                    passing = values >= self.threshold
                    block = (left[rows[passing]], right[cols[passing]], values[passing])
            yield block

    def _empty_pair_blocks(
        self, sizes: np.ndarray, plan: JoinPlan
    ) -> Iterator[_BlockPairs]:
        """Pairs of empty-token records (similarity defined as 1.0).

        Empty rows never appear in a sparse product, so positive-threshold
        joins must emit them separately; the zero-threshold dense path
        already scores every pair and needs no patching.
        """
        kind, first, second = plan
        if kind == "bipartite":
            empty_left = first[sizes[first] == 0]
            empty_right = second[sizes[second] == 0]
            if empty_left.size and empty_right.size:
                rows = np.repeat(empty_left, empty_right.size)
                cols = np.tile(empty_right, empty_left.size)
                yield rows, cols, np.ones(rows.size, dtype=np.float64)
            return
        empty = first[sizes[first] == 0]
        if empty.size < 2:
            return
        rows, cols = np.triu_indices(empty.size, k=1)
        yield empty[rows], empty[cols], np.ones(rows.size, dtype=np.float64)


def vectorized_similarity_join(
    store: RecordStore,
    threshold: float = 0.0,
    attributes: Optional[Sequence[str]] = None,
    cross_sources: Optional[Tuple[str, str]] = None,
    measure: str = "jaccard",
) -> PairSet:
    """Functional convenience wrapper around :class:`VectorizedSimJoin`."""
    join = VectorizedSimJoin(threshold=threshold, attributes=attributes, measure=measure)
    return join.join(store, cross_sources=cross_sources)
