"""Columnar CSR index construction from flat token arrays.

The vectorized and incremental joins both need a binary records-x-vocabulary
CSR matrix.  The legacy build is one Python loop doing a dict ``setdefault``
and a list ``append`` per token *occurrence*, then converting the whole
accumulated index list back to numpy — fine for a one-shot batch join, but
it dominates small-batch streaming appends, where the matmul itself is tiny
and the reconversion cost grows with the resident store.

The builders here are *columnar* instead: all token occurrences are
flattened into one array, the vocabulary is discovered in a single pass
over the batch's **distinct** tokens (a C-level set difference), and the
CSR ``indices`` array is filled by ``np.fromiter`` over a C-level
``map(vocab.__getitem__, ...)`` — no per-occurrence Python bytecode, and
the output is a flat ``int64`` array that downstream code appends
chunk-wise (``np.concatenate``) instead of re-converting a Python list of
the entire history on every batch.  That chunked append is where the
streaming win comes from: ``benchmarks/bench_parallel_join.py`` measures
the full append pipeline against the legacy loop.

Column order differs from the legacy first-seen order (the vocabulary is
assigned in sorted order per batch), but a column permutation cannot change
any intersection count, so every similarity value is bit-identical.  The
legacy per-record builder is kept (:func:`per_record_csr_arrays`) as the
reference the equivalence tests and the benchmark compare against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: (CSR indices, CSR indptr, vocabulary size) of a token-incidence matrix.
CsrArrays = Tuple[np.ndarray, np.ndarray, int]


def _flatten(token_sets: Sequence[Iterable[str]]) -> Tuple[List[str], np.ndarray]:
    """Flatten per-record token sets into one list plus the CSR indptr."""
    indptr = np.zeros(len(token_sets) + 1, dtype=np.int64)
    flat: List[str] = []
    for row, tokens in enumerate(token_sets):
        flat.extend(tokens)
        indptr[row + 1] = len(flat)
    return flat, indptr


def _fill_indices(flat: List[str], vocabulary: Dict[str, int]) -> np.ndarray:
    """Map every token occurrence to its column id without Python bytecode.

    ``map`` with a bound method and ``np.fromiter`` both run their loops in
    C; only the vocabulary *misses* (handled by the callers, one per
    distinct new token) pay interpreter cost.
    """
    return np.fromiter(
        map(vocabulary.__getitem__, flat), dtype=np.int64, count=len(flat)
    )


def columnar_csr_arrays(token_sets: Sequence[Iterable[str]]) -> CsrArrays:
    """Build CSR ``(indices, indptr, width)`` in one columnar pass.

    The vocabulary is implicit: column ``j`` is the ``j``-th distinct token
    in sorted order.  Rows are the given token sets, in order.
    """
    flat, indptr = _flatten(token_sets)
    if not flat:
        return np.empty(0, dtype=np.int64), indptr, 0
    vocabulary = {token: index for index, token in enumerate(sorted(set(flat)))}
    return _fill_indices(flat, vocabulary), indptr, len(vocabulary)


def extend_vocabulary_csr_arrays(
    token_sets: Sequence[Iterable[str]],
    vocabulary: Dict[str, int],
    novel_out: Optional[List[str]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar CSR build against a *persistent* vocabulary dict.

    Unknown tokens are appended to ``vocabulary`` (mutated in place) in
    sorted order of the batch's novel tokens.  Only one dict insertion per
    *distinct* novel batch token is paid — the per-occurrence work is a
    C-level set difference plus the ``map``/``fromiter`` fill.
    Returns ``(indices, indptr)`` for the batch rows.  When ``novel_out``
    is given, the batch's novel tokens are appended to it in column order,
    so a persistent store can mirror exactly the new vocabulary entries
    without rescanning the whole dict.
    """
    flat, indptr = _flatten(token_sets)
    if not flat:
        return np.empty(0, dtype=np.int64), indptr
    for token in sorted(set(flat).difference(vocabulary)):
        vocabulary[token] = len(vocabulary)
        if novel_out is not None:
            novel_out.append(token)
    return _fill_indices(flat, vocabulary), indptr


def tombstone_data_array(
    indptr: Sequence[int], dead_rows: Iterable[int], dtype=np.int32
) -> np.ndarray:
    """A CSR ``data`` array of ones with the dead rows' occurrences zeroed.

    Retracting a record from the streaming index must not pay an O(nnz)
    rebuild of the accumulated chunks, so dead rows stay resident as
    *tombstones*: their column indices remain in the flat arrays, but their
    ``data`` entries are zero, which makes every intersection count against
    them zero and therefore every similarity exactly ``0.0`` — below any
    positive threshold.  Rows are only physically dropped by
    :func:`compact_csr_arrays` when enough tombstones accumulate.
    """
    indptr_array = np.asarray(indptr, dtype=np.int64)
    data = np.ones(int(indptr_array[-1]), dtype=dtype)
    for row in dead_rows:
        data[indptr_array[row] : indptr_array[row + 1]] = 0
    return data


def compact_csr_arrays(
    indices: np.ndarray, indptr: Sequence[int], dead_rows: Iterable[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Physically drop tombstoned rows from flat CSR arrays.

    Returns new ``(indices, indptr)`` containing only the surviving rows, in
    their original order.  One vectorized boolean-mask pass over the
    occurrence array — no per-row Python loop.
    """
    indptr_array = np.asarray(indptr, dtype=np.int64)
    row_count = len(indptr_array) - 1
    alive = np.ones(row_count, dtype=bool)
    for row in dead_rows:
        alive[row] = False
    lengths = np.diff(indptr_array)
    keep_occurrences = np.repeat(alive, lengths)
    new_indptr = np.zeros(int(alive.sum()) + 1, dtype=np.int64)
    np.cumsum(lengths[alive], out=new_indptr[1:])
    return np.asarray(indices)[keep_occurrences], new_indptr


def argsort_descending(values: Sequence[float]) -> np.ndarray:
    """Stable descending argsort — the array twin of the pair-ranking sort.

    ``np.argsort`` of the *negated* values with a stable kind gives exactly
    the order of Python's ``sorted(..., key=lambda v: -v)`` (equal values
    keep their original relative order), which is the rule every HIT
    generator ranks candidate pairs by.  Works on any float sequence; the
    caller encodes missing likelihoods as a sentinel below the valid range.
    """
    return np.argsort(-np.asarray(values, dtype=np.float64), kind="stable")


def per_record_csr_arrays(token_sets: Sequence[Iterable[str]]) -> CsrArrays:
    """The legacy per-record/per-token loop, kept as a reference baseline.

    Semantically equivalent to :func:`columnar_csr_arrays` up to a column
    permutation (first-seen vocabulary order instead of sorted order).
    """
    vocabulary: Dict[str, int] = {}
    indices: List[int] = []
    indptr: List[int] = [0]
    for tokens in token_sets:
        for token in tokens:
            indices.append(vocabulary.setdefault(token, len(vocabulary)))
        indptr.append(len(indices))
    return (
        np.asarray(indices, dtype=np.int64),
        np.asarray(indptr, dtype=np.int64),
        len(vocabulary),
    )
