"""Machine-based candidate-pair generation: similarity joins and blocking.

This package implements the machine pass of CrowdER's hybrid workflow:
computing, for every candidate pair, the likelihood that the two records
refer to the same entity (Section 2.2), and the indexing techniques the
paper's footnote 1 mentions for avoiding all-pairs comparison (blocking and
prefix-filtering similarity joins).  Four interchangeable join engines —
naive, prefix-filtering, vectorized (sparse-matrix) and parallel (the same
sparse products sharded across a process pool) — are exposed through the
backend registry in :mod:`repro.simjoin.backend`.
"""

from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.backend import (
    AUTO_BACKEND,
    SimJoinBackend,
    auto_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.simjoin.blocking import TokenBlocker, QGramBlocker, AttributeBlocker
from repro.simjoin.likelihood import LikelihoodEstimator, SimJoinLikelihood
from repro.simjoin.parallel import ParallelSimJoin, parallel_similarity_join
from repro.simjoin.pool import (
    DEFAULT_POOL_MODE,
    POOL_MODES,
    ShardPool,
    SharedArrayBlock,
    active_pools,
    resolve_pool_mode,
    shared_pool,
    shutdown_pools,
)
from repro.simjoin.prefix_filter import PrefixFilterJoin
from repro.simjoin.vectorized import VectorizedSimJoin, vectorized_similarity_join

__all__ = [
    "all_pairs_similarity",
    "PrefixFilterJoin",
    "VectorizedSimJoin",
    "vectorized_similarity_join",
    "ParallelSimJoin",
    "parallel_similarity_join",
    "POOL_MODES",
    "DEFAULT_POOL_MODE",
    "ShardPool",
    "SharedArrayBlock",
    "active_pools",
    "resolve_pool_mode",
    "shared_pool",
    "shutdown_pools",
    "TokenBlocker",
    "QGramBlocker",
    "AttributeBlocker",
    "LikelihoodEstimator",
    "SimJoinLikelihood",
    "SimJoinBackend",
    "AUTO_BACKEND",
    "auto_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
