"""Machine-based candidate-pair generation: similarity joins and blocking.

This package implements the machine pass of CrowdER's hybrid workflow:
computing, for every candidate pair, the likelihood that the two records
refer to the same entity (Section 2.2), and the indexing techniques the
paper's footnote 1 mentions for avoiding all-pairs comparison (blocking and
prefix-filtering similarity joins).
"""

from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.prefix_filter import PrefixFilterJoin
from repro.simjoin.blocking import TokenBlocker, QGramBlocker, AttributeBlocker
from repro.simjoin.likelihood import LikelihoodEstimator, SimJoinLikelihood

__all__ = [
    "all_pairs_similarity",
    "PrefixFilterJoin",
    "TokenBlocker",
    "QGramBlocker",
    "AttributeBlocker",
    "LikelihoodEstimator",
    "SimJoinLikelihood",
]
