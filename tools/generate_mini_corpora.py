"""Regenerate the bundled offline mini-corpora under src/repro/etl/data/.

The real Abt-Buy and Amazon-GoogleProducts benchmark corpora are not
redistributable in this repository, so the bundled data are *deterministic,
committed stand-ins in the real corpora's raw shape*: messy CSV files the
ETL layer has to actually work for — unicode trademark glyphs and accents,
inch marks, punctuation, currency symbols in both positions, EU and US
decimal separators, empty and malformed price fields, blank descriptions —
plus a perfect-mapping gold CSV keyed by the raw source ids.

Run from the repository root to refresh the committed files (the manifests
are rewritten with the new checksums)::

    python tools/generate_mini_corpora.py

The output is a pure function of the seeds below, so re-running on any
machine reproduces the committed bytes exactly; the checksum manifests (and
therefore the regression-matrix baselines) only change when this script
does.
"""

from __future__ import annotations

import csv
import json
import random
import string
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.etl.manifest import MANIFEST_FILENAME, sha256_file  # noqa: E402

DATA_ROOT = REPO_ROOT / "src" / "repro" / "etl" / "data"

_BRANDS = [
    "Apple", "Sony", "Samsung", "Panasonic", "Canon", "Nikon", "Toshiba",
    "Dell", "HP", "Lenovo", "Asus", "Acer", "LG", "Philips", "Bose",
    "Garmin", "JBL", "Logitech", "Netgear", "Seagate", "Kodak", "Olympus",
    "Vizio", "Sharp", "Pioneer", "Kenwood", "Yamaha", "Denon", "Onkyo",
    "Casio", "Epson", "Brother", "SanDisk", "Kingston", "TomTom",
]
_LINES = [
    "iPod Touch", "Walkman Player", "Galaxy Player", "Lumix Camera",
    "PowerShot Camera", "Coolpix Camera", "Portable DVD Player", "Notebook",
    "LCD Monitor", "Soundbar", "Home Theater System", "GPS Navigator",
    "Wireless Router", "External Hard Drive", "Bluetooth Speaker",
    "Noise Cancelling Headphones", "Digital Camcorder", "Photo Printer",
    "Media Streamer", "Clock Radio", "Micro Stereo", "Receiver Amplifier",
    "Turntable", "Subwoofer", "Earbuds", "Webcam", "Flash Drive",
    "Memory Card", "Docking Station", "Projector", "Scanner",
    "Cordless Phone", "Baby Monitor", "Fitness Tracker", "Action Camera",
    "Dash Cam", "Karaoke Machine", "DVD Recorder", "Blu-ray Player",
]
_COLORS = ["Black", "White", "Silver", "Blue", "Red", "Pink", "Grey", "Titanium"]
_CAPACITIES = ["2GB", "4GB", "8GB", "16GB", "32GB", "64GB", "120GB", "500GB", "1TB"]
_GENERATIONS = ["1st", "2nd", "3rd", "4th", "5th"]
_EXTRAS = ["Wi-Fi", "HD", "Portable", "Pro", "Plus", "Slim", "Touchscreen", "Wireless", "Deluxe", "Premium"]
_GLYPHS = ["®", "™", ""]
_DESC_PHRASES = [
    "with rechargeable battery", "includes remote control and cables",
    "café-quality audio performance", "easy setup – plug and play",
    "compact design for travel", "supports all major formats",
    "award-winning engineering", "2-year limited warranty included",
    "high-résolution display", "energy efficient operation",
]


def _model_code(rng: random.Random) -> str:
    return (
        "".join(rng.choices(string.ascii_uppercase, k=3))
        + "-"
        + "".join(rng.choices(string.digits, k=3))
        + rng.choice(["LL/A", "B", "S", "XE", ""])
    )


def _make_entity(rng: random.Random) -> dict:
    return {
        "brand": rng.choice(_BRANDS),
        "line": rng.choice(_LINES),
        "color": rng.choice(_COLORS),
        "capacity": rng.choice(_CAPACITIES),
        "generation": rng.choice(_GENERATIONS),
        "extra": rng.choice(_EXTRAS),
        "model_code": _model_code(rng),
        "price": round(rng.uniform(15, 1500), 2),
    }


def _verbose_title(entity: dict, rng: random.Random) -> str:
    glyph = rng.choice(_GLYPHS)
    pieces = [
        f"{entity['brand']}{glyph}",
        entity["capacity"],
        entity["color"],
        f"{entity['generation']} Generation",
        entity["line"],
        f"({entity['extra']})",
        entity["model_code"],
    ]
    if rng.random() < 0.25:
        pieces.insert(5, 'w/ 32″ Stand' if rng.random() < 0.5 else "– Accessories Kit")
    return " ".join(piece for piece in pieces if piece)


def _terse_title(entity: dict, rng: random.Random, hard: bool) -> str:
    divergence = rng.uniform(0.42, 0.95) if hard else rng.uniform(0.0, 0.42)
    line_tokens = entity["line"].split()
    line = " ".join(line_tokens[:-1]) if divergence > 0.6 and len(line_tokens) > 1 else entity["line"]
    if divergence < 0.35:
        generation = f"{entity['generation']} Generation"
    elif divergence < 0.7:
        generation = f"Gen {entity['generation'][0]}"
    else:
        generation = ""
    pieces = [
        entity["brand"],
        line,
        entity["capacity"] if rng.random() > 0.55 * divergence else "",
        generation,
        entity["color"] if rng.random() > 0.25 + 0.65 * divergence else "",
        entity["extra"] if rng.random() > 0.45 + 0.5 * divergence else "",
        entity["model_code"] if rng.random() < 0.2 else "",
    ]
    if divergence > 0.75:
        pieces.append(rng.choice(["Refurbished", "Bundle", "New", ""]))
    return " ".join(piece for piece in pieces if piece)


def _description(entity: dict, rng: random.Random, blank_rate: float) -> str:
    if rng.random() < blank_rate:
        return ""
    phrases = rng.sample(_DESC_PHRASES, k=rng.randint(1, 3))
    return f"{entity['brand']} {entity['line']}: " + ", ".join(phrases) + "."


def _price_text(amount: float, rng: random.Random, style: str) -> str:
    roll = rng.random()
    if roll < 0.04:
        return ""  # missing price
    if roll < 0.08:
        return rng.choice(["call for price", "see site", "n/a"])  # malformed
    noisy = amount * rng.uniform(0.92, 1.08)
    if style == "us":
        return f"${noisy:,.2f}"
    if roll < 0.5:
        return f"{noisy:.2f} GBP"
    # EU convention: thousands '.', decimal ','
    text = f"{noisy:,.2f}".replace(",", "_").replace(".", ",").replace("_", ".")
    return f"{text} €"


def _write_csv(path: Path, header: list, rows: list) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def _write_manifest(directory: Path, corpus: str, source_url: str, files: list) -> None:
    payload = {
        "corpus": corpus,
        "variant": "bundled-mini",
        "source_url": source_url,
        "license": "synthetic stand-in (committed); real corpus CC-BY 4.0",
        "normalization": ["strip_accents", "normalize_text", "parse_price_currency"],
        "files": {
            name: {"sha256": sha256_file(directory / name), "bytes": (directory / name).stat().st_size}
            for name in files
        },
    }
    (directory / MANIFEST_FILENAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def generate_abt_buy(seed: int = 20120801) -> None:
    rng = random.Random(seed)
    directory = DATA_ROOT / "abt_buy"
    directory.mkdir(parents=True, exist_ok=True)
    shared, abt_only, buy_only, extra_buy_dups = 215, 30, 25, 15

    abt_rows, buy_rows, mapping_rows = [], [], []
    used_ids = set()

    def fresh_id() -> int:
        while True:
            candidate = rng.randint(100, 99999)
            if candidate not in used_ids:
                used_ids.add(candidate)
                return candidate

    entities = [_make_entity(rng) for _ in range(shared)]
    hard_flags = [True] * int(shared * 0.4) + [False] * (shared - int(shared * 0.4))
    rng.shuffle(hard_flags)
    duplicate_indices = set(rng.sample(range(shared), extra_buy_dups))

    def add_abt(entity):
        abt_id = fresh_id()
        abt_rows.append([
            abt_id,
            _verbose_title(entity, rng),
            _description(entity, rng, blank_rate=0.15),
            _price_text(entity["price"], rng, "us"),
        ])
        return abt_id

    def add_buy(entity, hard):
        buy_id = fresh_id()
        buy_rows.append([
            buy_id,
            _terse_title(entity, rng, hard),
            _description(entity, rng, blank_rate=0.55),
            entity["brand"] if rng.random() < 0.8 else "",
            _price_text(entity["price"], rng, "us"),
        ])
        return buy_id

    for index, entity in enumerate(entities):
        abt_id = add_abt(entity)
        buy_id = add_buy(entity, hard_flags[index])
        mapping_rows.append([abt_id, buy_id])
        if index in duplicate_indices:
            second = add_buy(entity, hard_flags[index])
            mapping_rows.append([abt_id, second])
    for _ in range(abt_only):
        add_abt(_make_entity(rng))
    for _ in range(buy_only):
        add_buy(_make_entity(rng), hard=False)

    _write_csv(directory / "Abt.csv", ["id", "name", "description", "price"], abt_rows)
    _write_csv(
        directory / "Buy.csv",
        ["id", "name", "description", "manufacturer", "price"],
        buy_rows,
    )
    _write_csv(directory / "abt_buy_perfectMapping.csv", ["idAbt", "idBuy"], mapping_rows)
    _write_manifest(
        directory,
        "abt-buy",
        "https://dbs.uni-leipzig.de/research/projects/benchmark-datasets-for-entity-resolution",
        ["Abt.csv", "Buy.csv", "abt_buy_perfectMapping.csv"],
    )
    print(f"abt-buy: {len(abt_rows)} abt + {len(buy_rows)} buy records, "
          f"{len(mapping_rows)} gold pairs → {directory}")


def generate_amazon_google(seed: int = 20120802) -> None:
    rng = random.Random(seed)
    directory = DATA_ROOT / "amazon_google"
    directory.mkdir(parents=True, exist_ok=True)
    shared, amazon_only, google_only = 210, 35, 40

    amazon_rows, google_rows, mapping_rows = [], [], []
    counter = {"n": 0}

    def amazon_id() -> str:
        counter["n"] += 1
        return "b" + "".join(rng.choices(string.digits, k=9)) + str(counter["n"])

    def google_id() -> str:
        counter["n"] += 1
        return f"http://www.google.com/base/feeds/snippets/{rng.randint(10**12, 10**13 - 1)}{counter['n']}"

    entities = [_make_entity(rng) for _ in range(shared)]
    hard_flags = [True] * int(shared * 0.45) + [False] * (shared - int(shared * 0.45))
    rng.shuffle(hard_flags)

    def add_amazon(entity):
        identifier = amazon_id()
        amazon_rows.append([
            identifier,
            _verbose_title(entity, rng),
            _description(entity, rng, blank_rate=0.2),
            entity["brand"],
            _price_text(entity["price"], rng, "us"),
        ])
        return identifier

    def add_google(entity, hard):
        identifier = google_id()
        google_rows.append([
            identifier,
            _terse_title(entity, rng, hard).lower(),
            _description(entity, rng, blank_rate=0.45).lower(),
            entity["brand"].lower() if rng.random() < 0.6 else "",
            _price_text(entity["price"], rng, "eu"),
        ])
        return identifier

    for index, entity in enumerate(entities):
        mapping_rows.append([add_amazon(entity), add_google(entity, hard_flags[index])])
    for _ in range(amazon_only):
        add_amazon(_make_entity(rng))
    for _ in range(google_only):
        add_google(_make_entity(rng), hard=False)

    _write_csv(
        directory / "Amazon.csv",
        ["id", "title", "description", "manufacturer", "price"],
        amazon_rows,
    )
    _write_csv(
        directory / "GoogleProducts.csv",
        ["id", "name", "description", "manufacturer", "price"],
        google_rows,
    )
    _write_csv(
        directory / "Amzon_GoogleProducts_perfectMapping.csv",
        ["idAmazon", "idGoogleBase"],
        mapping_rows,
    )
    _write_manifest(
        directory,
        "amazon-google",
        "https://dbs.uni-leipzig.de/research/projects/benchmark-datasets-for-entity-resolution",
        ["Amazon.csv", "GoogleProducts.csv", "Amzon_GoogleProducts_perfectMapping.csv"],
    )
    print(f"amazon-google: {len(amazon_rows)} amazon + {len(google_rows)} google records, "
          f"{len(mapping_rows)} gold pairs → {directory}")


if __name__ == "__main__":
    generate_abt_buy()
    generate_amazon_google()
