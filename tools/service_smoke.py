"""CI smoke: concurrent HTTP sessions against a live server == CLI baseline.

Expects a ``repro serve`` process already listening (its port read from
``--port-file``, as written by ``serve --port 0 --port-file ...``).  Loads
the bundled Abt-Buy mini corpus, replays it through N concurrent sessions
over HTTP — each from its own thread, so requests genuinely interleave —
and asserts every served result is **bit-identical** to the CLI baseline:
:func:`repro.streaming.session.resolve_stream` (the exact code path behind
``repro resolve-stream``) on the same records, batches and config.

Also asserts the ``/metrics`` scrape works when the server was started
with ``--metrics`` (the workflow validates the exported ``.prom`` file
separately)::

    PYTHONPATH=src python -m repro.cli serve --port 0 --port-file service.port --metrics &
    PYTHONPATH=src python tools/service_smoke.py --port-file service.port
"""

from __future__ import annotations

import argparse
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional

from repro.core.config import WorkflowConfig
from repro.etl.registry import load_corpus
from repro.service.client import ServiceClient
from repro.service.sessions import encode_result
from repro.streaming.persistence import encode_record
from repro.streaming.session import resolve_stream


def _wait_for_port(port_file: Path, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while not port_file.exists():
        if time.monotonic() > deadline:
            raise SystemExit(f"server never wrote {port_file}")
        time.sleep(0.05)
    return int(port_file.read_text())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port-file", type=str, required=True,
                        help="file the server writes its bound port to")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--corpus", type=str, default="abt-buy",
                        help="registered corpus name (bundled mini corpus)")
    parser.add_argument("--sessions", type=int, default=2,
                        help="concurrent sessions to drive")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--threshold", type=float, default=0.35)
    parser.add_argument("--startup-timeout", type=float, default=60.0)
    args = parser.parse_args(argv)

    port = _wait_for_port(Path(args.port_file), args.startup_timeout)
    client = ServiceClient(args.host, port)

    dataset = load_corpus(args.corpus)
    records = list(dataset.store)
    truth = [list(pair) for pair in dataset.ground_truth]
    config = WorkflowConfig(
        likelihood_threshold=args.threshold,
        vote_mode="per-pair",  # what the service enforces per session
        aggregation="majority",
    )
    # The CLI baseline: the resolve_stream code path behind
    # `repro resolve-stream`, identical records / batches / config.
    expected = encode_result(
        resolve_stream(dataset, config=config, batch_size=args.batch_size)
    )

    def drive(index: int) -> dict:
        session_id = f"smoke-{index}"
        client.create_session(
            session_id,
            config={
                "likelihood_threshold": args.threshold,
                "aggregation": "majority",
            },
            truth=truth,
            cross_sources=dataset.cross_sources,
        )
        served = None
        for offset in range(0, len(records), args.batch_size):
            served = client.append(
                session_id,
                [
                    encode_record(record)
                    for record in records[offset : offset + args.batch_size]
                ],
            )
        client.close(session_id)
        return served

    with ThreadPoolExecutor(max_workers=args.sessions) as pool:
        futures = [pool.submit(drive, index) for index in range(args.sessions)]
        outcomes = [future.result(timeout=300) for future in futures]

    failures = 0
    for index, served in enumerate(outcomes):
        if served != expected:
            print(f"MISMATCH: session smoke-{index} differs from the CLI "
                  f"baseline", file=sys.stderr)
            failures += 1
    scrape = client.metrics_text()
    for needed in ("service_requests_total", "service_request_seconds"):
        if needed not in scrape:
            print(f"MISSING: /metrics scrape lacks {needed}", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(
        f"service smoke OK: {args.sessions} concurrent sessions x "
        f"{len(records)} records bit-identical to the CLI baseline "
        f"({len(expected['matches'])} matches); /metrics scrape valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
