"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that the package can
be installed in editable mode on offline machines whose setuptools/pip lack
the ``wheel`` package required by PEP 517 editable builds.
"""

from setuptools import setup

setup()
