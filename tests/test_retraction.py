"""Tests for provenance-driven record retraction and update.

Retraction must be *exact*: only the provenance-reachable pairs and
components of the retracted record are invalidated and re-resolved
(asserted through the delta stats), and the session afterwards agrees with
a session that never saw the record — same candidate pairs with
bit-identical likelihoods, same matches among the surviving records.
"""

import pytest

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.graph.union_find import IncrementalUnionFind
from repro.records.record import Record, RecordError
from repro.simjoin.likelihood import SimJoinLikelihood
from repro.streaming import StreamingResolver
from repro.streaming.incremental_join import IncrementalSimJoin


def make_config(**overrides):
    base = dict(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    base.update(overrides)
    return WorkflowConfig(**base)


def two_islands():
    island_a = [
        Record("a1", {"t": "golden gate grill san francisco"}),
        Record("a2", {"t": "golden gate grill san francisco"}),
        Record("a3", {"t": "golden gate grill san francisco bay"}),
    ]
    island_b = [
        Record("b1", {"t": "brooklyn bagel company new york"}),
        Record("b2", {"t": "brooklyn bagel company new york"}),
    ]
    return island_a, island_b


# ------------------------------------------------------------- join layer
class TestIncrementalJoinRetraction:
    def test_retracted_record_stops_joining(self):
        join = IncrementalSimJoin(threshold=0.5)
        join.add_batch([Record("r1", {"t": "alpha beta gamma"})])
        join.retract("r1")
        delta = join.add_batch([Record("r2", {"t": "alpha beta gamma"})])
        assert len(delta) == 0
        assert len(join) == 1 and "r1" not in join
        assert join.record_ids == ["r2"]

    def test_retracted_id_can_be_re_added(self):
        join = IncrementalSimJoin(threshold=0.5)
        join.add_batch(
            [Record("r1", {"t": "alpha beta"}), Record("r2", {"t": "alpha beta"})]
        )
        join.retract("r1")
        delta = join.add_batch([Record("r1", {"t": "alpha beta"})])
        assert [pair.key for pair in delta] == [("r1", "r2")]

    def test_unknown_or_double_retraction_rejected(self):
        join = IncrementalSimJoin(threshold=0.5)
        join.add_batch([Record("r1", {"t": "alpha"})])
        with pytest.raises(RecordError):
            join.retract("ghost")
        join.retract("r1")
        with pytest.raises(RecordError):
            join.retract("r1")

    @pytest.mark.parametrize("backend", ("prefix", "vectorized"))
    def test_retraction_equals_never_added(self, backend):
        """After retracting half the records, the surviving index joins a
        probe batch exactly like an index that never saw them."""
        dataset = RestaurantGenerator(
            record_count=40, duplicate_pairs=8, seed=7
        ).generate()
        records = list(dataset.store)
        resident, probes = records[:30], records[30:]

        full = IncrementalSimJoin(threshold=0.3, backend=backend)
        full.add_batch(resident)
        for record in resident[10:20]:
            full.retract(record.record_id)

        fresh = IncrementalSimJoin(threshold=0.3, backend=backend)
        fresh.add_batch(resident[:10] + resident[20:])

        got = {pair.key: pair.likelihood for pair in full.add_batch(probes)}
        want = {pair.key: pair.likelihood for pair in fresh.add_batch(probes)}
        assert got == want  # bit-identical

    def test_compaction_preserves_results(self):
        join = IncrementalSimJoin(threshold=0.3)
        join.COMPACT_MIN_TOMBSTONES = 4  # force the auto-compaction path
        records = [
            Record(f"r{i}", {"t": f"token{i % 5} shared common words"})
            for i in range(20)
        ]
        join.add_batch(records)
        for i in range(0, 16, 2):
            join.retract(f"r{i}")
        assert join.tombstone_count < 8  # auto-compaction fired along the way
        assert len(join) == 12
        fresh = IncrementalSimJoin(threshold=0.3)
        fresh.add_batch([record for i, record in enumerate(records) if i % 2 or i >= 16])
        probe = [Record("p1", {"t": "token1 shared common words"})]
        got = {pair.key: pair.likelihood for pair in join.add_batch(probe)}
        want = {pair.key: pair.likelihood for pair in fresh.add_batch(probe)}
        assert got == want

    def test_explicit_compact_drops_tombstones(self):
        join = IncrementalSimJoin(threshold=0.3)
        join.add_batch([Record(f"r{i}", {"t": "alpha beta"}) for i in range(6)])
        join.retract("r2")
        join.retract("r4")
        assert join.tombstone_count == 2
        assert join.compact() == 2
        assert join.tombstone_count == 0
        assert join.record_ids == ["r0", "r1", "r3", "r5"]


# ------------------------------------------------------------- union-find
class TestUnionFindDetach:
    def test_detach_dissolves_and_returns_survivors(self):
        uf = IncrementalUnionFind()
        for a, b in [("a", "b"), ("b", "c"), ("x", "y")]:
            uf.union(a, b)
        uf.clear_dirty()
        survivors = uf.detach(["b"])
        assert sorted(survivors) == ["a", "c"]
        assert "b" not in uf
        # Survivors come back as dirty singletons; untouched components stay clean.
        assert uf.component_count == 3
        assert uf.is_dirty("a") and uf.is_dirty("c")
        assert not uf.is_dirty("x")

    def test_detach_unknown_items_is_a_noop(self):
        uf = IncrementalUnionFind()
        uf.union("a", "b")
        assert uf.detach(["ghost"]) == []
        assert uf.connected("a", "b")

    def test_state_dict_round_trip(self):
        uf = IncrementalUnionFind()
        for a, b in [("a", "b"), ("b", "c"), ("x", "y")]:
            uf.union(a, b)
        uf.clear_dirty()
        uf.union("c", "d")
        clone = IncrementalUnionFind.from_state_dict(uf.state_dict())
        assert clone.find("a") == uf.find("a")
        assert clone.dirty_roots() == uf.dirty_roots()
        assert clone.components() == uf.components()


# ---------------------------------------------------------------- session
class TestSessionRetraction:
    def test_retraction_is_scoped_to_the_touched_component(self):
        island_a, island_b = two_islands()
        resolver = StreamingResolver(config=make_config(likelihood_threshold=0.5))
        resolver.add_truth([("a1", "a2"), ("a1", "a3"), ("a2", "a3"), ("b1", "b2")])
        resolver.add_batch(island_a + island_b)
        votes_b = resolver.votes_for("b1", "b2")
        before = resolver.snapshot()
        posterior_b = before.posteriors[("b1", "b2")]

        result = resolver.retract("a3")
        delta = result.delta
        assert delta.retracted_records == 1
        assert delta.invalidated_pairs == 2  # (a1,a3) and (a2,a3)
        assert delta.dirty_components == 1  # only island A was re-formed
        assert delta.clean_components == 1  # island B untouched
        assert delta.regenerated_hits == 0  # retraction never publishes HITs
        assert delta.crowdsourced_pairs == 0
        # Island B kept its votes and posterior bit-for-bit.
        assert resolver.votes_for("b1", "b2") == votes_b
        assert result.posteriors[("b1", "b2")] == posterior_b
        # The invalidated pairs are gone everywhere.
        for key in [("a1", "a3"), ("a2", "a3")]:
            assert key not in result.posteriors
            assert key not in result.likelihoods
            assert resolver.votes_for(*key) == []
        assert ("a1", "a2") in result.posteriors  # the surviving pair remains

    def test_retraction_matches_a_session_that_never_saw_the_record(self):
        dataset = RestaurantGenerator(
            record_count=60, duplicate_pairs=10, seed=13
        ).generate()
        records = list(dataset.store)
        victim = records[7].record_id

        with_retraction = StreamingResolver(config=make_config())
        with_retraction.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 17):
            with_retraction.add_batch(records[start : start + 17])
        after = with_retraction.retract(victim)

        survivors = [record for record in records if record.record_id != victim]
        never_saw = StreamingResolver(config=make_config())
        never_saw.add_truth(dataset.ground_truth)
        reference = never_saw.snapshot()
        for start in range(0, len(survivors), 17):
            reference = never_saw.add_batch(survivors[start : start + 17])

        # Same surviving candidates with bit-identical likelihoods, same
        # match set (votes are a pure function of the pair key, so the
        # never-retracted pairs aggregated identically).
        assert after.likelihoods == reference.likelihoods
        assert set(after.matches) == set(reference.matches)
        assert after.posteriors == reference.posteriors

    def test_retraction_splits_a_bridged_component(self):
        resolver = StreamingResolver(config=make_config(likelihood_threshold=0.3))
        left = Record("l1", {"t": "alpha beta gamma delta"})
        bridge = Record("m1", {"t": "alpha beta epsilon zeta"})
        right = Record("r1", {"t": "epsilon zeta eta theta"})
        resolver.add_truth([])
        resolver.add_batch([left, bridge, right])
        assert resolver.components.connected("l1", "r1")  # bridged via m1
        result = resolver.retract("m1")
        assert not resolver.components.connected("l1", "r1")
        assert result.delta.invalidated_pairs == 2
        assert resolver.candidate_count == 0

    def test_retract_unknown_record_raises(self):
        resolver = StreamingResolver(config=make_config())
        with pytest.raises(RecordError):
            resolver.retract("ghost")

    def test_provenance_tracks_discovery_coverage_and_votes(self):
        island_a, _ = two_islands()
        resolver = StreamingResolver(config=make_config(likelihood_threshold=0.5))
        resolver.add_truth([("a1", "a2")])
        resolver.add_batch(island_a)
        provenance = resolver.provenance.get("a1", "a2")
        assert provenance.discovered_batch == 1
        assert provenance.hit_ids and provenance.hit_ids[0].startswith("b1:")
        assert provenance.vote_count == resolver.config.assignments_per_hit
        assert resolver.provenance.pairs_of("a3") == {("a1", "a3"), ("a2", "a3")}


class TestSessionUpdate:
    def test_update_matches_a_session_built_with_the_new_version(self):
        dataset = RestaurantGenerator(
            record_count=50, duplicate_pairs=8, seed=23
        ).generate()
        records = list(dataset.store)
        revised = records[4].with_attributes(name="completely different bistro")

        updating = StreamingResolver(config=make_config())
        updating.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 13):
            updating.add_batch(records[start : start + 13])
        updated = updating.update(revised)
        assert updated.delta.retracted_records == 1

        replaced = [revised if r.record_id == revised.record_id else r for r in records]
        rebuilt = StreamingResolver(config=make_config())
        rebuilt.add_truth(dataset.ground_truth)
        reference = rebuilt.snapshot()
        for start in range(0, len(replaced), 13):
            reference = rebuilt.add_batch(replaced[start : start + 13])

        assert updated.likelihoods == reference.likelihoods
        assert set(updated.matches) == set(reference.matches)

    def test_update_unknown_record_raises(self):
        resolver = StreamingResolver(config=make_config())
        with pytest.raises(RecordError):
            resolver.update(Record("ghost", {"t": "boo"}))

    def test_update_without_text_change_preserves_matches(self):
        island_a, _ = two_islands()
        resolver = StreamingResolver(config=make_config(likelihood_threshold=0.5))
        resolver.add_truth([("a1", "a2"), ("a1", "a3"), ("a2", "a3")])
        before = resolver.add_batch(island_a)
        after = resolver.update(island_a[0])  # identical content
        assert set(after.matches) == set(before.matches)
        assert after.posteriors == before.posteriors
