"""Tests for evaluation metrics, the threshold table and report formatting."""

import pytest

from repro.evaluation.metrics import (
    average_precision,
    f1_score,
    precision_at_recall,
    precision_recall,
    precision_recall_curve,
    recall_at_threshold,
)
from repro.evaluation.reporting import format_pr_curve, format_table
from repro.evaluation.threshold_table import threshold_table


class TestPrecisionRecall:
    def test_basic_counts(self):
        predicted = [("a", "b"), ("c", "d"), ("e", "f")]
        truth = [("a", "b"), ("x", "y")]
        precision, recall = precision_recall(predicted, truth)
        assert precision == pytest.approx(1 / 3)
        assert recall == pytest.approx(1 / 2)

    def test_canonicalisation(self):
        precision, recall = precision_recall([("b", "a")], [("a", "b")])
        assert precision == 1.0 and recall == 1.0

    def test_empty_conventions(self):
        assert precision_recall([], [("a", "b")]) == (1.0, 0.0)
        assert precision_recall([("a", "b")], []) == (0.0, 1.0)

    def test_f1(self):
        assert f1_score([("a", "b")], [("a", "b")]) == 1.0
        assert f1_score([("a", "b")], [("c", "d")]) == 0.0


class TestCurves:
    def test_perfect_ranking_curve(self):
        truth = [("a", "b"), ("c", "d")]
        ranked = [("a", "b"), ("c", "d"), ("e", "f")]
        curve = precision_recall_curve(ranked, truth)
        assert curve[0] == (0.5, 1.0)
        assert curve[1] == (1.0, 1.0)
        assert curve[-1][1] < 1.0

    def test_average_precision_perfect_vs_poor(self):
        truth = [("a", "b"), ("c", "d")]
        good = [("a", "b"), ("c", "d"), ("e", "f"), ("g", "h")]
        poor = [("e", "f"), ("g", "h"), ("a", "b"), ("c", "d")]
        assert average_precision(good, truth) > average_precision(poor, truth)
        assert average_precision(good, truth) == 1.0

    def test_average_precision_no_truth(self):
        assert average_precision([("a", "b")], []) == 0.0

    def test_downsampling_keeps_endpoints(self):
        truth = [(f"a{i}", f"b{i}") for i in range(50)]
        ranked = truth + [("x", "y")]
        curve = precision_recall_curve(ranked, truth, points=10)
        assert len(curve) <= 12
        assert curve[-1][0] == pytest.approx(1.0)

    def test_precision_at_recall(self):
        curve = [(0.2, 1.0), (0.5, 0.9), (0.9, 0.6)]
        assert precision_at_recall(curve, 0.4) == 0.9
        assert precision_at_recall(curve, 0.95) == 0.0

    def test_recall_at_threshold(self):
        scored = {("a", "b"): 0.9, ("c", "d"): 0.4, ("e", "f"): 0.2}
        truth = [("a", "b"), ("c", "d")]
        assert recall_at_threshold(scored, truth, 0.5) == pytest.approx(0.5)
        assert recall_at_threshold(scored, truth, 0.1) == 1.0


class TestThresholdTable:
    def test_rows_are_monotone(self, small_restaurant):
        rows = threshold_table(small_restaurant, thresholds=(0.5, 0.3, 0.1))
        pair_counts = [row.total_pairs for row in rows]
        recalls = [row.recall for row in rows]
        assert pair_counts == sorted(pair_counts)  # smaller threshold -> more pairs
        assert recalls == sorted(recalls)

    def test_zero_threshold_row_is_full_candidate_space(self, small_restaurant):
        rows = threshold_table(small_restaurant, thresholds=(0.3, 0.0))
        zero_row = rows[-1]
        assert zero_row.threshold == 0.0
        assert zero_row.total_pairs == small_restaurant.total_pair_count()
        assert zero_row.recall == 1.0

    def test_matching_pairs_never_exceed_total(self, small_product):
        for row in threshold_table(small_product, thresholds=(0.4, 0.2)):
            assert row.matching_pairs <= row.total_pairs
            assert 0.0 <= row.recall <= 1.0

    def test_row_as_dict(self, small_restaurant):
        row = threshold_table(small_restaurant, thresholds=(0.4,))[0]
        payload = row.as_dict()
        assert set(payload) == {"threshold", "total_pairs", "matching_pairs", "recall"}


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        rows = [{"name": "two-tiered", "hits": 3, "ratio": 0.51234}]
        text = format_table(rows, ["name", "hits", "ratio"], title="demo")
        assert "demo" in text
        assert "two-tiered" in text
        assert "0.512" in text

    def test_format_table_missing_column(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "a" in text and "b" in text

    def test_format_pr_curve(self):
        curve = [(0.5, 1.0), (1.0, 0.8)]
        text = format_pr_curve(curve, "hybrid", recall_levels=(0.5, 1.0))
        assert "hybrid" in text
        assert "100.0%" in text
        assert "80.0%" in text
