"""Docs-site integrity tests (no mkdocs required).

CI builds the site with ``mkdocs build --strict``, but these checks run in
the tier-1 suite so documentation rot is caught on every local test run:
the nav must reference files that exist, internal links must resolve,
every ``::: module`` autodoc directive must import, and the operations
page must document every public ``WorkflowConfig`` knob.
"""

import dataclasses
import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


class _MkdocsLoader(yaml.SafeLoader):
    """SafeLoader that tolerates mkdocs' ``!!python/name:`` extension tags."""


_MkdocsLoader.add_multi_constructor(
    "tag:yaml.org,2002:python/name:",
    lambda loader, suffix, node: f"python/name:{suffix}",
)


def load_mkdocs_config():
    with open(MKDOCS_YML, "r", encoding="utf-8") as handle:
        return yaml.load(handle, Loader=_MkdocsLoader)


def nav_files(entries):
    """Flatten the mkdocs nav tree into page paths."""
    for entry in entries:
        if isinstance(entry, str):
            yield entry
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    yield value
                else:
                    yield from nav_files(value)


def doc_pages():
    return sorted(DOCS_DIR.rglob("*.md"))


class TestMkdocsConfig:
    def test_config_parses_and_has_the_essentials(self):
        config = load_mkdocs_config()
        assert config["site_name"]
        assert config["theme"]["name"] == "material"
        plugin_names = [
            plugin if isinstance(plugin, str) else next(iter(plugin))
            for plugin in config["plugins"]
        ]
        assert "search" in plugin_names and "mkdocstrings" in plugin_names

    def test_every_nav_entry_exists(self):
        config = load_mkdocs_config()
        for page in nav_files(config["nav"]):
            assert (DOCS_DIR / page).is_file(), f"nav references missing page {page}"

    def test_every_doc_page_is_in_the_nav(self):
        config = load_mkdocs_config()
        in_nav = set(nav_files(config["nav"]))
        on_disk = {str(page.relative_to(DOCS_DIR)) for page in doc_pages()}
        assert on_disk == in_nav


class TestInternalLinks:
    LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

    @pytest.mark.parametrize("page", doc_pages(), ids=lambda p: str(p.relative_to(DOCS_DIR)))
    def test_relative_links_resolve(self, page):
        text = page.read_text(encoding="utf-8")
        for target in self.LINK_PATTERN.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (page.parent / path_part).resolve()
            assert resolved.exists(), f"{page.name} links to missing {target}"


class TestAutodocDirectives:
    DIRECTIVE_PATTERN = re.compile(r"^:::\s+([\w.]+)", re.MULTILINE)

    def test_every_directive_imports(self):
        for page in doc_pages():
            for dotted in self.DIRECTIVE_PATTERN.findall(page.read_text(encoding="utf-8")):
                module_path, attribute = dotted, None
                try:
                    importlib.import_module(module_path)
                    continue
                except ImportError:
                    module_path, _, attribute = dotted.rpartition(".")
                module = importlib.import_module(module_path)
                assert hasattr(module, attribute), (
                    f"{page.name}: ::: {dotted} does not resolve"
                )


class TestKnobCoverage:
    def test_operations_page_documents_every_workflow_config_knob(self):
        from repro.core.config import WorkflowConfig

        operations = (DOCS_DIR / "operations.md").read_text(encoding="utf-8")
        missing = [
            field.name
            for field in dataclasses.fields(WorkflowConfig)
            if f"`{field.name}`" not in operations
        ]
        assert not missing, f"operations.md does not document: {missing}"

    def test_streaming_public_api_is_documented(self):
        import repro.streaming as streaming

        corpus = "\n".join(page.read_text(encoding="utf-8") for page in doc_pages())
        missing = [name for name in streaming.__all__ if name not in corpus]
        assert not missing, f"docs never mention: {missing}"

    def test_cli_commands_are_documented(self):
        from repro.cli import build_parser

        corpus = "\n".join(page.read_text(encoding="utf-8") for page in doc_pages())
        subparsers = next(
            action
            for action in build_parser()._actions
            if isinstance(action, __import__("argparse")._SubParsersAction)
        )
        missing = [name for name in subparsers.choices if name not in corpus]
        assert not missing, f"docs never mention CLI commands: {missing}"
