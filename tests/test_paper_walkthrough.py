"""Walkthrough test: reproduce the paper's running example end to end.

Covers Table 1, Example 1 / Figure 2 (machine pruning at threshold 0.3),
Section 3.2 (the optimal three-HIT cover for k=4), Example 2 (the
approximation algorithm needs more HITs), Example 3 / Figure 8 (the
two-tiered partition of the large connected component) and Example 4 /
Figure 9 (three comparisons for the HIT {r1, r2, r3, r7}).
"""

import pytest

from repro.datasets.paper_example import paper_example_matches, paper_example_store
from repro.graph.components import split_components_by_size
from repro.graph.graph import Graph
from repro.hit.approximation import ApproximationClusterGenerator
from repro.hit.base import ClusterBasedHIT
from repro.hit.comparisons import cluster_hit_comparisons
from repro.hit.packing import pack_components
from repro.hit.partitioning import partition_large_component
from repro.hit.two_tiered import TwoTieredClusterGenerator
from repro.similarity.record_similarity import JaccardRecordSimilarity
from repro.similarity.set_similarity import jaccard_similarity
from repro.simjoin.allpairs import all_pairs_similarity


@pytest.fixture(scope="module")
def store():
    return paper_example_store()


@pytest.fixture(scope="module")
def figure2_pairs(store):
    similarity = JaccardRecordSimilarity(attributes=["product_name"])
    return all_pairs_similarity(store, similarity=similarity, min_likelihood=0.3)


class TestSection2:
    def test_jaccard_values_from_section_2_1(self, store):
        """J(r1, r2) = 0.57 and J(r1, r3) = 0.25 as computed in the paper."""
        similarity = JaccardRecordSimilarity(attributes=["product_name"])
        assert similarity.similarity(store.get("r1"), store.get("r2")) == pytest.approx(0.571, abs=1e-3)
        assert similarity.similarity(store.get("r1"), store.get("r3")) == pytest.approx(0.25)

    def test_figure_2a_ten_pairs(self, figure2_pairs):
        """Example 1: the 0.3 threshold keeps exactly ten of the 36 pairs."""
        assert len(figure2_pairs) == 10

    def test_figure_2c_matching_pairs(self):
        assert paper_example_matches() == frozenset(
            {("r1", "r2"), ("r1", "r7"), ("r2", "r7"), ("r3", "r4")}
        )


class TestSection3:
    def test_optimal_three_hit_cover(self, figure2_pairs):
        """Section 3.2: H1, H2, H3 of size <= 4 cover all ten pairs."""
        hits = [
            ClusterBasedHIT("H1", ("r1", "r2", "r3", "r7")),
            ClusterBasedHIT("H2", ("r3", "r4", "r5", "r6")),
            ClusterBasedHIT("H3", ("r4", "r7", "r8", "r9")),
        ]
        covered = set()
        for hit in hits:
            covered |= hit.checkable_pairs(figure2_pairs.keys())
        assert covered == set(figure2_pairs.keys())


class TestSection4:
    def test_example_2_approximation_needs_more_hits(self, figure2_pairs):
        """The k-clique approximation needs clearly more than the optimal 3 HITs.

        The paper's Example 2 obtains seven; the exact count depends on the
        (arbitrary) vertex selection order, so we only require it to be
        strictly worse than the optimum and a valid cover.
        """
        batch = ApproximationClusterGenerator(cluster_size=4).generate(figure2_pairs)
        assert batch.is_valid_cover()
        assert batch.hit_count > 3


class TestSection5:
    def test_figure_5_components(self, figure2_pairs):
        graph = Graph.from_pair_set(figure2_pairs)
        small, large = split_components_by_size(graph, cluster_size=4)
        assert [sorted(component) for component in small] == [["r8", "r9"]]
        assert sorted(large[0]) == ["r1", "r2", "r3", "r4", "r5", "r6", "r7"]

    def test_example_3_partition(self, figure2_pairs):
        """The LCC partitions into {r3,r4,r5,r6}, {r1,r2,r3,r7} and {r4,r7}."""
        graph = Graph.from_pair_set(figure2_pairs)
        _small, large = split_components_by_size(graph, cluster_size=4)
        sccs = partition_large_component(graph, large[0], cluster_size=4)
        as_sets = {frozenset(scc) for scc in sccs}
        assert as_sets == {
            frozenset({"r3", "r4", "r5", "r6"}),
            frozenset({"r1", "r2", "r3", "r7"}),
            frozenset({"r4", "r7"}),
        }

    def test_section_5_3_packing(self):
        """Packing {r3..r6}, {r1,r2,r3,r7}, {r4,r7}, {r8,r9} needs 3 HITs (k=4)."""
        components = [
            ["r3", "r4", "r5", "r6"],
            ["r1", "r2", "r3", "r7"],
            ["r4", "r7"],
            ["r8", "r9"],
        ]
        for method in ("ffd", "branch-and-bound", "column-generation"):
            groups = pack_components(components, cluster_size=4, method=method)
            assert len(groups) == 3

    def test_two_tiered_end_to_end_three_hits(self, figure2_pairs):
        batch = TwoTieredClusterGenerator(cluster_size=4).generate(figure2_pairs)
        assert batch.hit_count == 3
        assert batch.is_valid_cover()


class TestSection6:
    def test_example_4_three_comparisons(self):
        """The HIT {r1, r2, r3, r7} with e1={r1,r2,r7}, e2={r3} needs 3 comparisons."""
        hit = ClusterBasedHIT("H1", ("r1", "r2", "r3", "r7"))
        comparisons = cluster_hit_comparisons(hit, paper_example_matches(), order="as-given")
        assert comparisons == 3

    def test_extreme_cases_of_section_6(self):
        """No duplicates -> n(n-1)/2; all duplicates -> n-1."""
        records = tuple(f"x{i}" for i in range(5))
        hit = ClusterBasedHIT("H", records)
        assert cluster_hit_comparisons(hit, []) == 10
        all_matches = [(records[0], other) for other in records[1:]]
        assert cluster_hit_comparisons(hit, all_matches) == 4
