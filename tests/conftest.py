"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datasets.paper_example import paper_example_matches, paper_example_store
from repro.datasets.product import ProductGenerator
from repro.datasets.restaurant import RestaurantGenerator
from repro.records.pairs import PairSet, RecordPair
from repro.similarity.record_similarity import JaccardRecordSimilarity
from repro.simjoin.allpairs import all_pairs_similarity


@pytest.fixture(scope="session")
def example_store():
    """The paper's Table-1 product table."""
    return paper_example_store()


@pytest.fixture(scope="session")
def example_matches():
    """Ground-truth matches of the Table-1 example."""
    return paper_example_matches()


@pytest.fixture(scope="session")
def example_pairs(example_store):
    """The ten candidate pairs of Figure 2(a): Jaccard on product_name >= 0.3."""
    similarity = JaccardRecordSimilarity(attributes=["product_name"])
    return all_pairs_similarity(example_store, similarity=similarity, min_likelihood=0.3)


@pytest.fixture(scope="session")
def small_restaurant():
    """A small Restaurant-style dataset (fast enough for unit tests)."""
    return RestaurantGenerator(record_count=120, duplicate_pairs=20, seed=3).generate()


@pytest.fixture(scope="session")
def small_product():
    """A small two-source Product-style dataset."""
    return ProductGenerator(
        shared_entities=60, extra_buy_duplicates=6, abt_only=8, buy_only=4, seed=5
    ).generate()


@pytest.fixture()
def simple_pairs():
    """A hand-built pair set with two connected components."""
    pairs = PairSet()
    pairs.add(RecordPair("a", "b", likelihood=0.9))
    pairs.add(RecordPair("b", "c", likelihood=0.8))
    pairs.add(RecordPair("a", "c", likelihood=0.7))
    pairs.add(RecordPair("d", "e", likelihood=0.6))
    return pairs
