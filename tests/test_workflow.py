"""Integration tests: the hybrid workflow, machine-only baselines, CrowdSQL."""

import pytest

from repro.core.baselines import SimJoinRanker, SVMRanker, human_only_hit_count
from repro.core.config import WorkflowConfig
from repro.core.crowdsql import crowd_equijoin
from repro.core.workflow import HybridWorkflow
from repro.crowd.platform import CrowdRunResult
from repro.crowd.worker import WorkerPool, Worker, WorkerProfile
from repro.datasets.base import Dataset
from repro.datasets.paper_example import paper_example_matches, paper_example_store
from repro.evaluation.metrics import precision_recall
from repro.records.pairs import PairSet, RecordPair
from repro.records.record import Record, RecordStore


@pytest.fixture(scope="module")
def example_dataset():
    return Dataset(
        name="paper-example",
        store=paper_example_store(),
        ground_truth=paper_example_matches(),
    )


def perfect_pool(size=9):
    """A pool of perfectly accurate workers for deterministic integration tests."""
    profile = WorkerProfile(name="perfect", accuracy=1.0)
    return WorkerPool([Worker(f"p{i}", profile, seed=i) for i in range(size)])


class TestWorkflowConfig:
    def test_defaults_valid(self):
        config = WorkflowConfig()
        assert config.hit_type == "cluster"
        assert config.cluster_generator == "two-tiered"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"likelihood_threshold": 1.5},
            {"hit_type": "triples"},
            {"cluster_size": 1},
            {"pairs_per_hit": 0},
            {"assignments_per_hit": 0},
            {"aggregation": "magic"},
            {"decision_threshold": 2.0},
            {"join_backend": "quantum"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkflowConfig(**kwargs)


class TestHybridWorkflowOnPaperExample:
    def test_end_to_end_reproduces_figure_2(self, example_dataset):
        """With perfect workers the workflow returns exactly the four matches."""
        config = WorkflowConfig(
            likelihood_threshold=0.3,
            cluster_size=4,
            similarity_attributes=["product_name"],
            seed=0,
        )
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(example_dataset)
        assert result.candidate_count == 10
        assert result.hit_count == 3
        assert sorted(result.matches) == sorted(example_dataset.ground_truth)
        assert result.cost == pytest.approx(3 * 3 * 0.025)

    def test_pair_based_workflow(self, example_dataset):
        config = WorkflowConfig(
            likelihood_threshold=0.3,
            hit_type="pair",
            pairs_per_hit=2,
            similarity_attributes=["product_name"],
        )
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(example_dataset)
        assert result.hit_count == 5
        assert sorted(result.matches) == sorted(example_dataset.ground_truth)

    def test_majority_aggregation(self, example_dataset):
        config = WorkflowConfig(
            likelihood_threshold=0.3,
            cluster_size=4,
            similarity_attributes=["product_name"],
            aggregation="majority",
        )
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(example_dataset)
        assert sorted(result.matches) == sorted(example_dataset.ground_truth)

    def test_recall_ceiling_reflects_pruning(self, example_dataset):
        config = WorkflowConfig(
            likelihood_threshold=0.5,
            cluster_size=4,
            similarity_attributes=["product_name"],
        )
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(example_dataset)
        # Threshold 0.5 keeps only (r1, r2): recall ceiling 1/4.
        assert result.recall_ceiling == pytest.approx(0.25)

    def test_ranked_pairs_cover_all_candidates(self, example_dataset):
        config = WorkflowConfig(
            likelihood_threshold=0.3, cluster_size=4, similarity_attributes=["product_name"]
        )
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(example_dataset)
        assert len(result.ranked_pairs) == result.candidate_count
        assert set(result.ranked_pairs) == set(result.likelihoods)

    def test_summary_keys(self, example_dataset):
        config = WorkflowConfig(likelihood_threshold=0.3, similarity_attributes=["product_name"])
        result = HybridWorkflow(config, worker_pool=perfect_pool()).resolve(example_dataset)
        summary = result.summary()
        assert {"candidates", "hits", "cost_dollars", "matches"} <= set(summary)


class TestHybridWorkflowOnSyntheticData:
    def test_restaurant_quality(self, small_restaurant):
        config = WorkflowConfig(likelihood_threshold=0.3, cluster_size=6, seed=3)
        workflow = HybridWorkflow(config)
        result = workflow.resolve(small_restaurant)
        precision, recall = precision_recall(result.matches, small_restaurant.ground_truth)
        assert precision > 0.8
        assert recall > 0.6
        assert result.hit_count < result.candidate_count

    def test_qualification_test_changes_latency(self, small_restaurant):
        base = HybridWorkflow(
            WorkflowConfig(likelihood_threshold=0.3, cluster_size=6, seed=3)
        ).resolve(small_restaurant)
        qt = HybridWorkflow(
            WorkflowConfig(
                likelihood_threshold=0.3, cluster_size=6, seed=3, use_qualification_test=True
            )
        ).resolve(small_restaurant)
        assert qt.latency.total_minutes > base.latency.total_minutes

    def test_product_cross_source_candidates(self, small_product):
        config = WorkflowConfig(likelihood_threshold=0.3, cluster_size=6, seed=1)
        workflow = HybridWorkflow(config, worker_pool=perfect_pool())
        result = workflow.resolve(small_product)
        assert result.candidate_count > 0
        precision, _recall = precision_recall(result.matches, small_product.ground_truth)
        assert precision > 0.9


class _FixedCandidateEstimator:
    """Estimator stub returning a hand-built candidate pair set."""

    name = "fixed"

    def __init__(self, pairs):
        self._pairs = pairs

    def estimate(self, store, min_likelihood=0.0, cross_sources=None):
        return PairSet(self._pairs)


class _OmittingPlatform:
    """Platform stub whose crowd votes omit one of the candidate pairs.

    This is the cluster-HIT failure mode the ranking fallback exists for: a
    candidate pair that no published HIT ended up covering produces no
    votes, so aggregation yields no posterior for it.
    """

    def __init__(self, confirmed, rejected):
        self.confirmed = confirmed
        self.rejected = rejected

    def publish(self, batch, true_matches, candidate_pairs=None):
        votes = [(f"w{i}", self.confirmed, True) for i in range(3)]
        votes += [(f"w{i}", self.rejected, False) for i in range(3)]
        return CrowdRunResult(
            votes=votes,
            hit_count=batch.hit_count,
            assignment_seconds=[30.0] * 6,
        )


class TestRankingFallback:
    """Regression: a cluster HIT omits a high-likelihood candidate pair.

    Unvoted pairs must rank by machine likelihood *below* crowd-confirmed
    matches but *above* crowd-rejected pairs — a crowd rejection (posterior
    ~0) is strictly stronger evidence against a match than the machine's
    0.95 likelihood is for one.
    """

    def _dataset(self):
        store = RecordStore()
        for i in range(1, 5):
            store.add(Record(f"r{i}", {"name": f"record {i}"}))
        return Dataset(name="tiny", store=store, ground_truth=frozenset())

    def _resolve(self):
        candidates = [
            RecordPair("r1", "r2", likelihood=0.60),  # crowd-confirmed
            RecordPair("r2", "r3", likelihood=0.95),  # omitted by the HITs
            RecordPair("r3", "r4", likelihood=0.40),  # crowd-rejected
        ]
        workflow = HybridWorkflow(
            WorkflowConfig(likelihood_threshold=0.2),
            estimator=_FixedCandidateEstimator(candidates),
            platform=_OmittingPlatform(confirmed=("r1", "r2"), rejected=("r3", "r4")),
        )
        return workflow.resolve(self._dataset())

    def test_unvoted_pair_ranks_between_confirmed_and_rejected(self):
        result = self._resolve()
        assert ("r2", "r3") not in result.posteriors
        assert result.ranked_pairs == [("r1", "r2"), ("r2", "r3"), ("r3", "r4")]

    def test_unvoted_pair_is_not_a_match(self):
        result = self._resolve()
        assert result.matches == [("r1", "r2")]


class TestBaselines:
    def test_simjoin_ranker_orders_by_likelihood(self, small_restaurant):
        ranked = SimJoinRanker(min_likelihood=0.2).rank(small_restaurant)
        assert len(ranked) > 0
        # The top-ranked pairs should be dominated by true matches.
        top = ranked[: max(5, len(small_restaurant.ground_truth) // 2)]
        hits = sum(1 for key in top if key in small_restaurant.ground_truth)
        assert hits / len(top) > 0.6

    def test_svm_ranker_runs(self, small_restaurant):
        ranked = SVMRanker(min_likelihood=0.2, training_size=80, repetitions=1).rank(small_restaurant)
        assert len(ranked) > 0

    def test_human_only_hit_counts_match_introduction(self):
        # 10,000 records with k=20: ~5,000,000 pair-based and 250,000 cluster-based HITs.
        assert human_only_hit_count(10_000, 10) == pytest.approx(5_000_000, rel=0.01)
        assert human_only_hit_count(10_000, 20, cluster_based=True) == pytest.approx(125_000, rel=0.01)
        with pytest.raises(ValueError):
            human_only_hit_count(1, 10)


class TestCrowdSQL:
    def test_crowd_equijoin_on_paper_example(self):
        store = paper_example_store()
        matches = crowd_equijoin(
            store,
            attribute="product_name",
            ground_truth=paper_example_matches(),
            likelihood_threshold=0.3,
            cluster_size=4,
            seed=1,
        )
        assert ("r1", "r2") in matches
        assert all(id_a < id_b for id_a, id_b in matches)
        # The simulated crowd is imperfect, but most returned pairs are real.
        correct = len(set(matches) & paper_example_matches())
        assert correct >= len(matches) - 1
