"""Tests for the dataset generators and the Dataset container."""

import random

import pytest

from repro.datasets.base import Dataset
from repro.datasets.corruption import (
    abbreviate_tokens,
    corrupt_dataset,
    corrupt_record,
    drop_random_token,
    introduce_typo,
    pick_subset,
    shuffle_tokens,
    swap_random_tokens,
)
from repro.etl.registry import load_corpus
from repro.datasets.paper_example import paper_example_matches, paper_example_store
from repro.datasets.product import ProductGenerator
from repro.datasets.product_dup import ProductDupGenerator
from repro.datasets.restaurant import RestaurantGenerator
from repro.records.record import Record, RecordStore


class TestCorruption:
    def setup_method(self):
        self.rng = random.Random(0)

    def test_swap_random_tokens_preserves_token_multiset(self):
        text = "apple ipod touch 8gb black"
        swapped = swap_random_tokens(text, self.rng)
        assert sorted(swapped.split()) == sorted(text.split())

    def test_swap_single_token_noop(self):
        assert swap_random_tokens("apple", self.rng) == "apple"

    def test_drop_random_token(self):
        text = "a b c"
        dropped = drop_random_token(text, self.rng)
        assert len(dropped.split()) == 2
        assert drop_random_token("a", self.rng) == "a"

    def test_introduce_typo_changes_one_token(self):
        text = "golden dragon cafe"
        typoed = introduce_typo(text, self.rng)
        assert typoed != text
        assert len(typoed.split()) == 3

    def test_introduce_typo_skips_short_tokens(self):
        assert introduce_typo("a b c", self.rng) == "a b c"

    def test_abbreviate_tokens(self):
        text = "55 east street"
        abbreviated = abbreviate_tokens(text, {"street": "st", "east": "e"}, self.rng, probability=1.0)
        assert abbreviated == "55 e st"

    def test_shuffle_and_subset(self):
        tokens = ["a", "b", "c", "d"]
        subset = pick_subset(tokens, 0.5, self.rng)
        assert 1 <= len(subset) <= 4
        assert set(subset) <= set(tokens)
        shuffled = shuffle_tokens("a b c d", self.rng)
        assert sorted(shuffled.split()) == tokens


class TestCorruptDataset:
    """Id-stable corruption of whole datasets (ETL corpora included).

    Regression: earlier corruption helpers operated on bare text and left
    id handling to each caller, which could produce corrupted variants
    whose gold pairs referenced regenerated ids.  ``corrupt_dataset`` owns
    the invariant now — these tests pin it.
    """

    def test_gold_pairs_stay_valid_on_etl_corpus(self):
        dataset = load_corpus("abt-buy")
        corrupted = corrupt_dataset(dataset, seed=3, fraction=0.5)
        assert corrupted.ground_truth == dataset.ground_truth
        resident = set(corrupted.store.record_ids)
        for id_a, id_b in corrupted.ground_truth:
            assert id_a in resident and id_b in resident
        assert sorted(corrupted.store.record_ids) == sorted(dataset.store.record_ids)

    def test_corruption_is_a_function_of_seed_and_id(self):
        """Same (seed, record) → same perturbation, regardless of order/subset."""
        dataset = load_corpus("abt-buy")
        records = list(dataset.store)
        forward = {r.record_id: corrupt_record(r, 11, ("swap", "typo")) for r in records}
        backward = {
            r.record_id: corrupt_record(r, 11, ("swap", "typo"))
            for r in reversed(records)
        }
        for record_id, record in forward.items():
            assert record.attributes == backward[record_id].attributes

    def test_whole_dataset_corruption_deterministic(self):
        dataset = load_corpus("amazon-google")
        a = corrupt_dataset(dataset, seed=5, fraction=0.3)
        b = corrupt_dataset(dataset, seed=5, fraction=0.3)
        assert [r.attributes for r in a.store] == [r.attributes for r in b.store]
        changed = sum(
            1
            for original, variant in zip(dataset.store, a.store)
            if original.attributes != variant.attributes
        )
        assert 0 < changed < dataset.record_count
        assert a.metadata["corruption"]["corrupted_records"] >= changed

    def test_corrupted_records_keep_id_and_source(self):
        dataset = load_corpus("abt-buy")
        corrupted = corrupt_dataset(dataset, seed=1, fraction=1.0)
        for original, variant in zip(dataset.store, corrupted.store):
            assert variant.record_id == original.record_id
            assert variant.source == original.source

    def test_invalid_arguments_rejected(self):
        dataset = load_corpus("abt-buy")
        with pytest.raises(ValueError):
            corrupt_dataset(dataset, fraction=1.5)
        with pytest.raises(ValueError):
            corrupt_dataset(dataset, corruptions=("swap", "shred"))


class TestDatasetContainer:
    def test_ground_truth_must_reference_known_records(self):
        store = RecordStore.from_records([Record("r1", {"n": "a"}), Record("r2", {"n": "b"})])
        with pytest.raises(ValueError):
            Dataset(name="bad", store=store, ground_truth=frozenset({("r1", "r9")}))

    def test_is_match_and_counts(self):
        store = RecordStore.from_records([Record("r1", {"n": "a"}), Record("r2", {"n": "a"})])
        dataset = Dataset(name="tiny", store=store, ground_truth=frozenset({("r2", "r1")}))
        assert dataset.is_match("r1", "r2")
        assert dataset.match_count == 1
        assert dataset.total_pair_count() == 1

    def test_entity_groups_transitive(self):
        store = RecordStore.from_records([Record(f"r{i}", {"n": str(i)}) for i in range(4)])
        dataset = Dataset(
            name="tiny", store=store, ground_truth=frozenset({("r0", "r1"), ("r1", "r2")})
        )
        sizes = sorted(len(group) for group in dataset.entity_groups())
        assert sizes == [1, 3]


class TestPaperExample:
    def test_store_shape(self):
        store = paper_example_store()
        assert len(store) == 9
        assert store.attribute_names() == ["product_name", "price"]

    def test_matches(self):
        matches = paper_example_matches()
        assert ("r1", "r2") in matches
        assert ("r3", "r4") in matches
        assert len(matches) == 4


class TestRestaurantGenerator:
    def test_record_and_match_counts(self):
        dataset = RestaurantGenerator(record_count=200, duplicate_pairs=30, seed=1).generate()
        assert dataset.record_count == 200
        assert dataset.match_count == 30
        assert dataset.store.attribute_names() == ["name", "address", "city", "type"]

    def test_deterministic_for_seed(self):
        a = RestaurantGenerator(record_count=100, duplicate_pairs=10, seed=5).generate()
        b = RestaurantGenerator(record_count=100, duplicate_pairs=10, seed=5).generate()
        assert [r.as_dict() for r in a.store] == [r.as_dict() for r in b.store]
        assert a.ground_truth == b.ground_truth

    def test_different_seeds_differ(self):
        a = RestaurantGenerator(record_count=100, duplicate_pairs=10, seed=1).generate()
        b = RestaurantGenerator(record_count=100, duplicate_pairs=10, seed=2).generate()
        assert [r.as_dict() for r in a.store] != [r.as_dict() for r in b.store]

    def test_duplicates_are_textually_similar(self, small_restaurant):
        from repro.similarity.record_similarity import JaccardRecordSimilarity

        similarity = JaccardRecordSimilarity()
        values = [
            similarity.similarity(small_restaurant.store.get(a), small_restaurant.store.get(b))
            for a, b in small_restaurant.ground_truth
        ]
        assert sum(value >= 0.3 for value in values) / len(values) > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RestaurantGenerator(record_count=10, duplicate_pairs=6)


class TestProductGenerator:
    def test_two_source_structure(self, small_product):
        assert small_product.cross_sources == ("abt", "buy")
        abt = small_product.store.records_from_source("abt")
        buy = small_product.store.records_from_source("buy")
        assert len(abt) > 0 and len(buy) > 0
        assert len(abt) + len(buy) == small_product.record_count

    def test_matches_are_cross_source(self, small_product):
        for id_a, id_b in small_product.ground_truth:
            sources = {
                small_product.store.get(id_a).source,
                small_product.store.get(id_b).source,
            }
            assert sources == {"abt", "buy"}

    def test_match_count_formula(self):
        dataset = ProductGenerator(
            shared_entities=50, extra_buy_duplicates=7, abt_only=5, buy_only=3, seed=9
        ).generate()
        assert dataset.match_count == 57
        assert len(dataset.store.records_from_source("abt")) == 55
        assert len(dataset.store.records_from_source("buy")) == 60

    def test_deterministic(self):
        a = ProductGenerator(shared_entities=30, extra_buy_duplicates=3, seed=2).generate()
        b = ProductGenerator(shared_entities=30, extra_buy_duplicates=3, seed=2).generate()
        assert a.ground_truth == b.ground_truth

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProductGenerator(shared_entities=0)
        with pytest.raises(ValueError):
            ProductGenerator(shared_entities=5, extra_buy_duplicates=9)
        with pytest.raises(ValueError):
            ProductGenerator(hard_fraction=2.0)


class TestProductDupGenerator:
    def test_construction_matches_paper(self):
        dataset = ProductDupGenerator(
            base_records=40, max_duplicates=9, seed=1, product_scale=0.1
        ).generate()
        # 40 base records plus up to 9 duplicates each.
        assert 40 <= dataset.record_count <= 40 * 10
        # Every match shares the same token multiset as its base (token swap only).
        for id_a, id_b in list(dataset.ground_truth)[:50]:
            tokens_a = sorted(dataset.store.get(id_a).get("name").split())
            tokens_b = sorted(dataset.store.get(id_b).get("name").split())
            assert tokens_a == tokens_b

    def test_duplicate_heavy(self):
        dataset = ProductDupGenerator(base_records=60, seed=2, product_scale=0.1).generate()
        # With U[0,9] duplicates per base record the expected number of matching
        # pairs is ~16.5 per base record; require it to be clearly duplicate-heavy.
        assert dataset.match_count > 5 * 60 / 2

    def test_base_records_bound(self):
        with pytest.raises(ValueError):
            ProductDupGenerator(base_records=10_000, product_scale=0.05).generate()

    def test_deterministic(self):
        a = ProductDupGenerator(base_records=20, seed=3, product_scale=0.1).generate()
        b = ProductDupGenerator(base_records=20, seed=3, product_scale=0.1).generate()
        assert a.ground_truth == b.ground_truth
