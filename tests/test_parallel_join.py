"""Property tests for the sharded parallel join and the columnar CSR build.

The central contract of :mod:`repro.simjoin.parallel`: for *any* worker
count (including 1 and more workers than shards), any threshold, any
measure and any store, :class:`ParallelSimJoin` returns **bit-identical**
pair sets and likelihoods to the serial
:class:`~repro.simjoin.vectorized.VectorizedSimJoin` — asserted with exact
``==`` on the floats, not a tolerance.  The columnar index builders must
produce matrices whose intersection counts (``X @ X.T``) are identical to
the legacy per-record loop's, which is the invariant every similarity value
rests on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import WORDS as _WORDS
from strategies import random_stores, similarity_measures

from repro.core.config import WorkflowConfig
from repro.core.workflow import HybridWorkflow
from repro.datasets.restaurant import RestaurantGenerator
from repro.records.record import Record, RecordStore
from repro.simjoin.backend import (
    AUTO_PARALLEL_MIN_RECORDS,
    auto_backend_name,
    resolve_backend,
)
from repro.simjoin.columnar import (
    columnar_csr_arrays,
    extend_vocabulary_csr_arrays,
    per_record_csr_arrays,
)
from repro.simjoin.parallel import ParallelSimJoin, shard_bounds
from repro.simjoin.pool import (
    DEFAULT_POOL_MODE,
    POOL_MODES,
    active_pools,
    resolve_pool_mode,
    shared_pool,
    shutdown_pools,
)
from repro.simjoin.vectorized import HAVE_SCIPY, VectorizedSimJoin
from repro.streaming.incremental_join import IncrementalSimJoin
from repro.streaming.session import resolve_stream

pytestmark = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")

if HAVE_SCIPY:
    from scipy import sparse


def pair_items(pairs):
    """Canonical (key, likelihood) list for exact set comparison."""
    return sorted((pair.key, pair.likelihood) for pair in pairs)


class TestParallelEqualsVectorized:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        store=random_stores(),
        threshold=st.sampled_from((0.0, 0.3, 0.7)),
        measure=similarity_measures,
        workers=st.sampled_from((1, 2, 3, 8)),
    )
    def test_property_bit_identical_self_join(self, store, threshold, measure, workers):
        # block_size=2 forces many shards even on tiny stores, so the pool
        # path (not just the workers<=1 degenerate case) is exercised.
        serial = VectorizedSimJoin(threshold, measure=measure, block_size=2).join(store)
        parallel = ParallelSimJoin(
            threshold, measure=measure, block_size=2, workers=workers
        ).join(store)
        assert pair_items(parallel) == pair_items(serial)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        store=random_stores(with_sources=True),
        threshold=st.sampled_from((0.0, 0.5)),
        workers=st.sampled_from((1, 2, 6)),
    )
    def test_property_bit_identical_cross_source(self, store, threshold, workers):
        serial = VectorizedSimJoin(threshold, block_size=2).join(
            store, cross_sources=("abt", "buy")
        )
        parallel = ParallelSimJoin(threshold, block_size=2, workers=workers).join(
            store, cross_sources=("abt", "buy")
        )
        assert pair_items(parallel) == pair_items(serial)

    @pytest.mark.parametrize("workers", (1, 2, 5, 64))
    def test_restaurant_dataset_bit_identical(self, workers):
        dataset = RestaurantGenerator(
            record_count=300, duplicate_pairs=40, seed=3
        ).generate()
        serial = VectorizedSimJoin(0.3, block_size=64).join(dataset.store)
        parallel = ParallelSimJoin(0.3, block_size=64, workers=workers).join(
            dataset.store
        )
        # workers=64 is far more workers than the ~5 row blocks: the extra
        # workers idle, the result must not change.
        assert pair_items(parallel) == pair_items(serial)

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ParallelSimJoin(workers=-1)
        assert ParallelSimJoin(workers=0).effective_workers() >= 1
        assert ParallelSimJoin(workers=7).effective_workers() == 7

    def test_single_shard_store_uses_serial_path(self):
        # Default block size >> store size: one shard, no pool to pay for.
        store = RecordStore()
        store.add(Record("a", {"name": "apple ipad"}))
        store.add(Record("b", {"name": "apple ipad"}))
        pairs = ParallelSimJoin(0.5, workers=8).join(store)
        assert pair_items(pairs) == [(("a", "b"), 1.0)]


class TestShardBounds:
    @given(
        count=st.integers(min_value=0, max_value=500),
        workers=st.integers(min_value=1, max_value=16),
        block_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounds_partition_the_row_range(self, count, workers, block_size):
        bounds = shard_bounds(count, workers, block_size)
        if count == 0:
            assert bounds == []
            return
        assert bounds[0][0] == 0
        assert bounds[-1][1] == count
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start  # contiguous, disjoint
        assert all(start < stop for start, stop in bounds)


class TestAutoHeuristic:
    def test_parallel_selected_for_large_multicore_stores(self):
        assert (
            auto_backend_name(AUTO_PARALLEL_MIN_RECORDS, 0.3, workers=4) == "parallel"
        )
        assert auto_backend_name(AUTO_PARALLEL_MIN_RECORDS - 1, 0.3, workers=4) == "vectorized"
        # One worker can never win back the pool cost.
        assert auto_backend_name(AUTO_PARALLEL_MIN_RECORDS, 0.3, workers=1) == "vectorized"

    def test_resolve_backend_threads_workers(self):
        engine = resolve_backend("parallel", workers=3)
        assert engine.workers == 3
        auto = resolve_backend(
            "auto",
            record_count=AUTO_PARALLEL_MIN_RECORDS,
            threshold=0.3,
            workers=2,
        )
        assert auto.name == "parallel"
        assert auto.workers == 2


# ------------------------------------------------------------- reused pool
class TestReusedPool:
    """The long-lived pool: same workers across batches, same answers."""

    def _halves(self, seed=5):
        dataset = RestaurantGenerator(
            record_count=200, duplicate_pairs=30, seed=seed
        ).generate()
        records = list(dataset.store)
        halves = []
        for chunk in (records[:100], records[100:]):
            store = RecordStore()
            for record in chunk:
                store.add(record)
            halves.append(store)
        return halves

    def test_pool_mode_resolution_and_validation(self):
        assert resolve_pool_mode(None) == DEFAULT_POOL_MODE
        for mode in POOL_MODES:
            assert resolve_pool_mode(mode) == mode
        with pytest.raises(ValueError):
            resolve_pool_mode("threads")
        with pytest.raises(ValueError):
            ParallelSimJoin(pool_mode="threads")

    def test_worker_pids_stable_across_batches(self):
        """The regression the reused pool exists for: consecutive batches
        must land on the *same* worker processes, not a fresh fork each."""
        first, second = self._halves()
        join = ParallelSimJoin(0.3, block_size=8, workers=2, pool_mode="reused")
        join.join(first)
        pids_after_first = tuple(shared_pool(2).worker_pids())
        join.join(second)
        pids_after_second = tuple(shared_pool(2).worker_pids())
        assert pids_after_first == pids_after_second
        assert len(set(pids_after_first)) == 2
        assert all(pid != 0 for pid in pids_after_first)

    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        store=random_stores(),
        threshold=st.sampled_from((0.0, 0.3, 0.7)),
        workers=st.sampled_from((2, 3)),
    )
    def test_property_reused_pool_bit_identical_to_fork(self, store, threshold, workers):
        reused = ParallelSimJoin(
            threshold, block_size=2, workers=workers, pool_mode="reused"
        ).join(store)
        fork = ParallelSimJoin(
            threshold, block_size=2, workers=workers, pool_mode="fork"
        ).join(store)
        assert pair_items(reused) == pair_items(fork)

    def test_no_leaked_shared_memory_blocks(self):
        """Payload blocks are unlinked as soon as the map returns."""
        import glob

        first, second = self._halves(seed=21)
        join = ParallelSimJoin(0.3, block_size=8, workers=2, pool_mode="reused")
        join.join(first)
        join.join(second)
        assert glob.glob("/dev/shm/repro-shard-*") == []

    def test_shutdown_pools_releases_workers(self):
        first, _second = self._halves(seed=23)
        ParallelSimJoin(0.3, block_size=8, workers=2, pool_mode="reused").join(first)
        assert active_pools()
        shutdown_pools()
        assert not active_pools()
        # The registry recovers transparently on the next join.
        pairs = ParallelSimJoin(
            0.3, block_size=8, workers=2, pool_mode="reused"
        ).join(first)
        assert len(active_pools()) == 1
        assert pair_items(pairs) == pair_items(
            VectorizedSimJoin(0.3, block_size=8).join(first)
        )

    def test_pool_children_metrics_fold_into_parent_snapshot(self):
        """Shard timings report the reused workers' PIDs and land in the
        parent registry (children cannot export — their obs copy is inert)."""
        from repro import obs

        first, _second = self._halves(seed=29)
        obs.activate()
        try:
            ParallelSimJoin(0.3, block_size=8, workers=2, pool_mode="reused").join(first)
            snapshot = obs.snapshot()
        finally:
            obs.deactivate()
        pool_pids = set(shared_pool(2).worker_pids())
        shard_count = snapshot.counter_total("simjoin_parallel_shards_total", kind="self")
        assert shard_count > 0
        timings = snapshot.get("simjoin_parallel_shard_seconds")
        assert timings is not None
        workers_seen = {
            sample["labels"]["worker"]
            for sample in timings["samples"]
            if sample["labels"].get("kind") == "self"
        }
        assert workers_seen  # at least one worker reported a timing
        assert workers_seen <= {str(pid) for pid in pool_pids}
        assert (
            snapshot.histogram_count("simjoin_parallel_shard_seconds", kind="self")
            == shard_count
        )


# ---------------------------------------------------------- columnar build
def _gram(indices, indptr, width):
    matrix = sparse.csr_matrix(
        (np.ones(len(indices), dtype=np.int64), indices, indptr),
        shape=(len(indptr) - 1, max(1, width)),
    )
    return (matrix @ matrix.T).toarray()


class TestColumnarBuild:
    @given(token_sets=st.lists(st.lists(st.sampled_from(_WORDS), max_size=6).map(set), max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_intersection_counts_match_per_record_loop(self, token_sets):
        token_sets = [sorted(tokens) for tokens in token_sets]
        columnar = columnar_csr_arrays(token_sets)
        legacy = per_record_csr_arrays(token_sets)
        assert columnar[1].tolist() == legacy[1].tolist()  # same indptr
        assert columnar[2] == legacy[2]  # same vocabulary size
        # Column order differs (sorted vs first-seen), but every pairwise
        # intersection count — all any similarity uses — is identical.
        assert np.array_equal(
            _gram(*columnar), _gram(legacy[0], legacy[1], legacy[2])
        )

    @given(
        token_sets=st.lists(
            st.lists(st.sampled_from(_WORDS), max_size=5).map(set), max_size=12
        ),
        split=st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_incremental_vocabulary_matches_one_shot(self, token_sets, split):
        token_sets = [sorted(tokens) for tokens in token_sets]
        split = min(split, len(token_sets))
        vocab = {}
        first_idx, first_ptr = extend_vocabulary_csr_arrays(token_sets[:split], vocab)
        second_idx, second_ptr = extend_vocabulary_csr_arrays(token_sets[split:], vocab)
        merged_idx = np.concatenate([first_idx, second_idx])
        merged_ptr = np.concatenate([first_ptr, second_ptr[1:] + first_ptr[-1]])
        one_shot = columnar_csr_arrays(token_sets)
        assert len(vocab) == one_shot[2]
        assert merged_ptr.tolist() == one_shot[1].tolist()
        assert np.array_equal(
            _gram(merged_idx, merged_ptr, len(vocab)), _gram(*one_shot)
        )

    def test_empty_inputs(self):
        indices, indptr, width = columnar_csr_arrays([])
        assert len(indices) == 0 and indptr.tolist() == [0] and width == 0
        indices, indptr, width = columnar_csr_arrays([set(), set()])
        assert len(indices) == 0 and indptr.tolist() == [0, 0, 0] and width == 0


# ---------------------------------------------------------- streaming layer
class TestStreamingWithWorkers:
    def test_incremental_join_workers_bit_identical(self):
        dataset = RestaurantGenerator(
            record_count=200, duplicate_pairs=30, seed=9
        ).generate()
        records = list(dataset.store)
        joins = {
            workers: IncrementalSimJoin(
                threshold=0.3, backend="vectorized", block_size=8, workers=workers
            )
            for workers in (1, 3)
        }
        for start in range(0, len(records), 40):
            batch = records[start : start + 40]
            deltas = {
                workers: join.add_batch(batch) for workers, join in joins.items()
            }
            assert pair_items(deltas[3]) == pair_items(deltas[1])

    def test_auto_backend_retires_inverted_index_once_csr_takes_over(self):
        """Past the vectorized cutoff the probe path is unreachable forever,
        so the duplicate inverted index must stop growing and be dropped."""
        from repro.simjoin.backend import AUTO_VECTORIZED_MIN_RECORDS

        join = IncrementalSimJoin(threshold=0.4)
        assert join._maintain_inverted
        records = [
            Record(f"r{i}", {"name": f"token{i} shared"})
            for i in range(AUTO_VECTORIZED_MIN_RECORDS + 10)
        ]
        join.add_batch(records[:AUTO_VECTORIZED_MIN_RECORDS])
        assert not join._maintain_inverted
        assert not join._inverted
        # Later batches still join correctly through the CSR product.
        delta = join.add_batch(records[AUTO_VECTORIZED_MIN_RECORDS:])
        assert not join._inverted
        assert all(pair.likelihood >= 0.4 for pair in delta)

    def test_streaming_with_join_workers_equals_one_shot_resolve(self):
        dataset = RestaurantGenerator(
            record_count=90, duplicate_pairs=15, seed=11
        ).generate()
        config = WorkflowConfig(
            likelihood_threshold=0.35,
            join_backend="parallel",
            join_workers=2,
            vote_mode="per-pair",
            aggregation="majority",
            seed=11,
        )
        one_shot = HybridWorkflow(config).resolve(dataset)
        stream = resolve_stream(dataset, config=config, batch_size=23)
        assert stream.likelihoods == one_shot.likelihoods
        assert stream.posteriors == one_shot.posteriors
        assert set(stream.matches) == set(one_shot.matches)
        assert stream.ranked_pairs == one_shot.ranked_pairs
