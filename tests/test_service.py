"""Tests for the resolution service (repro.service).

The central contract: a session hosted behind the HTTP API produces —
event for event — results **bit-identical** to a standalone
:class:`~repro.streaming.StreamingResolver` replaying the same schedule,
no matter how many sessions run concurrently, and no matter whether the
server crashed (SIGKILL) and restored mid-schedule.  On top of that the
HTTP surface must fail loudly and precisely: every error path has an
exact status code and a machine-readable error code, and a full shard
queue answers 429 with a Retry-After instead of buffering without bound.
"""

import asyncio
import os
import subprocess
import sys
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from strategies import drive, event_schedules

from repro import obs
from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.service import ResolutionService, ServiceClient, ServiceClientError
from repro.service.sessions import encode_result
from repro.service.shards import ShardExecutor, shard_of
from repro.streaming import StreamingResolver
from repro.streaming.persistence import encode_record

ROOT = Path(__file__).resolve().parent.parent


def make_config(**overrides):
    base = dict(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    base.update(overrides)
    return WorkflowConfig(**base)


#: The service-side twin of :func:`make_config` (vote_mode is forced
#: server-side, so it is not part of the wire payload).
SERVICE_CONFIG = {"likelihood_threshold": 0.35, "aggregation": "majority"}


def make_dataset(seed, record_count=40, duplicate_pairs=8):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


def fresh_id(prefix):
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


class ServiceThread:
    """An in-process service on its own event loop thread (ephemeral port)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("port", 0)
        self.service = ResolutionService(**kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> ServiceClient:
        self.thread.start()
        assert self._ready.wait(30), "service failed to start"
        return ServiceClient("127.0.0.1", self.service.port)

    def submit(self, coroutine):
        """Schedule a coroutine on the service loop; returns a Future."""
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop)

    def stop(self):
        self.submit(self.service.stop()).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)


@pytest.fixture(scope="module")
def service():
    runner = ServiceThread(shard_count=2, queue_depth=16)
    client = runner.start()
    yield runner, client
    runner.stop()


def drive_over_http(client, session_id, records, schedule, mirror, cursor=0):
    """Apply a :func:`strategies.event_schedules` schedule over HTTP.

    Mirrors :func:`strategies.drive` exactly — ``mirror`` tracks the
    resident records client-side (the HTTP API does not expose record
    ids), so retract/update target the same records ``drive`` would.
    """
    for action, argument in schedule:
        if action == "batch":
            batch = records[cursor : cursor + argument]
            cursor += argument
            if batch:
                client.append(session_id, [encode_record(r) for r in batch])
                mirror.update({record.record_id: record for record in batch})
        elif action == "retract":
            resident = sorted(mirror)
            if resident:
                record_id = resident[argument % len(resident)]
                client.retract(session_id, record_id)
                del mirror[record_id]
        elif action == "update":
            resident = sorted(mirror)
            if resident:
                record_id = resident[argument % len(resident)]
                revised = mirror[record_id].with_attributes(
                    name=f"revision {argument}"
                )
                client.update(session_id, encode_record(revised))
                mirror[record_id] = revised
        elif action == "flush":
            client.flush(session_id)
    return cursor


def standalone_result(records, truth, schedule):
    """The schedule replayed on a resolver that never saw the network."""
    resolver = StreamingResolver(config=make_config())
    if truth:
        resolver.add_truth(truth)
    drive(resolver, records, schedule)
    return encode_result(resolver.snapshot())


# ------------------------------------------------------------ HTTP surface
class TestHttpSurface:
    def test_health(self, service):
        _runner, client = service
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["queue_depths"] == [0, 0]

    def test_resolve_round_trip_matches_standalone(self, service):
        _runner, client = service
        dataset = make_dataset(seed=17)
        records = list(dataset.store)[:25]
        truth = [list(pair) for pair in dataset.ground_truth]
        session_id = fresh_id("round")
        created = client.create_session(
            session_id, config=SERVICE_CONFIG, truth=truth
        )
        assert created["session_id"] == session_id
        assert created["records"] == 0
        client.append(session_id, [encode_record(r) for r in records])
        served = client.flush(session_id)
        resolver = StreamingResolver(config=make_config())
        resolver.add_truth(dataset.ground_truth)
        resolver.add_batch(records)
        expected = encode_result(resolver.flush())
        assert served == expected  # bit-identical floats over the wire
        assert client.result(session_id) == expected
        status = client.status(session_id)
        assert status["records"] == len(records)
        assert not status["durable"]
        assert session_id in {
            entry["session_id"] for entry in client.list_sessions()
        }
        client.close(session_id)

    def test_unknown_route_is_404(self, service):
        _runner, client = service
        status, _headers, body = client.request("GET", "/bogus")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        # Wrong method on a real path is a 404 too (no route).
        status, _headers, body = client.request("DELETE", "/healthz")
        assert status == 404

    def test_malformed_json_body_is_400(self, service):
        _runner, client = service
        status, _headers, body = client.raw("POST", "/sessions", b"{not json")
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "malformed JSON body" in body["error"]["message"]

    def test_non_object_body_is_400(self, service):
        _runner, client = service
        status, _headers, body = client.raw("POST", "/sessions", b"[1, 2]")
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "JSON object" in body["error"]["message"]

    def test_invalid_config_is_400(self, service):
        _runner, client = service
        for config in ({"no_such_knob": 1}, {"likelihood_threshold": 2.0}):
            with pytest.raises(ServiceClientError) as caught:
                client.create_session(fresh_id("bad"), config=config)
            assert caught.value.status == 400
            assert caught.value.code == "bad_request"
            assert "invalid config" in caught.value.body["error"]["message"]

    def test_record_without_id_is_400(self, service):
        _runner, client = service
        session_id = fresh_id("badrec")
        client.create_session(session_id, config=SERVICE_CONFIG)
        with pytest.raises(ServiceClientError) as caught:
            client.append(session_id, [{"attributes": {"name": "x"}}])
        assert caught.value.status == 400
        assert caught.value.code == "bad_request"
        client.close(session_id)

    def test_unknown_session_is_404(self, service):
        _runner, client = service
        for method, path, payload in (
            ("GET", "/sessions/nope", None),
            ("GET", "/sessions/nope/result", None),
            ("POST", "/sessions/nope/batch", {"records": []}),
            ("POST", "/sessions/nope/flush", {}),
            ("DELETE", "/sessions/nope", None),
        ):
            status, _headers, body = client.request(method, path, payload)
            assert status == 404, (method, path)
            assert body["error"]["code"] == "unknown_session"

    def test_append_after_close_is_409(self, service):
        _runner, client = service
        session_id = fresh_id("closed")
        client.create_session(session_id, config=SERVICE_CONFIG)
        client.close(session_id)
        for method, path, payload in (
            ("POST", f"/sessions/{session_id}/batch", {"records": []}),
            ("POST", f"/sessions/{session_id}/flush", {}),
            ("GET", f"/sessions/{session_id}/result", None),
            ("DELETE", f"/sessions/{session_id}", None),
        ):
            status, _headers, body = client.request(method, path, payload)
            assert status == 409, (method, path)
            assert body["error"]["code"] == "session_closed"
        # Status stays readable after close — the final counters survive.
        status_payload = client.status(session_id)
        assert status_payload["closed"] is True

    def test_duplicate_create_is_409(self, service):
        _runner, client = service
        session_id = fresh_id("dup")
        client.create_session(session_id, config=SERVICE_CONFIG)
        with pytest.raises(ServiceClientError) as caught:
            client.create_session(session_id, config=SERVICE_CONFIG)
        assert caught.value.status == 409
        assert caught.value.code == "session_exists"
        client.close(session_id)

    def test_restore_of_open_session_is_409_resume_conflict(self, service, tmp_path):
        _runner, client = service
        session_id = fresh_id("open")
        client.create_session(session_id, config=SERVICE_CONFIG)
        with pytest.raises(ServiceClientError) as caught:
            client.restore(session_id, str(tmp_path))
        assert caught.value.status == 409
        assert caught.value.code == "resume_conflict"
        client.close(session_id)

    def test_restore_without_checkpoint_dir_is_400(self, service):
        _runner, client = service
        status, _headers, body = client.request(
            "POST", f"/sessions/{fresh_id('r')}/restore", {}
        )
        assert status == 400
        assert "checkpoint_dir" in body["error"]["message"]

    def test_restore_from_empty_dir_is_409_resume_conflict(self, service, tmp_path):
        _runner, client = service
        with pytest.raises(ServiceClientError) as caught:
            client.restore(fresh_id("void"), str(tmp_path))
        assert caught.value.status == 409
        assert caught.value.code == "resume_conflict"

    def test_metrics_endpoint_is_503_when_disabled(self, service):
        _runner, client = service
        assert not obs.enabled()
        status, _headers, body = client.request("GET", "/metrics")
        assert status == 503
        assert body["error"]["code"] == "metrics_disabled"


# ------------------------------------------------------------ backpressure
class TestBackpressure:
    def test_full_shard_queue_is_429_with_retry_after(self):
        runner = ServiceThread(shard_count=1, queue_depth=1)
        client = runner.start()
        blocker = threading.Event()
        occupied = threading.Event()
        try:
            session_id = "bp"
            client.create_session(session_id, config=SERVICE_CONFIG)

            def block():
                occupied.set()
                blocker.wait(30)

            shards = runner.service.shards
            # Occupy the shard thread, then fill its depth-1 queue.
            busy = runner.submit(shards.submit(session_id, block))
            assert occupied.wait(10)
            queued = runner.submit(shards.submit(session_id, lambda: None))
            deadline = time.monotonic() + 10
            while shards.queue_depths() != [1]:
                assert time.monotonic() < deadline, "queue never filled"
                time.sleep(0.01)
            status, headers, body = client.request(
                "POST",
                f"/sessions/{session_id}/batch",
                {"records": [{"record_id": "x", "attributes": {"name": "x"}}]},
            )
            assert status == 429
            assert body["error"]["code"] == "backpressure"
            assert headers.get("Retry-After") == "1"
            blocker.set()
            busy.result(30)
            queued.result(30)
            # The shard recovered: the same request now succeeds.
            payload = client.append(
                session_id,
                [{"record_id": "x", "attributes": {"name": "x"}}],
            )
            assert payload["candidate_count"] == 0
            client.close(session_id)
        finally:
            blocker.set()
            runner.stop()


# ------------------------------------------------------- sharded execution
class TestShardExecutor:
    def test_shard_of_is_stable_and_in_range(self):
        for key in ("a", "session-42", "", "ünïcode"):
            for count in (1, 2, 7):
                index = shard_of(key, count)
                assert 0 <= index < count
                assert index == shard_of(key, count)

    def test_same_key_serializes_in_submission_order(self):
        async def scenario():
            executor = ShardExecutor(shard_count=4, queue_depth=64)
            await executor.start()
            seen = []

            def record(i):
                seen.append(i)
                return i

            results = await asyncio.gather(
                *[executor.submit("one-key", record, i) for i in range(25)]
            )
            await executor.shutdown()
            return seen, results

        seen, results = asyncio.run(scenario())
        assert seen == list(range(25))
        assert results == list(range(25))

    def test_independent_shards_run_concurrently(self):
        async def scenario():
            executor = ShardExecutor(shard_count=2, queue_depth=4)
            await executor.start()
            key_a = "a"
            key_b = next(
                k
                for k in (f"k{i}" for i in range(64))
                if shard_of(k, 2) != shard_of(key_a, 2)
            )
            # Both tasks must be in flight at once to pass the barrier:
            # serialized execution would deadlock (and trip the timeout).
            barrier = threading.Barrier(2, timeout=10)
            await asyncio.gather(
                executor.submit(key_a, barrier.wait),
                executor.submit(key_b, barrier.wait),
            )
            await executor.shutdown()

        asyncio.run(scenario())

    def test_worker_exception_is_relayed_to_the_caller(self):
        async def scenario():
            executor = ShardExecutor(shard_count=1, queue_depth=4)
            await executor.start()

            def explode():
                raise ValueError("boom")

            with pytest.raises(ValueError, match="boom"):
                await executor.submit("k", explode)
            # The shard survives its task's exception.
            assert await executor.submit("k", lambda: 7) == 7
            await executor.shutdown()

        asyncio.run(scenario())


# ------------------------------------------- concurrency property (bit-id)
class TestServiceEqualsStandalone:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        schedules=st.lists(
            event_schedules(min_size=2, max_size=5), min_size=2, max_size=3
        )
    )
    def test_property_interleaved_sessions_match_standalone_replay(
        self, service, schedules
    ):
        """K concurrent sessions, arbitrary schedules, exact equality.

        Each session runs its own random schedule from a worker thread so
        requests genuinely interleave on the server; afterwards every
        session's snapshot must equal — to the float bit — a standalone
        resolver replaying the same schedule in isolation.
        """
        _runner, client = service

        def run_one(index, schedule):
            dataset = make_dataset(seed=101 + index)
            records = list(dataset.store)
            truth = [list(pair) for pair in dataset.ground_truth]
            session_id = fresh_id(f"prop{index}")
            client.create_session(session_id, config=SERVICE_CONFIG, truth=truth)
            drive_over_http(client, session_id, records, schedule, mirror={})
            served = client.result(session_id)
            client.close(session_id)
            return served, standalone_result(
                records, dataset.ground_truth, schedule
            )

        with ThreadPoolExecutor(max_workers=len(schedules)) as pool:
            futures = [
                pool.submit(run_one, index, schedule)
                for index, schedule in enumerate(schedules)
            ]
            outcomes = [future.result(timeout=120) for future in futures]
        for served, expected in outcomes:
            assert served == expected


# ------------------------------------------------------------ durability
class TestDurability:
    def test_graceful_stop_saves_durable_sessions(self, tmp_path):
        runner = ServiceThread(shard_count=2, queue_depth=8)
        client = runner.start()
        checkpoint = tmp_path / "ckpt"
        dataset = make_dataset(seed=7)
        records = list(dataset.store)[:20]
        config = dict(SERVICE_CONFIG, checkpoint_dir=str(checkpoint))
        client.create_session(
            "durable",
            config=config,
            truth=[list(pair) for pair in dataset.ground_truth],
        )
        client.append("durable", [encode_record(r) for r in records])
        served = client.result("durable")
        assert client.status("durable")["durable"] is True
        runner.stop()  # graceful: must save() the session on its shard
        restored = StreamingResolver.restore(str(checkpoint))
        assert encode_result(restored.snapshot()) == served

    def test_explicit_save_endpoint_checkpoints_now(self, tmp_path):
        runner = ServiceThread(shard_count=1, queue_depth=8)
        client = runner.start()
        try:
            checkpoint = tmp_path / "saved"
            config = dict(SERVICE_CONFIG, checkpoint_dir=str(checkpoint))
            client.create_session("saver", config=config)
            client.append(
                "saver",
                [{"record_id": "a", "attributes": {"name": "ipad 16gb"}}],
            )
            payload = client.save("saver")
            assert payload["session_id"] == "saver"
            assert Path(payload["saved_to"]).exists()
        finally:
            runner.stop()


# --------------------------------------------------------- crash / restart
#: A fixed schedule in the `strategies.drive` format, covering every event
#: type on both sides of the kill point.
CRASH_SCHEDULE = [
    ("batch", 12),
    ("retract", 3),
    ("batch", 8),
    ("update", 5),
    ("flush", 0),
    ("batch", 10),
    ("retract", 1),
    ("flush", 0),
]
CRASH_AT = 5  # SIGKILL lands after the first flush


class TestCrashRestart:
    def _spawn(self, tmp_path, name):
        port_file = tmp_path / f"{name}.port"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file), "--shards", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 90
        while not port_file.exists():
            assert process.poll() is None, "server process died during startup"
            assert time.monotonic() < deadline, "server did not start in time"
            time.sleep(0.05)
        return process, ServiceClient("127.0.0.1", int(port_file.read_text()))

    def test_sigkill_midschedule_then_restore_completes_identically(self, tmp_path):
        """SIGKILL the server mid-schedule; every session must restore from
        its journal on a fresh server and finish bit-identical to an
        uninterrupted standalone run (no save() ever ran: kill -9 skips
        the graceful-shutdown checkpoint on purpose)."""
        sessions = {}
        for index in range(2):
            dataset = make_dataset(seed=31 + index)
            sessions[f"crash-{index}"] = {
                "records": list(dataset.store),
                "truth": dataset.ground_truth,
                "dir": tmp_path / f"ckpt-{index}",
                "mirror": {},
            }
        process, client = self._spawn(tmp_path, "first")
        try:
            for session_id, state in sessions.items():
                client.create_session(
                    session_id,
                    config=dict(SERVICE_CONFIG, checkpoint_dir=str(state["dir"])),
                    truth=[list(pair) for pair in state["truth"]],
                )
                state["cursor"] = drive_over_http(
                    client,
                    session_id,
                    state["records"],
                    CRASH_SCHEDULE[:CRASH_AT],
                    state["mirror"],
                )
            process.kill()  # SIGKILL: no shutdown hook, no save()
            process.wait(30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(30)

        process, client = self._spawn(tmp_path, "second")
        try:
            for session_id, state in sessions.items():
                restored = client.restore(session_id, str(state["dir"]))
                assert restored["records"] == len(state["mirror"])
                drive_over_http(
                    client,
                    session_id,
                    state["records"],
                    CRASH_SCHEDULE[CRASH_AT:],
                    state["mirror"],
                    cursor=state["cursor"],
                )
                served = client.result(session_id)
                assert served == standalone_result(
                    state["records"], state["truth"], CRASH_SCHEDULE
                )
                client.close(session_id)
        finally:
            process.terminate()  # SIGTERM: graceful shutdown path
            assert process.wait(60) == 0


# ------------------------------------------------------------ observability
class TestServiceMetrics:
    def test_prometheus_scrape_reports_requests_and_queues(self):
        obs.activate()
        try:
            runner = ServiceThread(shard_count=2, queue_depth=8)
            client = runner.start()
            try:
                session_id = fresh_id("metrics")
                client.create_session(session_id, config=SERVICE_CONFIG)
                client.append(
                    session_id,
                    [{"record_id": "a", "attributes": {"name": "ipad"}}],
                )
                client.close(session_id)
                text = client.metrics_text()
                assert "service_requests_total" in text
                assert "service_request_seconds" in text
                assert "service_queue_depth" in text
                snapshot = obs.snapshot()
                assert (
                    snapshot.counter_total(
                        "service_requests_total",
                        route="/sessions/{id}/batch",
                        status=200,
                    )
                    == 1
                )
                assert (
                    snapshot.counter_total(
                        "service_requests_total", route="/sessions", method="POST"
                    )
                    == 1
                )
            finally:
                runner.stop()
        finally:
            obs.deactivate()
