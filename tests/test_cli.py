"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, load_dataset, main
from repro.simjoin.vectorized import HAVE_SCIPY


class TestLoadDataset:
    def test_known_datasets(self):
        dataset = load_dataset("product", scale=0.05, seed=1)
        assert dataset.name == "product"
        dataset = load_dataset("product-dup", scale=0.05, seed=1)
        assert dataset.name == "product+dup"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("unknown", scale=1.0, seed=0)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_resolve_options(self):
        args = build_parser().parse_args(
            ["resolve", "--dataset", "restaurant", "--threshold", "0.4", "--qualification-test"]
        )
        assert args.dataset == "restaurant"
        assert args.threshold == 0.4
        assert args.qualification_test is True
        assert args.join_backend == "auto"

    def test_parses_join_backend(self):
        args = build_parser().parse_args(["resolve", "--join-backend", "vectorized"])
        assert args.join_backend == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve", "--join-backend", "quantum"])


class TestCommands:
    def test_threshold_table_command(self, capsys):
        exit_code = main(
            ["threshold-table", "--dataset", "product", "--scale", "0.05",
             "--thresholds", "0.4", "0.2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Likelihood-threshold selection" in output
        assert "0.400" in output

    def test_generate_hits_command(self, capsys):
        exit_code = main(
            ["generate-hits", "--dataset", "product", "--scale", "0.05",
             "--threshold", "0.3", "--cluster-size", "6",
             "--algorithm", "two-tiered", "--algorithm", "bfs"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "two-tiered" in output and "bfs" in output
        assert "True" in output  # valid covers

    def test_resolve_command(self, capsys):
        exit_code = main(
            ["resolve", "--dataset", "product", "--scale", "0.05", "--threshold", "0.3",
             "--cluster-size", "6", "--seed", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "precision / recall" in output
        assert "crowd cost" in output

    def test_resolve_command_backends_agree(self, capsys):
        """Every join backend drives the workflow to the same candidate set."""
        backends = ("naive", "prefix") + (("vectorized",) if HAVE_SCIPY else ())
        outputs = {}
        for backend in backends:
            exit_code = main(
                ["resolve", "--dataset", "product", "--scale", "0.05", "--threshold", "0.3",
                 "--cluster-size", "6", "--seed", "2", "--join-backend", backend]
            )
            assert exit_code == 0
            outputs[backend] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1

    def test_resolve_stream_command(self, capsys):
        exit_code = main(
            ["resolve-stream", "--dataset", "product", "--scale", "0.05",
             "--threshold", "0.3", "--cluster-size", "6", "--seed", "2",
             "--batch-size", "20"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "dirty" in output and "clean components" in output
        assert "precision / recall" in output

    def test_parses_resolve_stream_options(self):
        args = build_parser().parse_args(
            ["resolve-stream", "--batch-size", "32", "--recrowd-policy", "dirty",
             "--aggregation-scope", "global"]
        )
        assert args.batch_size == 32
        assert args.recrowd_policy == "dirty"
        assert args.aggregation_scope == "global"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve-stream", "--recrowd-policy", "sometimes"])
