"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import build_parser, load_dataset, main
from repro.simjoin.vectorized import HAVE_SCIPY


class TestLoadDataset:
    def test_known_datasets(self):
        dataset = load_dataset("product", scale=0.05, seed=1)
        assert dataset.name == "product"
        dataset = load_dataset("product-dup", scale=0.05, seed=1)
        assert dataset.name == "product+dup"

    def test_paper_example_dataset(self):
        dataset = load_dataset("paper-example", scale=1.0, seed=0)
        assert dataset.record_count == 9
        assert dataset.match_count == 4

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("unknown", scale=1.0, seed=0)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_resolve_options(self):
        args = build_parser().parse_args(
            ["resolve", "--dataset", "restaurant", "--threshold", "0.4", "--qualification-test"]
        )
        assert args.dataset == "restaurant"
        assert args.threshold == 0.4
        assert args.qualification_test is True
        assert args.join_backend == "auto"

    def test_parses_join_backend(self):
        args = build_parser().parse_args(["resolve", "--join-backend", "vectorized"])
        assert args.join_backend == "vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve", "--join-backend", "quantum"])


class TestCommands:
    def test_threshold_table_command(self, capsys):
        exit_code = main(
            ["threshold-table", "--dataset", "product", "--scale", "0.05",
             "--thresholds", "0.4", "0.2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Likelihood-threshold selection" in output
        assert "0.400" in output

    def test_generate_hits_command(self, capsys):
        exit_code = main(
            ["generate-hits", "--dataset", "product", "--scale", "0.05",
             "--threshold", "0.3", "--cluster-size", "6",
             "--algorithm", "two-tiered", "--algorithm", "bfs"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "two-tiered" in output and "bfs" in output
        assert "True" in output  # valid covers

    def test_resolve_command(self, capsys):
        exit_code = main(
            ["resolve", "--dataset", "product", "--scale", "0.05", "--threshold", "0.3",
             "--cluster-size", "6", "--seed", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "precision / recall" in output
        assert "crowd cost" in output

    def test_resolve_command_backends_agree(self, capsys):
        """Every join backend drives the workflow to the same candidate set."""
        backends = ("naive", "prefix") + (("vectorized",) if HAVE_SCIPY else ())
        outputs = {}
        for backend in backends:
            exit_code = main(
                ["resolve", "--dataset", "product", "--scale", "0.05", "--threshold", "0.3",
                 "--cluster-size", "6", "--seed", "2", "--join-backend", backend]
            )
            assert exit_code == 0
            outputs[backend] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1

    def test_resolve_stream_command(self, capsys):
        exit_code = main(
            ["resolve-stream", "--dataset", "product", "--scale", "0.05",
             "--threshold", "0.3", "--cluster-size", "6", "--seed", "2",
             "--batch-size", "20"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "dirty" in output and "clean components" in output
        assert "precision / recall" in output

    def test_parses_resolve_stream_options(self):
        args = build_parser().parse_args(
            ["resolve-stream", "--batch-size", "32", "--recrowd-policy", "dirty",
             "--aggregation-scope", "global"]
        )
        assert args.batch_size == 32
        assert args.recrowd_policy == "dirty"
        assert args.aggregation_scope == "global"
        assert args.checkpoint_dir is None
        assert args.resume is False
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resolve-stream", "--recrowd-policy", "sometimes"])

    def test_parses_checkpoint_options(self):
        args = build_parser().parse_args(
            ["resolve-stream", "--checkpoint-dir", "/tmp/x", "--checkpoint-every",
             "3", "--max-batches", "2", "--resume"]
        )
        assert args.checkpoint_dir == "/tmp/x"
        assert args.checkpoint_every == 3
        assert args.max_batches == 2
        assert args.resume is True


class TestCheckpointResume:
    """The durable-session round trip, end to end through the CLI."""

    STREAM_ARGS = ["resolve-stream", "--dataset", "paper-example",
                   "--threshold", "0.3", "--batch-size", "3", "--seed", "2"]

    @staticmethod
    def _final_matches(output):
        return int(re.search(r"matches found\s*:\s*(\d+)", output).group(1))

    def test_checkpoint_then_resume_matches_uninterrupted_run(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "session")
        # Uninterrupted reference run.
        assert main(self.STREAM_ARGS) == 0
        reference = capsys.readouterr().out
        # Interrupted run: two batches, checkpoint, then resume the rest.
        assert main(self.STREAM_ARGS + ["--checkpoint-dir", checkpoint,
                                        "--max-batches", "2"]) == 0
        first_half = capsys.readouterr().out
        assert "resume" in first_half
        assert main(self.STREAM_ARGS + ["--checkpoint-dir", checkpoint,
                                        "--resume"]) == 0
        second_half = capsys.readouterr().out
        assert "resumed session" in second_half
        # Identical final match set (and full tail summary).
        assert self._final_matches(second_half) == self._final_matches(reference)
        assert reference.splitlines()[-6:] == second_half.splitlines()[-6:]

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(self.STREAM_ARGS + ["--resume"]) == 2
        assert "requires --checkpoint-dir" in capsys.readouterr().err

    def test_retraction_smoke_via_python_api(self):
        """Retract a paper-example record mid-session; its matches vanish."""
        from repro.core.config import WorkflowConfig
        from repro.streaming import StreamingResolver

        dataset = load_dataset("paper-example", scale=1.0, seed=0)
        config = WorkflowConfig(
            likelihood_threshold=0.3, vote_mode="per-pair", aggregation="majority"
        )
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        before = resolver.add_batch(list(dataset.store))
        assert ("r1", "r2") in before.matches
        after = resolver.retract("r1")
        assert all("r1" not in key for key in after.matches)
        assert after.delta.retracted_records == 1
        assert after.delta.invalidated_pairs > 0
        # Matches not involving r1 survive untouched.
        assert ("r3", "r4") in after.matches
