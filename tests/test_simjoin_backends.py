"""Tests for the pluggable similarity-join backend registry.

The core contract: every backend (naive all-pairs, prefix-filtering,
vectorized sparse-matrix) returns the *same* pair set — identical ids and
likelihoods within 1e-9 — for any store, threshold and source restriction.
The property tests below drive randomized stores (including empty-token
records, duplicate records and two-source linkage joins) through all three
engines at thresholds 0.1, 0.5 and 0.9.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from strategies import random_stores

from repro.records.pairs import PairSet
from repro.records.record import Record, RecordStore
from repro.simjoin.backend import (
    AUTO_BACKEND,
    AUTO_VECTORIZED_MIN_RECORDS,
    NaiveJoinBackend,
    SimJoinBackend,
    auto_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.simjoin.likelihood import SimJoinLikelihood
from repro.simjoin.prefix_filter import PrefixFilterJoin
from repro.simjoin.vectorized import HAVE_SCIPY, VectorizedSimJoin
from repro.similarity.set_similarity import (
    cosine_token_similarity,
    dice_similarity,
    jaccard_similarity,
)

THRESHOLDS = (0.1, 0.5, 0.9)
# The vectorized backend needs scipy; on scipy-less installs the naive and
# prefix engines must still agree, so it is dropped rather than skipped.
BACKENDS = ("naive", "prefix") + (("vectorized",) if HAVE_SCIPY else ())

def _assert_backends_agree(store, threshold, cross_sources=None):
    results = {
        name: get_backend(name).join(store, threshold, cross_sources=cross_sources)
        for name in BACKENDS
    }
    reference = results["naive"]
    for name in BACKENDS[1:]:
        assert results[name].to_key_set() == reference.to_key_set(), (
            f"{name} pair set differs from naive at threshold {threshold}"
        )
        for pair in reference:
            other = results[name].get(pair.id_a, pair.id_b)
            assert other.likelihood == pytest.approx(pair.likelihood, abs=1e-9), (
                f"{name} likelihood differs for {pair.key} at threshold {threshold}"
            )


class TestBackendEquivalence:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(store=random_stores())
    def test_self_join_backends_identical(self, store):
        for threshold in THRESHOLDS:
            _assert_backends_agree(store, threshold)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(store=random_stores(with_sources=True))
    def test_cross_source_backends_identical(self, store):
        for threshold in THRESHOLDS:
            _assert_backends_agree(store, threshold, cross_sources=("abt", "buy"))

    def test_zero_threshold_backends_identical(self, example_store):
        _assert_backends_agree(example_store, 0.0)

    def test_empty_token_records_pair_up(self):
        """Two token-less records are textually identical (similarity 1.0)."""
        store = RecordStore()
        store.add(Record("a", {"name": ""}))
        store.add(Record("b", {"name": ""}))
        store.add(Record("c", {"name": "apple ipad"}))
        for name in BACKENDS:
            pairs = get_backend(name).join(store, 0.9)
            assert pairs.to_key_set() == {("a", "b")}, name
            assert pairs.get("a", "b").likelihood == 1.0


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("quantum")

    def test_register_custom_backend(self):
        class EmptyBackend(SimJoinBackend):
            name = "empty-test"

            def join(self, store, threshold, attributes=None, cross_sources=None):
                return PairSet()

        register_backend("empty-test", EmptyBackend)
        try:
            assert isinstance(get_backend("empty-test"), EmptyBackend)
            assert "empty-test" in available_backends()
        finally:
            from repro.simjoin import backend as backend_module

            del backend_module._REGISTRY["empty-test"]

    def test_auto_name_reserved(self):
        with pytest.raises(ValueError):
            register_backend(AUTO_BACKEND, NaiveJoinBackend)

    def test_auto_heuristic(self):
        large = AUTO_VECTORIZED_MIN_RECORDS
        if HAVE_SCIPY:
            assert auto_backend_name(large, 0.3) == "vectorized"
            assert auto_backend_name(large, 0.0) == "vectorized"
        assert auto_backend_name(10, 0.3) == "prefix"
        assert auto_backend_name(10, 0.0) == "naive"

    def test_resolve_backend_by_name_and_auto(self):
        assert resolve_backend("naive").name == "naive"
        auto = resolve_backend(AUTO_BACKEND, record_count=10, threshold=0.5)
        assert auto.name == "prefix"


class TestSimJoinLikelihoodBackendSelection:
    def test_explicit_backend_used(self, example_store):
        for name in BACKENDS:
            pairs = SimJoinLikelihood(backend=name).estimate(
                example_store, min_likelihood=0.3
            )
            assert len(pairs) > 0

    def test_invalid_backend_raises(self, example_store):
        with pytest.raises(ValueError):
            SimJoinLikelihood(backend="quantum").estimate(example_store, min_likelihood=0.3)

    def test_legacy_use_prefix_filter_false_means_naive(self, example_store):
        fast = SimJoinLikelihood(use_prefix_filter=True).estimate(
            example_store, min_likelihood=0.3
        )
        slow = SimJoinLikelihood(use_prefix_filter=False).estimate(
            example_store, min_likelihood=0.3
        )
        assert fast.to_key_set() == slow.to_key_set()


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")
class TestVectorizedJoin:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VectorizedSimJoin(threshold=1.5)
        with pytest.raises(ValueError):
            VectorizedSimJoin(measure="hamming")
        with pytest.raises(ValueError):
            VectorizedSimJoin(block_size=0)

    def test_tiny_stores(self):
        store = RecordStore()
        assert len(VectorizedSimJoin(0.5).join(store)) == 0
        store.add(Record("a", {"name": "solo"}))
        assert len(VectorizedSimJoin(0.5).join(store)) == 0

    def test_blocking_is_transparent(self, example_store):
        whole = VectorizedSimJoin(0.2, block_size=1024).join(example_store)
        blocked = VectorizedSimJoin(0.2, block_size=2).join(example_store)
        assert whole.to_key_set() == blocked.to_key_set()

    @pytest.mark.parametrize("measure,reference", [
        ("jaccard", jaccard_similarity),
        ("dice", dice_similarity),
        ("cosine", cosine_token_similarity),
    ])
    def test_measures_match_python_reference(self, example_store, measure, reference):
        from repro.records.tokenize import record_token_set

        pairs = VectorizedSimJoin(0.0, measure=measure).join(example_store)
        records = {record.record_id: record for record in example_store}
        for pair in pairs:
            tokens_a = record_token_set(records[pair.id_a])
            tokens_b = record_token_set(records[pair.id_b])
            # cosine_token_similarity takes sequences; sets are fine for the
            # binary (distinct-token) case the vectorized join computes.
            expected = reference(sorted(tokens_a), sorted(tokens_b))
            assert pair.likelihood == pytest.approx(expected, abs=1e-9)


class TestPrefixFilterStillExact:
    """The new length/positional filters must not drop true pairs."""

    def test_matches_naive_on_paper_example_fine_thresholds(self, example_store):
        backend = get_backend("naive")
        for threshold in (0.05, 0.25, 1 / 3, 0.5, 2 / 3, 0.75, 1.0):
            naive = backend.join(example_store, threshold)
            filtered = PrefixFilterJoin(threshold=threshold).join(example_store)
            assert filtered.to_key_set() == naive.to_key_set(), threshold

    def test_identical_records_survive_threshold_one(self):
        store = RecordStore()
        store.add(Record("a", {"name": "apple ipad mini"}))
        store.add(Record("b", {"name": "apple ipad mini"}))
        store.add(Record("c", {"name": "sony walkman"}))
        pairs = PrefixFilterJoin(threshold=1.0).join(store)
        assert pairs.to_key_set() == {("a", "b")}
