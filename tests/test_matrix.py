"""Cross-dataset regression matrix: dataset × join backend × mode.

Tier-1 (every push, bundled mini corpora, seconds not minutes):

* all available join backends produce the identical candidate pair set on
  every matrix dataset (join-level agreement — cheap, so every backend is
  covered even though only the fast ones run full resolution cells here);
* streaming replay and SQLite-backed streaming produce exactly the batch
  workflow's match set;
* every fast cell (prefix + vectorized × all modes × all datasets) is
  within the committed per-cell tolerances of ``BENCH_matrix.json``.

The ``slow``-marked sweep runs *every* cell — naive and parallel backends
included — and is excluded from tier-1 by the ``addopts`` in ``pytest.ini``
(the nightly CI job re-enables it with ``-m ""``).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from strategies import arrival_batch_sizes, order_seeds

from repro.evaluation import matrix as mx
from repro.simjoin.backend import available_backends, get_backend
from repro.simjoin.vectorized import HAVE_SCIPY
from repro.streaming.session import resolve_stream

pytestmark = pytest.mark.matrix

#: Backends whose full resolution cells run on every push.  naive and
#: parallel still run in tier-1 at the join level (pair-set agreement
#: below) and get their full cells in the slow sweep.
TIER1_BACKENDS = ("prefix",) + (("vectorized",) if HAVE_SCIPY else ())

TIER1_CELLS = [
    (dataset, backend, mode)
    for dataset, backend, mode in mx.iter_cells(backends=TIER1_BACKENDS)
]


@pytest.fixture(scope="module")
def tier1_rows():
    """Every tier-1 cell, computed once for the whole module."""
    return {
        (dataset, backend, mode): mx.run_cell(dataset, backend, mode)
        for dataset, backend, mode in TIER1_CELLS
    }


@pytest.fixture(scope="module")
def baseline():
    return mx.load_baseline()


# ------------------------------------------------------ join-level agreement
@pytest.mark.parametrize("dataset_name", mx.matrix_datasets())
def test_all_backends_agree_on_candidate_pairs(dataset_name):
    """Every installed backend: identical candidate pair set per dataset."""
    dataset, config = mx.load_matrix_dataset(dataset_name)
    results = {
        name: get_backend(name).join(
            dataset.store,
            config.likelihood_threshold,
            attributes=config.similarity_attributes,
            cross_sources=dataset.cross_sources,
        )
        for name in available_backends()
    }
    reference_name = next(iter(results))
    reference = results[reference_name].to_key_set()
    for name, pairs in results.items():
        assert pairs.to_key_set() == reference, (
            f"{dataset_name}: backend {name!r} pair set differs from "
            f"{reference_name!r}"
        )


# --------------------------------------------------- mode-level equivalence
@pytest.mark.parametrize("dataset_name", mx.matrix_datasets())
def test_streaming_modes_equal_batch(dataset_name, tier1_rows):
    """stream and stream-sqlite reproduce the batch match set exactly."""
    backend = TIER1_BACKENDS[0]
    batch = tier1_rows[(dataset_name, backend, "batch")]
    for mode in ("stream", "stream-sqlite"):
        row = tier1_rows[(dataset_name, backend, mode)]
        assert row["_matches"] == batch["_matches"], (
            f"{dataset_name}: {mode} match set differs from batch"
        )


#: One-shot batch match sets, computed lazily and shared by every
#: hypothesis example of the order-invariance property.
_BATCH_CACHE = {}


def _batch_matches(dataset_name, backend):
    key = (dataset_name, backend)
    if key not in _BATCH_CACHE:
        _BATCH_CACHE[key] = mx.run_cell(dataset_name, backend, "batch")["_matches"]
    return _BATCH_CACHE[key]


@settings(max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(order_seed=order_seeds, batch_size=arrival_batch_sizes)
def test_property_streaming_order_invariant_on_etl_corpus(order_seed, batch_size):
    """Arrival order / batch size never change an ETL corpus resolution."""
    import random

    dataset, config = mx.load_matrix_dataset("abt-buy")
    order = dataset.store.record_ids
    random.Random(order_seed).shuffle(order)
    result = resolve_stream(
        dataset, config=config, batch_size=batch_size, arrival_order=order
    )
    assert frozenset(result.matches) == _batch_matches("abt-buy", config.join_backend)


# ----------------------------------------------------- tolerance regression
def test_tier1_cells_within_committed_tolerances(tier1_rows, baseline):
    """Every fast cell stays inside the committed per-cell tolerances."""
    violations = mx.compare_rows(list(tier1_rows.values()), baseline)
    assert not violations, "matrix regression:\n" + "\n".join(violations)


@pytest.mark.slow
def test_full_matrix_within_committed_tolerances(baseline):
    """Nightly: every cell — naive and parallel backends included."""
    rows = mx.run_matrix()
    violations = mx.compare_rows(rows, baseline)
    assert not violations, "matrix regression:\n" + "\n".join(violations)
    # Cross-check mode equivalence over the full sweep too.
    by_cell = {(r["dataset"], r["backend"], r["mode"]): r for r in rows}
    for (dataset, backend, mode), row in by_cell.items():
        if mode == "batch":
            continue
        batch = by_cell[(dataset, backend, "batch")]
        assert row["_matches"] == batch["_matches"], (
            f"{dataset}|{backend}: {mode} match set differs from batch"
        )
