"""Tests for durable streaming sessions (repro.streaming.persistence).

The central contract: a session that crashes after *any* prefix of journal
events and is restored produces — after replaying the remaining events —
results bit-identical to a session that never stopped: same matches, same
posteriors (to the last float bit), same ranked pairs, same crowd cost.
On top of that, the journal must be crash-tolerant (a torn final line is
dropped, mid-stream corruption is detected loudly) and snapshots must be
atomic and self-contained.
"""

import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import WorkflowConfig
from repro.datasets.restaurant import RestaurantGenerator
from repro.records.record import Record
from repro.streaming import (
    JournalCorruptionError,
    PersistenceError,
    SessionJournal,
    StreamingResolver,
)
from repro.streaming.persistence import (
    JOURNAL_FILENAME,
    load_latest_snapshot,
    snapshot_path,
    write_snapshot,
)


def make_dataset(record_count=60, duplicate_pairs=10, seed=13):
    return RestaurantGenerator(
        record_count=record_count, duplicate_pairs=duplicate_pairs, seed=seed
    ).generate()


def make_config(**overrides):
    base = dict(
        likelihood_threshold=0.35, vote_mode="per-pair", aggregation="majority"
    )
    base.update(overrides)
    return WorkflowConfig(**base)


def assert_sessions_identical(left, right):
    """Bit-identical session state: results, digest and workload counters."""
    snap_left, snap_right = left.snapshot(), right.snapshot()
    assert snap_left.matches == snap_right.matches
    assert snap_left.posteriors == snap_right.posteriors
    assert snap_left.likelihoods == snap_right.likelihoods
    assert snap_left.ranked_pairs == snap_right.ranked_pairs
    assert snap_left.cost == snap_right.cost
    assert snap_left.hit_count == snap_right.hit_count
    assert snap_left.assignment_count == snap_right.assignment_count
    assert left.state_digest() == right.state_digest()
    assert left.covered_pairs() == right.covered_pairs()


# ----------------------------------------------------------------- journal
class TestSessionJournal:
    def test_append_and_read_back(self, tmp_path):
        journal = SessionJournal(tmp_path)
        assert journal.append("batch", {"records": [1, 2]}) == 1
        assert journal.append("flush", {}) == 2
        events = SessionJournal(tmp_path).events()
        assert [(e.seq, e.type) for e in events] == [(1, "batch"), (2, "flush")]
        assert events[0].payload == {"records": [1, 2]}

    def test_truncated_tail_line_is_dropped(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.append("batch", {"n": 1})
        journal.append("batch", {"n": 2})
        raw = (tmp_path / JOURNAL_FILENAME).read_text()
        (tmp_path / JOURNAL_FILENAME).write_text(raw[:-20])  # tear the last line
        events = SessionJournal(tmp_path).events()
        assert [e.payload for e in events] == [{"n": 1}]

    def test_append_after_torn_tail_does_not_merge(self, tmp_path):
        """Re-opening a journal repairs a crash-torn tail line, so the next
        append lands on a clean line instead of merging into garbage."""
        journal = SessionJournal(tmp_path)
        journal.append("batch", {"n": 1})
        path = tmp_path / JOURNAL_FILENAME
        path.write_text(path.read_text() + '{"seq":2,"type":"fl')  # torn write
        reopened = SessionJournal(tmp_path)
        assert reopened.event_count == 1
        assert reopened.append("flush", {}) == 2
        events = SessionJournal(tmp_path).events()
        assert [(e.seq, e.type) for e in events] == [(1, "batch"), (2, "flush")]

    def test_append_after_lost_trailing_newline(self, tmp_path):
        """A valid final line whose newline was lost in a crash gets one
        back, so the next append does not corrupt the last event."""
        journal = SessionJournal(tmp_path)
        journal.append("batch", {"n": 1})
        path = tmp_path / JOURNAL_FILENAME
        path.write_bytes(path.read_bytes().rstrip(b"\n"))
        reopened = SessionJournal(tmp_path)
        assert reopened.append("flush", {}) == 2
        events = SessionJournal(tmp_path).events()
        assert [(e.seq, e.type) for e in events] == [(1, "batch"), (2, "flush")]

    def test_midstream_corruption_raises(self, tmp_path):
        journal = SessionJournal(tmp_path)
        for n in range(3):
            journal.append("batch", {"n": n})
        lines = (tmp_path / JOURNAL_FILENAME).read_text().splitlines()
        entry = json.loads(lines[1])
        entry["payload"]["n"] = 99  # tampering invalidates the CRC
        lines[1] = json.dumps(entry)
        (tmp_path / JOURNAL_FILENAME).write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            SessionJournal(tmp_path).events()

    def test_sequence_gap_raises(self, tmp_path):
        journal = SessionJournal(tmp_path)
        journal.append("batch", {"n": 1})
        other = SessionJournal(tmp_path, start_seq=5)
        other.append("batch", {"n": 5})
        with pytest.raises(JournalCorruptionError):
            SessionJournal(tmp_path).events()


# --------------------------------------------------------------- snapshots
class TestSnapshots:
    def test_write_is_atomic_and_latest_wins(self, tmp_path):
        write_snapshot(tmp_path, {"version": 1, "n": 1}, events_applied=3)
        write_snapshot(tmp_path, {"version": 1, "n": 2}, events_applied=7)
        state, applied = load_latest_snapshot(tmp_path)
        assert (state["n"], applied) == (2, 7)
        # Older snapshots are compacted away.
        assert not snapshot_path(tmp_path, 3).exists()

    def test_unreadable_snapshot_is_skipped(self, tmp_path):
        write_snapshot(tmp_path, {"version": 1, "n": 1}, events_applied=3)
        write_snapshot(tmp_path, {"version": 1, "n": 2}, events_applied=7, keep_old=True)
        snapshot_path(tmp_path, 7).write_bytes(b"torn write")
        state, applied = load_latest_snapshot(tmp_path)
        assert (state["n"], applied) == (1, 3)

    def test_empty_directory_returns_none(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None
        assert load_latest_snapshot(tmp_path / "missing") is None


# ------------------------------------------------------- save/restore basics
class TestSaveRestore:
    def test_save_restore_round_trip_without_journal(self, tmp_path):
        dataset = make_dataset()
        resolver = StreamingResolver(config=make_config())
        resolver.add_truth(dataset.ground_truth)
        records = list(dataset.store)
        for start in range(0, len(records), 17):
            resolver.add_batch(records[start : start + 17])
        resolver.save(tmp_path)
        restored = StreamingResolver.restore(tmp_path)
        assert_sessions_identical(resolver, restored)

    def test_durable_session_restores_bit_identically(self, tmp_path):
        dataset = make_dataset()
        config = make_config(checkpoint_dir=str(tmp_path), checkpoint_every_batches=2)
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        records = list(dataset.store)
        for start in range(0, len(records), 17):
            resolver.add_batch(records[start : start + 17])
        restored = StreamingResolver.restore(tmp_path, resume_journal=False)
        assert_sessions_identical(resolver, restored)

    def test_restored_session_continues_identically(self, tmp_path):
        dataset = make_dataset(record_count=80, duplicate_pairs=12)
        records = list(dataset.store)
        config = make_config(checkpoint_dir=str(tmp_path), checkpoint_every_batches=3)
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, 40, 13):
            resolver.add_batch(records[start:][: min(13, 40 - start)])
        restored = StreamingResolver.restore(tmp_path, resume_journal=False)
        # Both sessions now see the same future: arrivals, a retraction, an
        # update and a flush; they must stay in lockstep bit-for-bit.
        tail = records[40:]
        victim = records[3].record_id
        revised = records[5].with_attributes(name="revised beyond recognition")
        for session in (resolver, restored):
            session.add_batch(tail[:20])
            session.retract(victim)
            session.update(revised)
            session.add_batch(tail[20:])
            session.flush()
        assert_sessions_identical(resolver, restored)

    def test_save_requires_a_path_or_checkpoint_dir(self):
        resolver = StreamingResolver(config=make_config())
        with pytest.raises(PersistenceError):
            resolver.save()

    def test_restore_of_empty_directory_fails(self, tmp_path):
        with pytest.raises(PersistenceError):
            StreamingResolver.restore(tmp_path / "void")

    def test_fresh_session_refuses_occupied_checkpoint_dir(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path))
        StreamingResolver(config=config).add_batch(
            [Record("r1", {"t": "alpha"}), Record("r2", {"t": "alpha"})]
        )
        with pytest.raises(PersistenceError):
            StreamingResolver(config=make_config(checkpoint_dir=str(tmp_path)))

    def test_replay_verification_catches_tampering(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path), checkpoint_every_batches=0)
        resolver = StreamingResolver(config=config)
        resolver.add_truth([("r1", "r2")])
        resolver.add_batch(
            [Record("r1", {"t": "alpha beta"}), Record("r2", {"t": "alpha beta"})]
        )
        # Rewrite the truth event so replay diverges from the commit digest.
        journal_file = tmp_path / JOURNAL_FILENAME
        lines = journal_file.read_text().splitlines()
        doctored = []
        for line in lines:
            entry = json.loads(line)
            if entry["type"] == "truth":
                entry["payload"]["pairs"] = []
                entry["crc"] = None  # also breaks the CRC
            doctored.append(json.dumps(entry))
        journal_file.write_text("\n".join(doctored) + "\n")
        with pytest.raises(JournalCorruptionError):
            StreamingResolver.restore(tmp_path)

    def test_snapshot_restore_skips_replayed_prefix(self, tmp_path):
        dataset = make_dataset()
        records = list(dataset.store)
        config = make_config(checkpoint_dir=str(tmp_path), checkpoint_every_batches=1)
        resolver = StreamingResolver(config=config)
        resolver.add_truth(dataset.ground_truth)
        for start in range(0, len(records), 20):
            resolver.add_batch(records[start : start + 20])
        state, applied = load_latest_snapshot(tmp_path)
        assert applied == resolver.events_applied  # snapshot is current
        restored = StreamingResolver.restore(tmp_path, resume_journal=False)
        assert restored.events_applied == resolver.events_applied
        assert_sessions_identical(resolver, restored)


# ----------------------------------------------- crash-recovery (property)
def run_schedule(resolver, dataset, schedule):
    """Apply a deterministic event schedule to a session."""
    records = list(dataset.store)
    cursor = 0
    for action, argument in schedule:
        if action == "batch":
            batch = records[cursor : cursor + argument]
            cursor += argument
            if batch:
                resolver.add_batch(batch)
        elif action == "retract":
            resident = sorted(resolver.store.record_ids)
            if resident:
                resolver.retract(resident[argument % len(resident)])
        elif action == "update":
            resident = sorted(resolver.store.record_ids)
            if resident:
                record = resolver.store.get(resident[argument % len(resident)])
                resolver.update(
                    record.with_attributes(name=f"revision {argument}")
                )
        elif action == "flush":
            resolver.flush()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(
    data=st.data(),
    schedule=st.lists(
        st.one_of(
            st.tuples(st.just("batch"), st.integers(min_value=1, max_value=25)),
            st.tuples(st.just("retract"), st.integers(min_value=0, max_value=10_000)),
            st.tuples(st.just("update"), st.integers(min_value=0, max_value=10_000)),
            st.tuples(st.just("flush"), st.just(0)),
        ),
        min_size=2,
        max_size=7,
    ),
)
def test_property_crash_at_any_point_recovers_bit_identically(
    tmp_path_factory, data, schedule
):
    """Crash after any journal prefix -> restore -> replay tail == no crash.

    One uninterrupted durable session runs a random schedule of batches,
    retractions, updates and flushes.  Its journal is then truncated at a
    random crash point (as a crash would), the session is restored from the
    surviving prefix, and the same schedule is re-driven from where the
    journal left off by replaying the *full* journal against the restored
    state — the result must equal the uninterrupted session bit-for-bit.
    """
    directory = tmp_path_factory.mktemp("crash")
    dataset = make_dataset(record_count=50, duplicate_pairs=8, seed=29)
    config = make_config(
        checkpoint_dir=str(directory), checkpoint_every_batches=data.draw(
            st.sampled_from([0, 1, 3]), label="checkpoint_every"
        )
    )
    resolver = StreamingResolver(config=config)
    resolver.add_truth(dataset.ground_truth)
    run_schedule(resolver, dataset, schedule)

    journal_file = directory / JOURNAL_FILENAME
    full_journal = journal_file.read_text()
    lines = full_journal.splitlines()
    crash_after = data.draw(
        st.integers(min_value=1, max_value=len(lines)), label="crash_after"
    )

    # Simulate the crash: only the first `crash_after` journal lines (and
    # any snapshot written at or before that point) survive.
    crash_dir = tmp_path_factory.mktemp("recover")
    (crash_dir / JOURNAL_FILENAME).write_text(
        "\n".join(lines[:crash_after]) + "\n"
    )
    snapshot = load_latest_snapshot(directory)
    if snapshot is not None:
        state, applied = snapshot
        if applied <= crash_after:
            write_snapshot(crash_dir, state, applied)

    restored = StreamingResolver.restore(crash_dir, resume_journal=False)
    assert restored.events_applied <= crash_after

    # Re-drive the lost tail: replay the full journal's remaining events
    # through the internal applier (exactly what a re-submitted workload
    # would do), then compare against the uninterrupted session.
    from repro.streaming.persistence import SessionJournal as Journal

    tail_dir = tmp_path_factory.mktemp("tail")
    (tail_dir / JOURNAL_FILENAME).write_text(full_journal)
    restored._replaying = True
    try:
        for event in Journal(tail_dir).events():
            if event.seq <= restored.events_applied:
                continue
            restored._apply_journal_event(event, verify=True)
            restored._events_applied = event.seq
    finally:
        restored._replaying = False
    assert_sessions_identical(resolver, restored)
