"""Unit tests for the graph substrate."""

import pytest

from repro.graph.components import connected_components, split_components_by_size
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_order, dfs_order
from repro.records.pairs import PairSet, RecordPair


def build_example_graph():
    """The ten-edge pair graph of Figure 5."""
    edges = [
        ("r1", "r2"), ("r1", "r7"), ("r2", "r7"), ("r2", "r3"), ("r3", "r4"),
        ("r3", "r5"), ("r4", "r5"), ("r4", "r6"), ("r4", "r7"), ("r8", "r9"),
    ]
    return Graph.from_edges(edges)


class TestGraph:
    def test_add_edge_and_counts(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "b")  # duplicate ignored
        assert graph.vertex_count == 2
        assert graph.edge_count == 1
        assert graph.has_edge("b", "a")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph().add_edge("a", "a")

    def test_degree_and_neighbors(self):
        graph = build_example_graph()
        assert graph.degree("r4") == 4
        assert set(graph.neighbors("r4")) == {"r3", "r5", "r6", "r7"}
        with pytest.raises(KeyError):
            graph.degree("missing")

    def test_max_degree_vertex(self):
        graph = build_example_graph()
        assert graph.max_degree_vertex() == "r4"
        assert graph.max_degree_vertex(["r8", "r9"]) in {"r8", "r9"}

    def test_remove_edge_and_vertex(self):
        graph = build_example_graph()
        graph.remove_edge("r8", "r9")
        assert not graph.has_edge("r8", "r9")
        graph.remove_vertex("r4")
        assert not graph.has_vertex("r4")
        assert not graph.has_edge("r3", "r4")

    def test_remove_edges_within(self):
        graph = build_example_graph()
        removed = graph.remove_edges_within(["r1", "r2", "r7"])
        assert removed == 3
        assert graph.edge_count == 7

    def test_edges_are_canonical_and_unique(self):
        graph = build_example_graph()
        edges = list(graph.edges())
        assert len(edges) == 10
        assert len(set(edges)) == 10
        assert all(a < b for a, b in edges)

    def test_subgraph(self):
        graph = build_example_graph()
        sub = graph.subgraph(["r1", "r2", "r7", "r8"])
        assert sub.vertex_count == 4
        assert sub.edge_count == 3  # r8 is isolated in the induced subgraph

    def test_edges_within(self):
        graph = build_example_graph()
        assert set(graph.edges_within(["r8", "r9"])) == {("r8", "r9")}

    def test_from_pair_set(self, simple_pairs):
        graph = Graph.from_pair_set(simple_pairs)
        assert graph.vertex_count == 5
        assert graph.edge_count == 4

    def test_copy_is_independent(self):
        graph = build_example_graph()
        clone = graph.copy()
        clone.remove_edge("r1", "r2")
        assert graph.has_edge("r1", "r2")


class TestComponents:
    def test_connected_components(self):
        graph = build_example_graph()
        components = connected_components(graph)
        sizes = sorted(len(component) for component in components)
        assert sizes == [2, 7]

    def test_isolated_vertex_is_own_component(self):
        graph = Graph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "b")
        assert sorted(len(c) for c in connected_components(graph)) == [1, 2]

    def test_split_components_by_size(self):
        graph = build_example_graph()
        small, large = split_components_by_size(graph, cluster_size=4)
        assert [sorted(c) for c in small] == [["r8", "r9"]]
        assert len(large) == 1 and len(large[0]) == 7

    def test_split_rejects_tiny_cluster_size(self):
        with pytest.raises(ValueError):
            split_components_by_size(Graph(), cluster_size=1)


class TestTraversal:
    def test_bfs_order_visits_all_vertices_once(self):
        graph = build_example_graph()
        order = bfs_order(graph)
        assert sorted(order) == sorted(graph.vertices())
        assert len(order) == len(set(order))

    def test_dfs_order_visits_all_vertices_once(self):
        graph = build_example_graph()
        order = dfs_order(graph)
        assert sorted(order) == sorted(graph.vertices())

    def test_bfs_start_vertex(self):
        graph = build_example_graph()
        assert bfs_order(graph, start="r4")[0] == "r4"
        with pytest.raises(KeyError):
            bfs_order(graph, start="nope")

    def test_dfs_goes_deep_first(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "d")])
        order = dfs_order(graph, start="a")
        # DFS explores b's subtree (c) before returning to d.
        assert order.index("c") < order.index("d")

    def test_bfs_goes_wide_first(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "d")])
        order = bfs_order(graph, start="a")
        assert order.index("d") < order.index("c")
