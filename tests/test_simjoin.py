"""Unit tests for the machine pass: joins, blocking and likelihood estimation."""

import pytest

from repro.records.record import Record, RecordStore
from repro.similarity.record_similarity import JaccardRecordSimilarity
from repro.simjoin.allpairs import all_pairs_similarity
from repro.simjoin.blocking import AttributeBlocker, QGramBlocker, TokenBlocker
from repro.simjoin.likelihood import CustomLikelihood, SimJoinLikelihood
from repro.simjoin.prefix_filter import PrefixFilterJoin


class TestAllPairs:
    def test_scores_every_pair_at_zero_threshold(self, example_store):
        pairs = all_pairs_similarity(example_store, min_likelihood=0.0)
        assert len(pairs) == 9 * 8 // 2

    def test_threshold_filters(self, example_store):
        similarity = JaccardRecordSimilarity(attributes=["product_name"])
        pairs = all_pairs_similarity(example_store, similarity=similarity, min_likelihood=0.3)
        assert len(pairs) == 10

    def test_reproduces_figure_2a(self, example_pairs):
        expected = {
            ("r1", "r2"), ("r1", "r7"), ("r2", "r3"), ("r2", "r7"), ("r3", "r4"),
            ("r3", "r5"), ("r4", "r5"), ("r4", "r6"), ("r4", "r7"), ("r8", "r9"),
        }
        assert example_pairs.to_key_set() == frozenset(expected)

    def test_cross_source_restriction(self, small_product):
        pairs = all_pairs_similarity(
            small_product.store,
            min_likelihood=0.0,
            cross_sources=("abt", "buy"),
        )
        abt = len(small_product.store.records_from_source("abt"))
        buy = len(small_product.store.records_from_source("buy"))
        assert len(pairs) == abt * buy


class TestPrefixFilterJoin:
    def test_matches_naive_join_on_example(self, example_store):
        for threshold in (0.2, 0.3, 0.5, 0.8):
            naive = all_pairs_similarity(example_store, min_likelihood=threshold)
            filtered = PrefixFilterJoin(threshold=threshold).join(example_store)
            assert filtered.to_key_set() == naive.to_key_set()

    def test_matches_naive_join_on_restaurant_sample(self, small_restaurant):
        threshold = 0.4
        naive = all_pairs_similarity(small_restaurant.store, min_likelihood=threshold)
        filtered = PrefixFilterJoin(threshold=threshold).join(small_restaurant.store)
        assert filtered.to_key_set() == naive.to_key_set()

    def test_likelihoods_are_exact(self, example_store):
        filtered = PrefixFilterJoin(threshold=0.3, attributes=["product_name"]).join(example_store)
        pair = filtered.get("r1", "r2")
        assert pair is not None and pair.likelihood == pytest.approx(4 / 7)

    def test_cross_source_join(self, small_product):
        threshold = 0.3
        naive = all_pairs_similarity(
            small_product.store, min_likelihood=threshold, cross_sources=("abt", "buy")
        )
        filtered = PrefixFilterJoin(threshold=threshold).join(
            small_product.store, cross_sources=("abt", "buy")
        )
        assert filtered.to_key_set() == naive.to_key_set()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PrefixFilterJoin(threshold=0.0)
        with pytest.raises(ValueError):
            PrefixFilterJoin(threshold=1.5)


class TestBlocking:
    def _store(self):
        store = RecordStore()
        store.add(Record("r1", {"name": "apple ipod touch", "city": "nyc"}))
        store.add(Record("r2", {"name": "apple ipod nano", "city": "nyc"}))
        store.add(Record("r3", {"name": "sony walkman", "city": "sf"}))
        return store

    def test_attribute_blocker_groups_equal_values(self):
        store = self._store()
        keys = AttributeBlocker("city").candidate_keys(store)
        assert keys == {("r1", "r2")}

    def test_token_blocker_candidates(self):
        store = self._store()
        keys = TokenBlocker(attributes=["name"]).candidate_keys(store)
        assert ("r1", "r2") in keys
        assert ("r1", "r3") not in keys

    def test_qgram_blocker_is_typo_tolerant(self):
        store = RecordStore()
        store.add(Record("a", {"name": "restaurant"}))
        store.add(Record("b", {"name": "restaurnat"}))
        keys = QGramBlocker(q=3, attributes=["name"]).candidate_keys(store)
        assert ("a", "b") in keys

    def test_blocker_candidates_scored_and_thresholded(self):
        store = self._store()
        pairs = TokenBlocker(attributes=["name"]).candidates(store, min_likelihood=0.5)
        assert ("r1", "r2") in pairs
        assert all(pair.likelihood >= 0.5 for pair in pairs)

    def test_blocking_never_misses_pairs_above_threshold(self, small_restaurant):
        """Token blocking is a superset of any positive-threshold Jaccard join."""
        threshold = 0.4
        naive = all_pairs_similarity(small_restaurant.store, min_likelihood=threshold)
        blocked = TokenBlocker().candidates(small_restaurant.store, min_likelihood=threshold)
        assert naive.to_key_set() <= blocked.to_key_set() | naive.to_key_set()
        assert blocked.to_key_set() == naive.to_key_set()


class TestLikelihoodEstimators:
    def test_simjoin_prefix_and_naive_agree(self, small_restaurant):
        threshold = 0.35
        fast = SimJoinLikelihood(use_prefix_filter=True).estimate(
            small_restaurant.store, min_likelihood=threshold
        )
        slow = SimJoinLikelihood(use_prefix_filter=False).estimate(
            small_restaurant.store, min_likelihood=threshold
        )
        assert fast.to_key_set() == slow.to_key_set()

    def test_simjoin_zero_threshold_returns_all_pairs(self, example_store):
        pairs = SimJoinLikelihood().estimate(example_store, min_likelihood=0.0)
        assert len(pairs) == 36

    def test_custom_likelihood_requires_similarity(self):
        with pytest.raises(ValueError):
            CustomLikelihood()

    def test_custom_likelihood_runs(self, example_store):
        estimator = CustomLikelihood(similarity=JaccardRecordSimilarity(["product_name"]))
        pairs = estimator.estimate(example_store, min_likelihood=0.3)
        assert len(pairs) == 10
