"""Tests for the ETL layer: parsing, manifests, the loader and the registry.

Structure vs values: messy *values* (unparseable prices, text that
normalises away) must load with lineage counts, while broken *structure*
(duplicate ids, missing columns, checksum mismatches) must raise
:class:`EtlError`/:class:`ManifestError` with a message pointing at the
exact file and line — those errors are part of the contract and asserted
here.
"""

import json
import shutil

import pytest

from repro.etl import (
    CorpusSpec,
    EtlError,
    ManifestError,
    SourceSpec,
    available_corpora,
    bundled_corpus_dir,
    corpus_spec,
    etl_normalize,
    load_corpus,
    load_corpus_from_dir,
    load_manifest,
    md5_id,
    parse_price_currency,
    sha256_file,
    strip_accents,
    verify_manifest,
)
from repro.etl.manifest import MANIFEST_FILENAME, FileStamp, Manifest, fetch_corpus


# ----------------------------------------------------------------- parsing
class TestParsing:
    def test_md5_id_stable_and_short(self):
        assert md5_id("abt_buy", "abt", 552) == md5_id("abt_buy", "abt", "552")
        assert len(md5_id("x")) == 12
        assert md5_id("a", "b") != md5_id("a", "c")

    def test_strip_accents(self):
        assert strip_accents("café Ébène") == "cafe Ebene"
        assert strip_accents("Sony™") == "SonyTM"  # compatibility decomposition

    def test_etl_normalize_folds_unicode_and_punctuation(self):
        assert etl_normalize("Sony® BRAVIA – 32″ LCD, Café!") == (
            "sony bravia 32 lcd cafe"
        )
        assert etl_normalize(None) == ""
        assert etl_normalize("  ") == ""

    @pytest.mark.parametrize("raw,expected", [
        ("$1,299.00", (1299.0, "USD")),
        ("£279.99", (279.99, "GBP")),
        ("1.299,00 €", (1299.0, "EUR")),
        ("12,50 €", (12.5, "EUR")),
        ("GBP 279", (279.0, "GBP")),
        ("1299.00 usd", (1299.0, "USD")),
        ("449", (449.0, None)),
        ("1,299", (1299.0, None)),
        ("call for price", (None, None)),
        ("", (None, None)),
        (None, (None, None)),
        ("n/a", (None, None)),
    ])
    def test_parse_price_currency(self, raw, expected):
        assert parse_price_currency(raw) == expected


# ---------------------------------------------------------------- fixtures
SPEC = CorpusSpec(
    name="toy",
    sources=(
        SourceSpec(name="left", filename="left.csv",
                   column_map={"name": "name"}, price_column="price"),
        SourceSpec(name="right", filename="right.csv",
                   column_map={"title": "name"}),
    ),
    mapping_filename="gold.csv",
    mapping_columns=("idLeft", "idRight"),
)


def write_corpus(directory, left_rows, right_rows, gold_rows,
                 left_header="id,name,price", right_header="id,title",
                 gold_header="idLeft,idRight"):
    (directory / "left.csv").write_text(
        "\n".join([left_header] + left_rows) + "\n", encoding="utf-8"
    )
    (directory / "right.csv").write_text(
        "\n".join([right_header] + right_rows) + "\n", encoding="utf-8"
    )
    (directory / "gold.csv").write_text(
        "\n".join([gold_header] + gold_rows) + "\n", encoding="utf-8"
    )
    return directory


@pytest.fixture
def toy_dir(tmp_path):
    return write_corpus(
        tmp_path,
        left_rows=['1,"Sony® TV",$299.00', '2,"Apple iPad","call for price"'],
        right_rows=['a,"sony tv"', 'b,"!!!"'],
        gold_rows=["1,a"],
    )


# ------------------------------------------------------------------ loader
class TestLoader:
    def test_loads_records_gold_pairs_and_lineage(self, toy_dir):
        dataset = load_corpus_from_dir(SPEC, toy_dir, verify_checksums=False)
        assert dataset.record_count == 4
        assert dataset.cross_sources == ("left", "right")
        left_id = md5_id("toy", "left", "1")
        right_id = md5_id("toy", "right", "a")
        assert dataset.ground_truth == {tuple(sorted((left_id, right_id)))}
        record = dataset.store.get(left_id)
        assert record.get("name") == "sony tv"
        assert record.get("price") == "299.00"
        assert record.get("currency") == "USD"
        counts = dataset.metadata["lineage"]["counts"]
        assert counts["left_records"] == 2
        assert counts["right_records"] == 2
        assert counts["malformed_prices"] == 1   # "call for price"
        assert counts["empty_token_records"] == 1  # "!!!" normalises away
        assert counts["gold_pairs"] == 1

    def test_duplicate_source_id_raises_with_location(self, tmp_path):
        write_corpus(
            tmp_path,
            left_rows=["1,tv,$5", "1,tv again,$6"],
            right_rows=["a,x"],
            gold_rows=["1,a"],
        )
        with pytest.raises(EtlError, match=r"left\.csv line 3: duplicate source id '1'"):
            load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)

    def test_empty_source_id_raises(self, tmp_path):
        write_corpus(
            tmp_path,
            left_rows=[",tv,$5"],
            right_rows=["a,x"],
            gold_rows=["1,a"],
        )
        with pytest.raises(EtlError, match=r"left\.csv line 2: empty or missing 'id'"):
            load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)

    def test_missing_file_and_missing_header(self, tmp_path):
        with pytest.raises(EtlError, match="corpus file missing"):
            load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)
        write_corpus(tmp_path, ["1,tv,$5"], ["a,x"], ["1,a"])
        (tmp_path / "left.csv").write_text("", encoding="utf-8")
        with pytest.raises(EtlError, match="no header row"):
            load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)

    def test_missing_mapping_columns_raise(self, tmp_path):
        write_corpus(
            tmp_path,
            left_rows=["1,tv,$5"],
            right_rows=["a,x"],
            gold_rows=["1,a"],
            gold_header="wrong,columns",
        )
        with pytest.raises(EtlError, match=r"gold\.csv line 2: expected columns"):
            load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)

    def test_gold_rows_referencing_absent_records_are_counted(self, tmp_path):
        write_corpus(
            tmp_path,
            left_rows=["1,tv,$5"],
            right_rows=["a,tv"],
            gold_rows=["1,a", "99,a", "1,zz"],
        )
        dataset = load_corpus_from_dir(SPEC, tmp_path, verify_checksums=False)
        counts = dataset.metadata["lineage"]["counts"]
        assert counts["gold_pairs"] == 1
        assert counts["gold_pairs_skipped"] == 2


# ---------------------------------------------------------------- manifest
class TestManifest:
    def test_checksum_mismatch_names_the_file(self, toy_dir):
        manifest = load_manifest(bundled_corpus_dir("abt-buy"))
        # Build a real manifest for the toy corpus, then corrupt one file.
        document = {
            "corpus": "toy",
            "files": {
                name: {"sha256": sha256_file(toy_dir / name),
                       "bytes": (toy_dir / name).stat().st_size}
                for name in ("left.csv", "right.csv", "gold.csv")
            },
        }
        (toy_dir / MANIFEST_FILENAME).write_text(json.dumps(document))
        verify_manifest(toy_dir)  # clean pass
        original = (toy_dir / "left.csv").read_text(encoding="utf-8")
        # Same byte length, different content — only the digest catches it.
        (toy_dir / "left.csv").write_text(original.replace("Sony", "Sonx"))
        with pytest.raises(ManifestError, match=r"left\.csv.*checksum mismatch"):
            verify_manifest(toy_dir)
        assert manifest.corpus == "abt-buy"

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ManifestError, match="no manifest"):
            load_manifest(tmp_path)

    def test_missing_file_named_in_manifest(self, toy_dir):
        document = {
            "corpus": "toy",
            "files": {"ghost.csv": {"sha256": "0" * 64, "bytes": 1}},
        }
        (toy_dir / MANIFEST_FILENAME).write_text(json.dumps(document))
        with pytest.raises(ManifestError, match=r"ghost\.csv.*missing"):
            verify_manifest(toy_dir)

    def test_fetch_without_urls_reports_offline_guidance(self, tmp_path):
        manifest = Manifest(
            corpus="toy",
            files={"left.csv": FileStamp(sha256="0" * 64, bytes=1)},
        )
        with pytest.raises(ManifestError, match="no download URL.*bundled mini corpus"):
            fetch_corpus(manifest, tmp_path / "cache")

    def test_fetch_failure_reports_offline_guidance(self, tmp_path):
        # file:// URL to a nonexistent path: a deterministic "download"
        # failure without touching the network.
        missing = tmp_path / "nowhere" / "left.csv"
        manifest = Manifest(
            corpus="toy",
            files={
                "left.csv": FileStamp(
                    sha256="0" * 64, bytes=1, url=missing.as_uri()
                )
            },
        )
        with pytest.raises(ManifestError, match="failed.*bundled mini corpus"):
            fetch_corpus(manifest, tmp_path / "cache")

    def test_fetch_caches_and_verifies_via_file_urls(self, toy_dir, tmp_path):
        manifest = Manifest(
            corpus="toy",
            files={
                name: FileStamp(
                    sha256=sha256_file(toy_dir / name),
                    bytes=(toy_dir / name).stat().st_size,
                    url=(toy_dir / name).as_uri(),
                )
                for name in ("left.csv", "right.csv", "gold.csv")
            },
        )
        cache = fetch_corpus(manifest, tmp_path / "cache")
        assert (cache / MANIFEST_FILENAME).is_file()
        dataset = load_corpus_from_dir(SPEC, cache)
        assert dataset.record_count == 4
        # Second fetch into a warm cache re-verifies without re-downloading
        # (the files keep their digests even if the source disappears).
        for name in ("left.csv", "right.csv", "gold.csv"):
            (toy_dir / name).unlink()
        assert fetch_corpus(manifest, cache) == cache


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_bundled_corpora_load_and_verify(self):
        assert set(available_corpora()) >= {"abt-buy", "amazon-google"}
        for name in ("abt-buy", "amazon-google"):
            dataset = load_corpus(name)
            assert dataset.record_count > 400
            assert len(dataset.ground_truth) > 150
            lineage = dataset.metadata["lineage"]
            assert lineage["checksums_verified"]
            assert dataset.metadata["default_threshold"] == corpus_spec(name).default_threshold

    def test_unknown_corpus_lists_registered_names(self):
        with pytest.raises(EtlError, match="unknown corpus 'dblp-acm'.*abt-buy"):
            load_corpus("dblp-acm")

    def test_tampered_bundled_copy_fails_checksums(self, tmp_path):
        source = bundled_corpus_dir("abt-buy")
        copy = tmp_path / "abt_buy"
        shutil.copytree(source, copy)
        target = copy / "Abt.csv"
        # Same byte count, different bytes: the digest is the only tell.
        payload = bytearray(target.read_bytes())
        payload[-2] ^= 0x01
        target.write_bytes(bytes(payload))
        with pytest.raises(ManifestError, match=r"Abt\.csv: checksum mismatch"):
            load_corpus("abt-buy", data_dir=str(copy))

    def test_verification_can_be_disabled_for_adhoc_dirs(self, toy_dir):
        dataset = load_corpus_from_dir(SPEC, toy_dir, verify_checksums=False)
        assert not dataset.metadata["lineage"]["checksums_verified"]

    def test_loads_are_deterministic(self):
        a = load_corpus("abt-buy")
        b = load_corpus("abt-buy")
        assert sorted(a.store.record_ids) == sorted(b.store.record_ids)
        assert a.ground_truth == b.ground_truth
        assert [r.attributes for r in a.store] == [r.attributes for r in b.store]
